//! Offline minimal stand-in for the `criterion` benchmark harness.
//!
//! Implements the slice of criterion's API that `cdas-bench` uses — benchmark
//! groups, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a plain
//! wall-clock measurement loop. There is no statistical analysis, HTML report,
//! or outlier rejection: each benchmark is warmed up once and then timed for a
//! fixed number of samples, and the minimum / mean sample times are printed.
//! That is enough to compare the relative cost of the CDAS code paths on one
//! machine, which is all the reproduction's benches claim to do.

use std::fmt;
use std::time::{Duration, Instant};

/// Label identifying one benchmark within a group: a function name plus an
/// optional parameter rendering (e.g. `verify/29`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter shown after a `/`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            recorded: Vec::with_capacity(samples),
        }
    }

    /// Run the routine once to warm up, then time it `sample_size` times.
    ///
    /// The routine's output is passed through [`std::hint::black_box`] so the
    /// optimizer cannot delete the measured work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.recorded.is_empty() {
            println!("bench {label:<48} (no samples recorded)");
            return;
        }
        let min = self.recorded.iter().min().copied().unwrap_or_default();
        let total: Duration = self.recorded.iter().sum();
        let mean = total / self.recorded.len() as u32;
        println!(
            "bench {label:<48} mean {mean:>12?}  min {min:>12?}  ({} samples)",
            self.recorded.len()
        );
    }
}

/// A named set of related benchmarks sharing a sample-size configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a routine that takes no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.name));
        self
    }

    /// Benchmark a routine parameterized by a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.name));
        self
    }

    /// End the group (upstream criterion finalizes reports here; the shim's
    /// reporting is immediate, so this only consumes the group).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`: a factory for benchmark
/// groups and standalone benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a standalone routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.default_sample_size);
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Bundle benchmark functions into a single runner function, as upstream
/// criterion does. Only the plain `criterion_group!(name, target...)` form is
/// supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark function registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given benchmark groups. Harness arguments
/// passed by `cargo bench`/`cargo test` (e.g. `--bench`) are accepted and
/// ignored, so bench binaries stay runnable under either command.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_and_counts_samples() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("demo");
            group.sample_size(4);
            group.bench_function("inc", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
            group.finish();
        }
        // 1 warmup + 4 samples.
        assert_eq!(calls, 5);
    }

    #[test]
    fn bench_with_input_passes_the_input_through() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        let input = vec![1u64, 2, 3];
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, v| {
            b.iter(|| {
                seen = v.iter().sum();
            })
        });
        group.finish();
        assert_eq!(seen, 6);
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        let id = BenchmarkId::new("verify", 29);
        assert_eq!(id.name, "verify/29");
        let from_str: BenchmarkId = "plain".into();
        assert_eq!(from_str.name, "plain");
    }
}
