//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline serde shim.
//!
//! The CDAS workspace annotates its data types for serialization but never
//! serializes at runtime (no `serde_json`, no wire format), so the derives can
//! expand to nothing: the annotation is kept source-compatible with the real
//! `serde` crate without generating impls nobody calls. The only hand-written
//! impls (`cdas_core::types::Label`) target the traits in the `serde` shim
//! directly.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and expand to
/// nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and expand
/// to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
