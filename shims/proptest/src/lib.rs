//! Offline minimal stand-in for the `proptest` property-testing crate.
//!
//! Provides the subset `cdas-core`'s property tests use: the [`proptest!`]
//! macro, range / [`Just`] / [`prop_oneof!`] / tuple / [`collection::vec`]
//! strategies, [`Strategy::prop_map`], and the `prop_assert*` / `prop_assume!`
//! macros. Differences from the real crate, acceptable for an offline
//! reproduction:
//!
//! * **no shrinking** — a failing case panics with the generated inputs left
//!   in the assertion message rather than being minimized, and
//! * **fixed deterministic seeding** — each test's RNG is seeded from a hash
//!   of the test name, so runs are reproducible and CI cannot flake.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Number of random cases each [`proptest!`] test executes.
pub const CASES: usize = 64;

/// Deterministic per-test RNG, seeded from the test's name (FNV-1a).
pub fn test_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }
}

/// Object-safe mirror of [`Strategy`], used by [`OneOf`] to erase the
/// concrete strategy types behind `prop_oneof!` arms.
pub trait DynStrategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn generate_dyn(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut StdRng) -> u64 {
        rng.random_range(self.clone())
    }
}

/// A strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The strategy built by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// The strategy built by [`prop_oneof!`]: picks one arm uniformly per case.
pub struct OneOf<V> {
    options: Vec<Box<dyn DynStrategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Build from the type-erased arms. Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn DynStrategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }

    /// Type-erase one arm (used by [`prop_oneof!`]; a function coerces more
    /// reliably than an `as` cast under integer-literal fallback).
    pub fn erase<S: Strategy<Value = V> + 'static>(arm: S) -> Box<dyn DynStrategy<Value = V>> {
        Box::new(arm)
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate_dyn(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual proptest imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{Just, Strategy};
}

/// Define property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for [`CASES`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::test_rng(stringify!($name));
                for __proptest_case in 0..$crate::CASES {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Assert a property holds for the current generated case (panics on failure;
/// the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert two values are equal for the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current generated case when its inputs don't satisfy a
/// precondition. Only valid directly inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Build a strategy that picks uniformly between several same-typed arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::OneOf::erase($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_within_bounds() {
        let mut rng = crate::test_rng("strategies_generate_within_bounds");
        let s = (
            prop_oneof![Just(1u64), Just(2u64), Just(3u64)],
            0.25f64..0.75,
        )
            .prop_map(|(a, b)| (a, b));
        for _ in 0..1_000 {
            let (a, b) = Strategy::generate(&s, &mut rng);
            assert!((1..=3).contains(&a));
            assert!((0.25..0.75).contains(&b));
        }
        let v = prop::collection::vec(0usize..5, 2..4);
        for _ in 0..1_000 {
            let xs = Strategy::generate(&v, &mut rng);
            assert!(xs.len() == 2 || xs.len() == 3);
            assert!(xs.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use rand::Rng;
        let a: f64 = crate::test_rng("x").random();
        let b: f64 = crate::test_rng("x").random();
        let c: f64 = crate::test_rng("y").random();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        /// The proptest! macro itself: patterns, assume, and assertions.
        #[test]
        fn macro_drives_cases((a, b) in (0usize..10, 0usize..10), c in 0.0f64..1.0) {
            prop_assume!(a + b > 0);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
            prop_assert!((0.0..1.0).contains(&c));
        }
    }
}
