//! Offline stand-in for the `rand` crate (0.9-era API surface).
//!
//! The CDAS workspace builds without registry access, so this crate provides the
//! subset of `rand` the simulation actually uses: the [`Rng`] extension methods
//! (`random`, `random_range`, `random_bool`), [`SeedableRng::seed_from_u64`],
//! a deterministic [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 rather than upstream's
//! ChaCha12: statistically ample for a crowd simulation and bit-for-bit
//! reproducible given a seed, which is all `cdas-crowd` and `cdas-bench` require.

use std::ops::Range;

/// A source of randomness, plus the convenience methods the workspace uses.
///
/// Mirrors the `rand 0.9` method names (`random`, `random_range`, `random_bool`).
pub trait Rng {
    /// Produce the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its "standard" distribution
    /// (uniform over `[0, 1)` for floats, uniform over all values for integers).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open range. Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped into `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their standard distribution via [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) at full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

/// Uniform `u64` in `[0, span)` via the widening-multiply trick (no modulo bias
/// worth speaking of at simulation scale).
fn uniform_below<G: Rng + ?Sized>(rng: &mut G, span: u64) -> u64 {
    assert!(span > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> usize {
        let span = self
            .end
            .checked_sub(self.start)
            .filter(|s| *s > 0)
            .expect("cannot sample from an empty range");
        self.start + uniform_below(rng, span as u64) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> u64 {
        let span = self
            .end
            .checked_sub(self.start)
            .filter(|s| *s > 0)
            .expect("cannot sample from an empty range");
        self.start + uniform_below(rng, span)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u: f64 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Upstream `StdRng` is ChaCha12; this stand-in trades cryptographic
    /// strength for zero dependencies while keeping the properties the
    /// simulation needs: full-period 64-bit output and seed determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place random rearrangement of slices.
    pub trait SliceRandom {
        /// Shuffle the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let i = rng.random_range(2..9usize);
            assert!((2..9).contains(&i));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
