//! Offline stand-in for the `serde` crate.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so a future
//! build against real serde can persist them, but nothing in the reproduction
//! serializes at runtime. This shim therefore provides just enough surface for
//! the source to compile unchanged:
//!
//! * the [`Serialize`] / [`Deserialize`] traits with the upstream method
//!   shapes (used by the hand-written impls for `cdas_core::types::Label`),
//! * the [`Serializer`] / [`Deserializer`] driver traits reduced to the string
//!   case those impls call, and
//! * re-exported no-op derive macros from `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// A value that can describe itself to a [`Serializer`].
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A data-format driver consuming values. Only the string case is modelled.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error;

    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// A value that can be reconstructed from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value of this type.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A data-format driver producing values. Only the string case is modelled.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error;

    /// Deserialize an owned string.
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>,
    {
        deserializer.deserialize_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A serializer that captures the string it is given, proving the trait
    /// wiring works end to end for the one case the workspace uses.
    struct CaptureString;

    impl Serializer for CaptureString {
        type Ok = String;
        type Error = ();

        fn serialize_str(self, v: &str) -> Result<String, ()> {
            Ok(v.to_string())
        }
    }

    struct FixedString(&'static str);

    impl<'de> Deserializer<'de> for FixedString {
        type Error = ();

        fn deserialize_string(self) -> Result<String, ()> {
            Ok(self.0.to_string())
        }
    }

    struct Name(String);

    impl Serialize for Name {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(&self.0)
        }
    }

    impl<'de> Deserialize<'de> for Name {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            Ok(Name(String::deserialize(deserializer)?))
        }
    }

    #[test]
    fn string_roundtrip_through_shim_traits() {
        let n = Name("Positive".to_string());
        assert_eq!(n.serialize(CaptureString).unwrap(), "Positive");
        let back = Name::deserialize(FixedString("Negative")).unwrap();
        assert_eq!(back.0, "Negative");
    }

    /// The no-op derives must be accepted on plain structs and enums.
    #[derive(Serialize, Deserialize)]
    struct Derived {
        _x: u32,
    }

    #[derive(Serialize, Deserialize)]
    enum DerivedEnum {
        _A,
    }

    #[test]
    fn derives_are_accepted() {
        let _ = Derived { _x: 1 };
        let _ = DerivedEnum::_A;
    }
}
