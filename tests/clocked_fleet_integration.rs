//! Integration test for the clocked fleet (§4.2 at scale): a discrete-event scheduler run
//! in which early termination cancels HITs mid-flight, releases their worker leases back
//! to the shared pool while slower workers are still out, and a second job picks those
//! workers up — finishing the whole fleet strictly earlier than the end-of-time baseline,
//! with engine-side accounting equal to the platform's ledger in both modes.

use cdas::core::economics::CostModel;
use cdas::core::online::TerminationStrategy;

use cdas::engine::job_manager::JobKind;
use cdas::fixtures::demo_questions;
use cdas::prelude::*;

const SEED: u64 = 2012;

/// A 9-worker pool with asynchronous (exponential) completion times: two 7-worker jobs
/// can never be in flight at once, so the second job's start time is exactly the first
/// job's lease-release time.
fn setup() -> (SimulatedPlatform, PoolLedger) {
    let pool = WorkerPool::generate(&PoolConfig {
        latency: LatencyModel::Exponential { mean: 5.0 },
        ..PoolConfig::clean(9, 0.9, SEED)
    });
    let ledger = PoolLedger::from_pool(&pool);
    (
        SimulatedPlatform::new(pool, CostModel::default(), SEED),
        ledger,
    )
}

fn engine(termination: Option<TerminationStrategy>) -> EngineConfig {
    EngineConfig {
        workers: WorkerCountPolicy::Fixed(7),
        verification: VerificationStrategy::Probabilistic,
        termination,
        domain_size: Some(3),
        ..EngineConfig::default()
    }
}

fn run(termination: Option<TerminationStrategy>) -> (FleetReport, f64) {
    let (mut platform, ledger) = setup();
    let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
    for name in ["first", "second"] {
        scheduler.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(6, 3))
                .with_engine(engine(termination))
                .with_batch_size(9),
        );
    }
    let report = scheduler.run_clocked(&mut platform).unwrap();
    (report, platform.total_cost())
}

#[test]
fn early_termination_releases_leases_mid_flight_for_the_next_job() {
    let (baseline, baseline_platform_cost) = run(None);
    let (early, early_platform_cost) = run(Some(TerminationStrategy::ExpMax));

    // The baseline fleet polls to the end of time: nothing is cancelled, nothing
    // reclaimed, and engine cost equals platform cost trivially.
    assert_eq!(baseline.answers_cancelled, 0);
    assert_eq!(baseline.reclaimed_minutes, 0.0);
    assert!(
        (baseline.fleet.cost - baseline_platform_cost).abs() < 1e-9,
        "baseline engine cost {} != platform cost {}",
        baseline.fleet.cost,
        baseline_platform_cost
    );

    // The clocked fleet cancelled mid-flight: assignments were cut off before delivery
    // and their workers' remaining minutes went back to the pool.
    assert!(early.answers_cancelled > 0, "no assignment was cancelled");
    assert!(
        early.reclaimed_minutes > 0.0,
        "cancellation reclaimed no worker-minutes"
    );
    // Engine-side accounting equals the platform ledger *under termination* — the
    // terminated-HIT cost divergence stays fixed at fleet scale.
    assert!(
        (early.fleet.cost - early_platform_cost).abs() < 1e-9,
        "early engine cost {} != platform cost {}",
        early.fleet.cost,
        early_platform_cost
    );
    assert!(
        early.fleet.cost < baseline.fleet.cost,
        "mid-flight cancellation must cost less than full collection"
    );

    // Makespan strictly below the end-of-time baseline: the fleet finished while the
    // baseline's slowest workers would still have been typing.
    assert!(
        early.makespan < baseline.makespan,
        "clocked makespan {} is not below the end-of-time baseline {}",
        early.makespan,
        baseline.makespan
    );

    // The second job genuinely *reused* workers released mid-flight. With a 9-worker
    // roster and 7-worker HITs, consecutive dispatches must share workers; the important
    // part is WHEN the handover happened: the second job's first dispatch sits strictly
    // before the baseline's, i.e. before the first job's batch would have drained
    // naturally.
    let first_dispatch_of = |report: &FleetReport, job: usize| {
        report
            .dispatches
            .iter()
            .find(|d| d.job == JobId(job))
            .expect("both jobs dispatched")
            .clone()
    };
    let early_handover = first_dispatch_of(&early, 1);
    let baseline_handover = first_dispatch_of(&baseline, 1);
    assert!(
        early_handover.at < baseline_handover.at,
        "the second job started at {} but the baseline handover was already at {}",
        early_handover.at,
        baseline_handover.at
    );
    let predecessor = first_dispatch_of(&early, 0);
    let reused = early_handover
        .workers
        .iter()
        .filter(|w| predecessor.workers.contains(w))
        .count();
    assert!(
        reused > 0,
        "the second job's lease shares no worker with the cancelled HIT"
    );
    // And the handover is mid-flight in a literal sense: the first job's batch completed
    // (and released its lease) at the moment the second job dispatched.
    let first_job = &early.jobs[0];
    assert!(first_job.reclaimed_minutes > 0.0);
    assert!(early_handover.at >= predecessor.at);

    // Quality does not collapse for either fleet.
    assert!(
        early.fleet.accuracy > 0.7,
        "accuracy {}",
        early.fleet.accuracy
    );
    assert!(baseline.fleet.accuracy > 0.7);

    // Temporal bookkeeping is coherent: per-job completion times bound the makespan and
    // first verdicts precede completions.
    for report in [&early, &baseline] {
        for job in &report.jobs {
            assert!(job.completed_at <= report.makespan + 1e-9);
            let first = job.time_to_first_verdict.expect("verdicts exist");
            assert!(first <= job.completed_at + 1e-9);
        }
    }
}

#[test]
fn clocked_fleet_is_deterministic_end_to_end() {
    let a = run(Some(TerminationStrategy::ExpMax));
    let b = run(Some(TerminationStrategy::ExpMax));
    assert_eq!(a.0.dispatches, b.0.dispatches);
    assert_eq!(a.0.fleet, b.0.fleet);
    assert_eq!(a.0.makespan, b.0.makespan);
    assert_eq!(a.0.reclaimed_minutes, b.0.reclaimed_minutes);
    assert_eq!(a.1, b.1);
}

#[test]
fn facade_reproduces_this_suite_and_streams_the_handover() {
    // The same fleet, built through the front door: the facade's Clocked run must equal
    // the hand-wired `run_clocked` above, and its event stream must show the mid-flight
    // lease handover the hand-wired assertions dig out of the dispatch timeline.
    let mut fleet = Fleet::builder()
        .crowd(
            CrowdSpec::clean(9, 0.9)
                .seed(SEED)
                .latency(LatencyModel::Exponential { mean: 5.0 }),
        )
        .build()
        .unwrap();
    for name in ["first", "second"] {
        fleet
            .submit(
                JobSpec::sentiment(name, demo_questions(6, 3))
                    .workers(7)
                    .domain_size(3)
                    .termination(TerminationStrategy::ExpMax)
                    .batch_size(9),
            )
            .unwrap();
    }
    let facade = fleet.run(ExecutionMode::Clocked).unwrap();
    let (direct, direct_platform_cost) = run(Some(TerminationStrategy::ExpMax));
    assert_eq!(
        facade.report().ignoring_wall_clock(),
        direct.ignoring_wall_clock(),
        "facade Clocked != hand-wired run_clocked"
    );
    assert!((facade.platform_cost() - direct_platform_cost).abs() < 1e-12);

    // Streaming: job 0's mid-flight reclamation is anchored no later than the second
    // job's start — the handover is observable without spelunking the dispatch records.
    let events = facade.events();
    let reclaimed_at = events
        .iter()
        .find_map(|e| match e {
            FleetEvent::LeaseReclaimed {
                job: JobId(0), at, ..
            } => Some(*at),
            _ => None,
        })
        .expect("job 0 reclaimed a lease mid-flight");
    let second_started_at = events
        .iter()
        .find_map(|e| match e {
            FleetEvent::JobStarted {
                job: JobId(1), at, ..
            } => Some(*at),
            _ => None,
        })
        .expect("job 1 started");
    assert!(
        reclaimed_at <= second_started_at + 1e-9,
        "the handover ({reclaimed_at}) must not postdate the second job's start \
         ({second_started_at})"
    );
}
