//! Snapshot test of the `cdas::prelude` public surface.
//!
//! The prelude is the API contract examples and downstream users program against, so an
//! export added or removed without a deliberate decision is a review-worthy event. This
//! test parses the `pub use` lines of the `pub mod prelude` block in the umbrella
//! crate's source and compares the **sorted item list** against the snapshot below: any
//! drift fails with a diff-style message telling the author to update the snapshot
//! (and `tests/prelude_api_sync.rs`, which pins each item to its canonical definition).

use std::path::Path;

/// The snapshot: every item `cdas::prelude` exports, sorted. Update deliberately.
const PRELUDE_SNAPSHOT: &[&str] = &[
    "AccuracyCache",
    "AdmissionDecision",
    "AdmissionForecast",
    "AdmissionModel",
    "AnalyticsJob",
    "ArrivalDiscovery",
    "ArrivalQueue",
    "CancelReceipt",
    "ClockedCollector",
    "ClockedOutcome",
    "CostModel",
    "CrowdPlatform",
    "CrowdSpec",
    "CrowdsourcingEngine",
    "DispatchPolicy",
    "EngineConfig",
    "ExecutionMode",
    "Failpoint",
    "FailpointPlatform",
    "Fleet",
    "FleetBuilder",
    "FleetEvent",
    "FleetFailpoints",
    "FleetReport",
    "FleetRun",
    "FleetService",
    "HalfVoting",
    "ImageGenerator",
    "ImageGeneratorConfig",
    "ImageTaggingApp",
    "ItConfig",
    "JobId",
    "JobKind",
    "JobManager",
    "JobReport",
    "JobScheduler",
    "JobSpec",
    "JobTicket",
    "Journal",
    "JournalConfig",
    "JournalRecord",
    "Label",
    "LatencyModel",
    "LeaseId",
    "MajorityVoting",
    "Observation",
    "PlatformShard",
    "PoolConfig",
    "PoolLedger",
    "PredictionModel",
    "ProbabilisticVerifier",
    "QualitySensitiveModel",
    "Query",
    "QuestionId",
    "RecoveryReport",
    "Rejected",
    "RunConfig",
    "ScheduledJob",
    "SchedulerConfig",
    "ServiceConfig",
    "ServiceEvent",
    "ServiceRecovery",
    "ServiceReport",
    "ShardReport",
    "ShardedPlatform",
    "SharedAccuracyRegistry",
    "SimClock",
    "SimulatedPlatform",
    "SyncPolicy",
    "TerminationStrategy",
    "TsaApp",
    "TsaConfig",
    "TweetGenerator",
    "TweetGeneratorConfig",
    "Verdict",
    "VerificationStrategy",
    "Verifier",
    "Vote",
    "WorkerCountPolicy",
    "WorkerId",
    "WorkerLease",
    "WorkerPool",
];

/// Extract the sorted item list from the `pub mod prelude { ... }` block of the given
/// source text. Handles `pub use path::Item;` and `pub use path::{A, B, ...};` (possibly
/// spanning lines); `crate::`-style prefixes and nesting deeper than one brace level are
/// not used in the prelude and are rejected loudly.
fn prelude_items(source: &str) -> Vec<String> {
    let start = source
        .find("pub mod prelude {")
        .expect("cdas lib.rs declares `pub mod prelude {`");
    let block = &source[start..];
    let end = block.find("\n}").expect("prelude block is brace-closed");
    let block = &block[..end];

    let mut items = Vec::new();
    // Statement-split on ';' so multi-line `pub use a::{B, C};` groups stay whole.
    for statement in block.split(';') {
        let joined = statement
            .lines()
            .map(str::trim)
            .filter(|l| !l.starts_with("//"))
            .collect::<Vec<_>>()
            .join(" ");
        // The first split segment also carries the `pub mod prelude {` header, so find
        // the use-declaration inside the statement rather than anchoring at its start.
        let Some(idx) = joined.find("pub use ") else {
            continue;
        };
        let path = joined[idx + "pub use ".len()..].trim().to_string();
        match (path.find('{'), path.rfind('}')) {
            (Some(open), Some(close)) => {
                assert!(
                    !path[open + 1..close].contains('{'),
                    "nested use-groups are not supported by the snapshot parser: {path}"
                );
                for item in path[open + 1..close].split(',') {
                    let item = item.trim();
                    if !item.is_empty() {
                        items.push(leaf_name(item));
                    }
                }
            }
            (None, None) => items.push(leaf_name(&path)),
            _ => panic!("unbalanced braces in prelude use statement: {path}"),
        }
    }
    items.sort();
    items
}

/// `a::b::Item` or `Item as Alias` → the name the prelude exports.
fn leaf_name(item: &str) -> String {
    let item = match item.rsplit_once(" as ") {
        Some((_, alias)) => alias,
        None => item,
    };
    item.rsplit("::").next().unwrap_or(item).trim().to_string()
}

#[test]
fn prelude_surface_matches_the_snapshot() {
    // This integration test is registered against the `cdas` crate, so the manifest dir
    // is `crates/cdas` and the prelude source sits right below it.
    let lib = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/lib.rs");
    let source = std::fs::read_to_string(&lib)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", lib.display()));
    let actual = prelude_items(&source);

    let expected: Vec<String> = PRELUDE_SNAPSHOT.iter().map(|s| s.to_string()).collect();
    let mut sorted_snapshot = expected.clone();
    sorted_snapshot.sort();
    assert_eq!(
        expected, sorted_snapshot,
        "keep PRELUDE_SNAPSHOT sorted so diffs stay readable"
    );

    let added: Vec<&String> = actual.iter().filter(|i| !expected.contains(i)).collect();
    let removed: Vec<&String> = expected.iter().filter(|i| !actual.contains(i)).collect();
    assert!(
        added.is_empty() && removed.is_empty(),
        "cdas::prelude drifted from the snapshot in tests/api_surface.rs.\n\
         added (update the snapshot AND tests/prelude_api_sync.rs): {added:?}\n\
         removed (breaking change — update the snapshot if deliberate): {removed:?}"
    );
    assert_eq!(actual, expected, "duplicate or re-ordered prelude exports");
}

#[test]
fn snapshot_parser_understands_the_grammar() {
    let source = r#"
pub mod prelude {
    pub use a::b::Single;
    pub use c::{Two, Three};
    pub use d::e::{
        Four, Five,
    };
    pub use f::Item as Renamed;
}
"#;
    assert_eq!(
        prelude_items(source),
        ["Five", "Four", "Renamed", "Single", "Three", "Two"]
    );
}
