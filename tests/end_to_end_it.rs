//! Integration test: the image-tagging pipeline — synthetic images with noise tags, the
//! simulated crowd, and the automatic-tagger baseline (Figure 17/18 shape).

use cdas::baselines::image::AutoTagger;
use cdas::prelude::*;
use cdas::workloads::it::FIGURE17_SUBJECTS;

fn images(seed: u64, per_subject: usize) -> Vec<cdas::workloads::it::images::SyntheticImage> {
    let mut g = ImageGenerator::new(ImageGeneratorConfig {
        seed,
        ..ImageGeneratorConfig::default()
    });
    let mut all = Vec::new();
    for s in FIGURE17_SUBJECTS {
        all.extend(g.generate(s, per_subject));
    }
    all
}

#[test]
fn crowd_tagging_dominates_the_automatic_tagger_on_every_subject() {
    let mut tagger = AutoTagger::new();
    tagger.train(&images(1, 20));

    let pool = WorkerPool::generate(&PoolConfig {
        size: 200,
        seed: 5,
        ..PoolConfig::default()
    });

    for (i, subject) in FIGURE17_SUBJECTS.iter().enumerate() {
        let mut g = ImageGenerator::new(ImageGeneratorConfig {
            seed: 100 + i as u64,
            ..ImageGeneratorConfig::default()
        });
        let test = g.generate(subject, 20);
        let refs: Vec<_> = test.iter().collect();
        let machine = tagger.accuracy(&test);

        let app = ImageTaggingApp::new(ItConfig {
            engine: EngineConfig {
                workers: WorkerCountPolicy::Fixed(5),
                ..EngineConfig::default()
            },
            batch_size: 10,
            sampling_rate: 0.2,
        });
        let mut platform =
            SimulatedPlatform::new(pool.clone(), CostModel::default(), 200 + i as u64);
        let report = app.run(&mut platform, &refs, Some(&tagger)).unwrap();

        assert!(
            machine < 0.6,
            "{subject}: automatic tagger unexpectedly strong ({machine})"
        );
        assert!(
            report.crowd.accuracy > machine + 0.15,
            "{subject}: crowd {} does not dominate machine {machine}",
            report.crowd.accuracy
        );
    }
}

#[test]
fn more_workers_do_not_hurt_it_accuracy() {
    let test = images(7, 10);
    let refs: Vec<_> = test.iter().collect();
    let pool = WorkerPool::generate(&PoolConfig {
        size: 150,
        seed: 9,
        ..PoolConfig::default()
    });
    let accuracy_with = |workers: usize| {
        let app = ImageTaggingApp::new(ItConfig {
            engine: EngineConfig {
                workers: WorkerCountPolicy::Fixed(workers),
                ..EngineConfig::default()
            },
            batch_size: 10,
            sampling_rate: 0.2,
        });
        let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 77);
        app.run(&mut platform, &refs, None).unwrap().crowd.accuracy
    };
    let one = accuracy_with(1);
    let nine = accuracy_with(9);
    assert!(
        nine >= one - 0.05,
        "9 workers ({nine}) should not be meaningfully worse than 1 ({one})"
    );
    assert!(nine > 0.7, "9-worker accuracy too low: {nine}");
}
