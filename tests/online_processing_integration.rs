//! Integration test: online processing against the asynchronous simulated crowd — partial
//! results converge to the offline answer, early termination saves assignments without
//! destroying accuracy, and different arrival sequences change intermediate (but not final)
//! results.

use cdas::core::online::{OnlineProcessor, TerminationStrategy};
use cdas::core::types::{AnswerDomain, Label, Observation, QuestionId, Vote};
use cdas::core::verification::confidence::answer_confidences;
use cdas::crowd::question::CrowdQuestion;
use cdas::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn question() -> CrowdQuestion {
    CrowdQuestion::new(
        QuestionId(0),
        AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
        Label::from("Positive"),
    )
}

fn answer_sequence(pool: &WorkerPool, n: usize, seed: u64) -> Vec<(f64, Vote)> {
    let q = question();
    let mut rng = StdRng::seed_from_u64(seed);
    let workers = pool.assign(n, &mut rng);
    let mut submissions: Vec<(f64, Vote)> = workers
        .iter()
        .map(|w| {
            (
                w.sample_latency(&mut rng),
                Vote::new(w.id, w.answer(&q, &mut rng), w.effective_accuracy(&q)),
            )
        })
        .collect();
    submissions.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    submissions
}

#[test]
fn online_ranking_converges_to_offline_equation_4() {
    let pool = WorkerPool::generate(&PoolConfig::default());
    let sequence = answer_sequence(&pool, 21, 5);
    let mean = pool.true_mean_accuracy(&question());
    let mut processor = OnlineProcessor::new(21, mean, TerminationStrategy::MinMax)
        .unwrap()
        .with_domain_size(3);
    let mut last = None;
    for (_, vote) in &sequence {
        last = Some(processor.consume(vote.clone()).unwrap());
    }
    let votes: Vec<Vote> = sequence.into_iter().map(|(_, v)| v).collect();
    let offline = answer_confidences(&Observation::from_votes(votes), 3);
    assert_eq!(last.unwrap().ranking, offline);
}

#[test]
fn expmax_saves_workers_without_losing_much_accuracy() {
    let pool = WorkerPool::generate(&PoolConfig {
        size: 400,
        seed: 41,
        ..PoolConfig::default()
    });
    let mean = pool.true_mean_accuracy(&question());
    let trials = 300;
    let n = 15usize;
    let mut full_correct = 0usize;
    let mut early_correct = 0usize;
    let mut consumed_total = 0usize;
    for i in 0..trials {
        let sequence = answer_sequence(&pool, n, 1000 + i as u64);
        let votes: Vec<Vote> = sequence.iter().map(|(_, v)| v.clone()).collect();
        // Offline answer.
        let offline = answer_confidences(&Observation::from_votes(votes.clone()), 3);
        if offline[0].0.as_str() == "Positive" {
            full_correct += 1;
        }
        // ExpMax online.
        let mut processor = OnlineProcessor::new(n, mean, TerminationStrategy::ExpMax)
            .unwrap()
            .with_domain_size(3);
        let outcome = processor.run_until_termination(votes).unwrap();
        consumed_total += outcome.answers_received;
        if outcome.best.unwrap().0.as_str() == "Positive" {
            early_correct += 1;
        }
    }
    let mean_consumed = consumed_total as f64 / trials as f64;
    let full_acc = full_correct as f64 / trials as f64;
    let early_acc = early_correct as f64 / trials as f64;
    // The Figure 12 claim: ExpMax saves a large fraction of the assignments…
    assert!(
        mean_consumed < 0.7 * n as f64,
        "expected substantial savings, consumed {mean_consumed}/{n}"
    );
    // …and the Figure 13 claim: without giving up much accuracy.
    assert!(
        early_acc >= full_acc - 0.05,
        "early termination lost too much accuracy: {early_acc} vs {full_acc}"
    );
}

#[test]
fn arrival_order_changes_intermediate_but_not_final_confidence() {
    let pool = WorkerPool::generate(&PoolConfig::clean(100, 0.8, 51));
    let sequence = answer_sequence(&pool, 11, 9);
    let votes: Vec<Vote> = sequence.iter().map(|(_, v)| v.clone()).collect();
    let mut reversed = votes.clone();
    reversed.reverse();

    let run = |order: &[Vote]| {
        let mut processor = OnlineProcessor::new(11, 0.8, TerminationStrategy::MinMax)
            .unwrap()
            .with_domain_size(3);
        let mut intermediate = Vec::new();
        let mut last = None;
        for v in order {
            let o = processor.consume(v.clone()).unwrap();
            intermediate.push(o.best.clone().map(|(l, _)| l));
            last = o.best;
        }
        (intermediate, last)
    };
    let (forward_steps, forward_final) = run(&votes);
    let (reverse_steps, reverse_final) = run(&reversed);
    // The final answer is order-independent (same multiset of votes)…
    assert_eq!(forward_final.unwrap().0, reverse_final.unwrap().0);
    // …even though the intermediate trajectories normally differ (Figure 11). We only
    // assert that both trajectories are well-formed; a strict inequality would be flaky
    // when all workers happen to agree.
    assert_eq!(forward_steps.len(), reverse_steps.len());
}
