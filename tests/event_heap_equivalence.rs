//! Differential suite for the event-heap scheduler core.
//!
//! The clocked loops ship two arrival-discovery modes: [`ArrivalDiscovery::Heap`] (the
//! production path — a lazy-deletion binary min-heap over
//! `CrowdPlatform::next_arrival` look-aheads) and [`ArrivalDiscovery::Scan`] (the
//! pre-heap per-tick scan, retained as the oracle). This suite pins the PR's central
//! claim: **the two modes are bit-identical in everything but wall-clock time**, across
//! randomized crowds, seeds, job mixes, and all three [`ExecutionMode`]s — so the heap
//! is purely a complexity win, never a behavior change.
//!
//! It also covers the two paths a plain `SimulatedPlatform` run never exercises:
//!
//! * **untracked HITs** — a platform whose `next_arrival` hides some (or all) HITs
//!   demotes them to the scan loop's every-tick poll, and the two modes must still
//!   agree;
//! * **lazy deletion end to end** — once a HIT is cancelled mid-flight, the scheduler
//!   must never poll it again (a stale heap entry must not fire a ghost arrival), and
//!   the reclaimed minutes the fleet reports must equal what the platform's
//!   [`CancelReceipt`]s actually handed back.

use std::collections::BTreeMap;

use cdas::core::economics::CostModel;
use cdas::core::online::TerminationStrategy;
use cdas::core::types::HitId;
use cdas::crowd::hit::HitRequest;
use cdas::crowd::platform::WorkerAnswer;
use cdas::engine::job_manager::JobKind;
use cdas::engine::scheduler::ArrivalDiscovery;
use cdas::fixtures::demo_questions;
use cdas::prelude::*;
use proptest::prelude::*;

/// The per-job termination mix: index 0 runs without a termination strategy (natural
/// makespan), 1..=3 map onto [`TerminationStrategy::ALL`] (mid-flight cancellation).
fn termination_for(index: usize) -> Option<TerminationStrategy> {
    match index % (TerminationStrategy::ALL.len() + 1) {
        0 => None,
        i => Some(TerminationStrategy::ALL[i - 1]),
    }
}

/// One fleet description, buildable twice — once per discovery mode — over bit-identical
/// crowds (every [`Fleet::run`] derives a fresh platform from the spec).
#[derive(Clone)]
struct FleetCase {
    pool: usize,
    accuracy: f64,
    crowd_seed: u64,
    scheduler_seed: u64,
    latency_mean: f64,
    /// `(real, gold, workers, batch, termination index)` per job.
    jobs: Vec<(u64, u64, usize, usize, usize)>,
}

impl FleetCase {
    fn build(&self, discovery: ArrivalDiscovery) -> Fleet {
        let crowd = CrowdSpec::clean(self.pool, self.accuracy)
            .seed(self.crowd_seed)
            .latency(LatencyModel::Exponential {
                mean: self.latency_mean,
            });
        let mut builder = Fleet::builder()
            .crowd(crowd)
            .scheduler_seed(self.scheduler_seed)
            .arrival_discovery(discovery);
        for (i, &(real, gold, workers, batch, term)) in self.jobs.iter().enumerate() {
            let mut job = JobSpec::sentiment(format!("job-{i}"), demo_questions(real, gold))
                .workers(workers)
                .batch_size(batch)
                .domain_size(3);
            job = match termination_for(term) {
                Some(strategy) => job.termination(strategy),
                None => job.no_termination(),
            };
            builder = builder.job(job);
        }
        builder.build().expect("case is feasible by construction")
    }

    /// Run both discovery modes under `mode` and assert the heap run equals the scan
    /// oracle: same report (wall clock aside), same event stream, same platform bill.
    fn assert_equivalent(&self, mode: ExecutionMode) {
        let heap = self.build(ArrivalDiscovery::Heap).run(mode).unwrap();
        let scan = self.build(ArrivalDiscovery::Scan).run(mode).unwrap();
        assert_eq!(
            heap.report().ignoring_wall_clock(),
            scan.report().ignoring_wall_clock(),
            "heap and scan reports diverged under {mode:?}"
        );
        assert_eq!(
            heap.events(),
            scan.events(),
            "heap and scan event streams diverged under {mode:?}"
        );
        assert_eq!(heap.platform_cost(), scan.platform_cost());
    }
}

/// A hard deterministic case: several jobs contending for one pool, a mixed
/// termination roster (so some batches cancel mid-flight and hand leases over while
/// others run to natural makespan), small batches to maximize dispatch interleaving.
fn contended_case() -> FleetCase {
    FleetCase {
        pool: 14,
        accuracy: 0.88,
        crowd_seed: 11,
        scheduler_seed: 7,
        latency_mean: 5.0,
        jobs: vec![
            (9, 3, 5, 4, 1),
            (8, 2, 4, 3, 0),
            (7, 2, 3, 5, 3),
            (6, 2, 5, 3, 2),
        ],
    }
}

#[test]
fn heap_equals_scan_end_of_time() {
    contended_case().assert_equivalent(ExecutionMode::EndOfTime);
}

#[test]
fn heap_equals_scan_clocked() {
    contended_case().assert_equivalent(ExecutionMode::Clocked);
}

#[test]
fn heap_equals_scan_parallel() {
    contended_case().assert_equivalent(ExecutionMode::Parallel { shards: 2 });
}

proptest! {
    /// The differential property: over randomized crowds, seeds and job mixes, and all
    /// three execution modes, the heap-driven scheduler's report is bit-identical to the
    /// pre-heap scan oracle under `ignoring_wall_clock()` — and so is the event stream.
    #[test]
    fn heap_equals_scan_oracle_across_modes(
        pool_extra in 0usize..8,
        accuracy_pct in 70u64..94,
        crowd_seed in 0u64..1_000_000,
        scheduler_seed in 0u64..1_000_000,
        latency_mean in 2.0f64..9.0,
        job_seeds in prop::collection::vec(
            ((3u64..9, 1u64..3), (3usize..6, 2usize..6, 0usize..4)),
            1..4,
        ),
        mode_index in 0usize..3,
    ) {
        let job_seeds: Vec<(u64, u64, usize, usize, usize)> = job_seeds
            .into_iter()
            .map(|((real, gold), (workers, batch, term))| (real, gold, workers, batch, term))
            .collect();
        // Feasible for Parallel { shards: 2 }: every job's demand fits half the pool.
        let max_workers = job_seeds.iter().map(|j| j.2).max().unwrap_or(3);
        let case = FleetCase {
            pool: 2 * max_workers + 2 + pool_extra,
            accuracy: accuracy_pct as f64 / 100.0,
            crowd_seed,
            scheduler_seed,
            latency_mean,
            jobs: job_seeds,
        };
        let mode = match mode_index {
            0 => ExecutionMode::EndOfTime,
            1 => ExecutionMode::Clocked,
            _ => ExecutionMode::Parallel { shards: 2 },
        };
        case.assert_equivalent(mode);
    }
}

/// A configured-registry accuracy source makes the *timing* of a collector's first
/// platform contact observable: the scan loop's first (empty) poll of a freshly
/// dispatched batch is when the collector seeds the shared registry, and every other
/// job's vote weights read that registry. The heap loop owes fresh batches the same
/// first-tick poll — skipping it would delay the seeding to the batch's first arrival
/// and silently shift every concurrent job's weighting.
#[test]
fn heap_equals_scan_when_registry_seeding_depends_on_first_contact() {
    use cdas::core::accuracy::AccuracyRegistry;
    use cdas::engine::engine::AccuracySource;

    let run = |discovery| {
        let pool = WorkerPool::generate(&PoolConfig {
            latency: LatencyModel::Exponential { mean: 5.0 },
            ..PoolConfig::clean(14, 0.85, 41)
        });
        let mut scheduler = JobScheduler::new(
            SchedulerConfig {
                discovery,
                ..SchedulerConfig::default()
            },
            PoolLedger::from_pool(&pool),
        );
        // Job 0 carries an injected registry (high confidence for its own workers);
        // job 1 is gold-free, so its verdict weights come entirely from whatever the
        // shared registry holds when its votes stream in.
        let mut oracle = AccuracyRegistry::new();
        for worker in pool.workers() {
            oracle.set(worker.id, 0.9, 20);
        }
        for (i, (gold, source)) in [
            (2u64, AccuracySource::Registry(oracle)),
            (0u64, AccuracySource::GoldSampling),
        ]
        .into_iter()
        .enumerate()
        {
            scheduler.submit(
                ScheduledJob::named(
                    JobKind::SentimentAnalytics,
                    format!("job-{i}"),
                    demo_questions(8, gold),
                )
                .with_engine(EngineConfig {
                    workers: WorkerCountPolicy::Fixed(5),
                    verification: VerificationStrategy::Probabilistic,
                    termination: Some(TerminationStrategy::ExpMax),
                    domain_size: Some(3),
                    accuracy_source: source,
                    ..EngineConfig::default()
                })
                .with_batch_size(4),
            );
        }
        let mut platform = SimulatedPlatform::new(pool, CostModel::default(), 41);
        scheduler.run_clocked(&mut platform).unwrap()
    };
    assert_eq!(
        run(ArrivalDiscovery::Heap).ignoring_wall_clock(),
        run(ArrivalDiscovery::Scan).ignoring_wall_clock()
    );
}

/// Delegating platform that hides the arrival look-ahead for a configurable subset of
/// HITs: `None` from `next_arrival` demotes those HITs to untracked — the heap loop must
/// fall back to the scan loop's every-tick poll for them, and only them.
struct PartialLookahead {
    inner: SimulatedPlatform,
    /// Hide the look-ahead for HITs whose id satisfies `id % modulus == remainder`.
    modulus: u64,
    remainder: u64,
}

impl CrowdPlatform for PartialLookahead {
    fn publish(&mut self, request: HitRequest) -> HitId {
        self.inner.publish(request)
    }
    fn publish_to(
        &mut self,
        request: HitRequest,
        workers: &[cdas::core::types::WorkerId],
    ) -> HitId {
        self.inner.publish_to(request, workers)
    }
    fn advance_time(&mut self, now: f64) {
        self.inner.advance_time(now);
    }
    fn poll(&mut self, hit: HitId, now: f64) -> Vec<WorkerAnswer> {
        self.inner.poll(hit, now)
    }
    fn next_arrival(&self, hit: HitId) -> Option<f64> {
        if hit.0 % self.modulus == self.remainder {
            None
        } else {
            self.inner.next_arrival(hit)
        }
    }
    fn cancel(&mut self, hit: HitId, now: f64) -> CancelReceipt {
        self.inner.cancel(hit, now)
    }
    fn total_cost(&self) -> f64 {
        self.inner.total_cost()
    }
}

fn hand_wired(discovery: ArrivalDiscovery, seed: u64) -> (JobScheduler, WorkerPool) {
    let pool = WorkerPool::generate(&PoolConfig {
        latency: LatencyModel::Exponential { mean: 5.0 },
        ..PoolConfig::clean(14, 0.88, seed)
    });
    let mut scheduler = JobScheduler::new(
        SchedulerConfig {
            discovery,
            ..SchedulerConfig::default()
        },
        PoolLedger::from_pool(&pool),
    );
    for (i, termination) in [
        Some(TerminationStrategy::ExpMax),
        None,
        Some(TerminationStrategy::MinMax),
    ]
    .into_iter()
    .enumerate()
    {
        scheduler.submit(
            ScheduledJob::named(
                JobKind::SentimentAnalytics,
                format!("job-{i}"),
                demo_questions(8, 2),
            )
            .with_engine(EngineConfig {
                workers: WorkerCountPolicy::Fixed(4),
                verification: VerificationStrategy::Probabilistic,
                termination,
                domain_size: Some(3),
                ..EngineConfig::default()
            })
            .with_batch_size(4),
        );
    }
    (scheduler, pool)
}

/// Untracked HITs (no finite look-ahead) take the every-tick poll path in both modes:
/// with a platform that hides the look-ahead for half the HIT-id space — and one that
/// hides it entirely, degrading to the end-of-time drain — heap must still equal scan.
#[test]
fn heap_equals_scan_with_partially_and_fully_hidden_lookahead() {
    for (modulus, remainder) in [(2, 1), (1, 0)] {
        let run = |discovery| {
            let (mut scheduler, pool) = hand_wired(discovery, 23);
            let mut platform = PartialLookahead {
                inner: SimulatedPlatform::new(pool, CostModel::default(), 23),
                modulus,
                remainder,
            };
            scheduler.run_clocked(&mut platform).unwrap()
        };
        let heap = run(ArrivalDiscovery::Heap);
        let scan = run(ArrivalDiscovery::Scan);
        assert_eq!(
            heap.ignoring_wall_clock(),
            scan.ignoring_wall_clock(),
            "diverged with look-ahead hidden for id % {modulus} == {remainder}"
        );
    }
}

/// Spy platform for the lazy-deletion regression: records every [`CancelReceipt`] and
/// every poll that targets an already-cancelled HIT (a "ghost arrival").
struct CancelSpy {
    inner: SimulatedPlatform,
    cancelled_at: BTreeMap<HitId, f64>,
    reclaimed: f64,
    receipts: usize,
    ghost_polls: Vec<(HitId, f64)>,
}

impl CrowdPlatform for CancelSpy {
    fn publish(&mut self, request: HitRequest) -> HitId {
        self.inner.publish(request)
    }
    fn publish_to(
        &mut self,
        request: HitRequest,
        workers: &[cdas::core::types::WorkerId],
    ) -> HitId {
        self.inner.publish_to(request, workers)
    }
    fn advance_time(&mut self, now: f64) {
        self.inner.advance_time(now);
    }
    fn poll(&mut self, hit: HitId, now: f64) -> Vec<WorkerAnswer> {
        if self.cancelled_at.contains_key(&hit) {
            self.ghost_polls.push((hit, now));
        }
        self.inner.poll(hit, now)
    }
    fn next_arrival(&self, hit: HitId) -> Option<f64> {
        self.inner.next_arrival(hit)
    }
    fn cancel(&mut self, hit: HitId, now: f64) -> CancelReceipt {
        let receipt = self.inner.cancel(hit, now);
        if receipt.cancelled_anything() {
            self.cancelled_at.insert(hit, now);
            self.reclaimed += receipt.reclaimed_minutes;
            self.receipts += 1;
        }
        receipt
    }
    fn total_cost(&self) -> f64 {
        self.inner.total_cost()
    }
}

/// The lazy-deletion regression at the scheduler level: after a mid-flight
/// `cancel(hit, now)`, the heap scheduler never polls that HIT again (its stale queue
/// entry dies silently instead of firing a ghost arrival), and the fleet's
/// `reclaimed_minutes` equals the sum the platform's receipts actually handed back.
#[test]
fn cancelled_hits_fire_no_ghost_arrivals_and_receipts_match() {
    let (mut scheduler, pool) = hand_wired(ArrivalDiscovery::Heap, 31);
    let mut spy = CancelSpy {
        inner: SimulatedPlatform::new(pool, CostModel::default(), 31),
        cancelled_at: BTreeMap::new(),
        reclaimed: 0.0,
        receipts: 0,
        ghost_polls: Vec::new(),
    };
    let report = scheduler.run_clocked(&mut spy).unwrap();

    assert!(
        spy.receipts > 0,
        "the workload must actually cancel mid-flight for this regression to bite"
    );
    assert!(
        spy.ghost_polls.is_empty(),
        "cancelled HITs were polled again: {:?}",
        spy.ghost_polls
    );
    assert!(
        (report.reclaimed_minutes - spy.reclaimed).abs() < 1e-9,
        "fleet reports {} reclaimed minutes but the receipts handed back {}",
        report.reclaimed_minutes,
        spy.reclaimed
    );
}

/// The same lazy-deletion contract end to end through the Fleet facade: the clocked run
/// cancels mid-flight (reclaimed minutes are positive), the report's reclaimed total
/// equals the `LeaseReclaimed` event stream's total, and the heap run's accounting is
/// bit-identical to the scan oracle's.
#[test]
fn facade_reclaimed_minutes_match_the_event_stream_and_the_scan_oracle() {
    let case = contended_case();
    let heap = case.build(ArrivalDiscovery::Heap);
    let run = heap.run(ExecutionMode::Clocked).unwrap();
    let report = run.report();
    assert!(
        report.reclaimed_minutes > 0.0,
        "the contended case must cancel mid-flight"
    );
    let streamed: f64 = run
        .events()
        .iter()
        .filter_map(|event| match event {
            FleetEvent::LeaseReclaimed { minutes, .. } => Some(*minutes),
            _ => None,
        })
        .sum();
    assert!(
        (report.reclaimed_minutes - streamed).abs() < 1e-9,
        "report says {} reclaimed but the event stream carries {streamed}",
        report.reclaimed_minutes
    );
    let scan = case
        .build(ArrivalDiscovery::Scan)
        .run(ExecutionMode::Clocked)
        .unwrap();
    assert_eq!(
        run.report().ignoring_wall_clock(),
        scan.report().ignoring_wall_clock()
    );
}
