//! The resident-service surface: admission decisions stream back per ticket, killed
//! services recover from their directory alone, and recovered-then-finished lifetimes
//! are indistinguishable from never-crashed ones.
//!
//! Three attack surfaces, mirroring the fleet-level suites one layer up:
//!
//! * **kill between submissions** — drop the service (no `shutdown`) after some
//!   submissions landed; [`FleetService::recover`] must hand the admitted-but-unrun
//!   tickets back as journaled-pending, and finishing the recovered service must
//!   produce a [`ServiceReport`] bit-identical (wall clock aside) to one from a
//!   service that never died,
//! * **kill mid-epoch** — a platform failpoint panics inside
//!   `run_epoch_with_failpoints` after `ServiceEpochStarted` hit the manifest; the
//!   epoch's run journal is half-written and recovery resumes it without re-paying
//!   journaled HITs,
//! * **admission invariants under random mixes** (proptests) — a job is never
//!   *accepted* when its live-mix predicted makespan exceeds its deadline, and
//!   queued servable jobs always drain (no starvation under round-robin).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Once;

use cdas::crowd::failpoint::FAILPOINT_PANIC;
use cdas::fixtures::demo_questions;
use cdas::prelude::*;
use proptest::prelude::*;

/// Keep the default panic hook from spamming stderr with injected panics.
fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|message| message == FAILPOINT_PANIC);
            if !injected {
                previous(info);
            }
        }));
    });
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdas-service-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> ServiceConfig {
    ServiceConfig::new(
        CrowdSpec::clean(12, 0.85)
            .seed(11)
            .latency(LatencyModel::Exponential { mean: 4.0 }),
    )
}

fn job(name: &str, workers: usize) -> JobSpec {
    JobSpec::sentiment(name, demo_questions(6, 2))
        .workers(workers)
        .domain_size(3)
        .batch_size(3)
}

/// Drive one full service lifetime: submit `alpha`+`beta`, run an epoch, submit
/// `gamma`, then shut down. `crash_after_submissions` kills (drops) the service after
/// the first two submissions and recovers it, proving the journaled-pending tickets
/// survive the kill; `crash_in_epoch` kills the first epoch mid-run via a platform
/// failpoint and recovers the wreckage.
fn lifetime(dir: &PathBuf, crash_after_submissions: bool, crash_in_epoch: bool) -> ServiceReport {
    let mut service = FleetService::open(dir, config()).unwrap();
    let a = service.submit(job("alpha", 4)).unwrap();
    let b = service.submit(job("beta", 3)).unwrap();

    if crash_after_submissions {
        // The kill: no shutdown, no epoch — just the process dying. Both admission
        // decisions were journaled before the tickets came back.
        drop(service);
        let (recovered, recovery) = FleetService::recover(dir).unwrap();
        service = recovered;
        assert!(!recovery.was_closed, "the killed service never closed");
        assert_eq!(
            recovery.pending,
            vec![a, b],
            "admitted-but-unrun submissions come back as journaled-pending"
        );
        assert!(recovery.epoch_recoveries.is_empty());
    }

    if crash_in_epoch {
        silence_injected_panics();
        let died = catch_unwind(AssertUnwindSafe(|| {
            service.run_epoch_with_failpoints(FleetFailpoints::platform(Failpoint::after_polls(2)))
        }))
        .is_err();
        assert!(died, "the epoch failpoint must fire");
        // The service struct is poisoned mid-epoch; a real supervisor starts over
        // from the directory.
        drop(service);
        let (recovered, recovery) = FleetService::recover(dir).unwrap();
        service = recovered;
        assert!(!recovery.was_closed);
        assert_eq!(
            recovery.epoch_recoveries.len(),
            1,
            "one epoch was journaled"
        );
        let epoch = recovery.epoch_recoveries[0]
            .as_ref()
            .expect("the crashed epoch had a run journal to resume");
        assert!(!epoch.was_complete, "the epoch's journal had no trailer");
        assert!(
            recovery.pending.is_empty(),
            "both tickets reached the epoch"
        );
    } else {
        let summary = service.run_epoch().unwrap().expect("two admitted jobs run");
        assert_eq!(summary.tickets, vec![a, b]);
    }

    let c = service.submit(job("gamma", 5)).unwrap();
    assert_eq!(c, JobTicket(2), "tickets stay dense across recovery");
    service.shutdown().unwrap()
}

#[test]
fn killing_between_submissions_then_recovering_equals_never_crashed() {
    let clean = lifetime(&temp_dir("clean-a"), false, false);
    let crashed = lifetime(&temp_dir("killed-submissions"), true, false);
    assert_eq!(
        crashed.ignoring_wall_clock(),
        clean.ignoring_wall_clock(),
        "a service killed between submissions and recovered must be \
         indistinguishable from one that never crashed"
    );
    assert_eq!(crashed.events, clean.events, "event streams match exactly");
}

#[test]
fn killing_mid_epoch_then_recovering_equals_never_crashed() {
    let clean = lifetime(&temp_dir("clean-b"), false, false);
    let crashed = lifetime(&temp_dir("killed-epoch"), false, true);
    assert_eq!(
        crashed.ignoring_wall_clock(),
        clean.ignoring_wall_clock(),
        "a service killed mid-epoch and recovered must be indistinguishable \
         from one that never crashed"
    );
}

#[test]
fn recovered_epoch_work_is_not_repaid() {
    silence_injected_panics();
    let dir = temp_dir("no-double-pay");
    let mut service = FleetService::open(&dir, config()).unwrap();
    let _ = service.submit(job("alpha", 4)).unwrap();
    let _ = service.submit(job("beta", 3)).unwrap();
    let died = catch_unwind(AssertUnwindSafe(|| {
        service.run_epoch_with_failpoints(FleetFailpoints::platform(Failpoint::after_polls(4)))
    }))
    .is_err();
    assert!(died);
    drop(service);
    let (recovered, recovery) = FleetService::recover(&dir).unwrap();
    let epoch = recovery.epoch_recoveries[0]
        .as_ref()
        .expect("run journal present");
    assert!(
        epoch.recovered_hits > 0,
        "HITs the crashed epoch paid for were matched against the journal, not re-run"
    );
    let report = recovered.shutdown().unwrap();
    // Every journaled dollar is in the final accounting exactly once.
    assert!((report.total_cost - report.epochs[0].fleet.cost).abs() < 1e-9);
}

#[test]
fn decisions_stream_per_ticket_across_recovery() {
    let dir = temp_dir("decision-stream");
    let mut service = FleetService::open(&dir, config()).unwrap();
    let a = service.submit(job("alpha", 4)).unwrap();
    // A deadline no idle crowd can meet is rejected, and the rejection is journaled.
    let rejected = service.submit(job("hopeless", 4).deadline_minutes(0.001));
    let r = match rejected {
        Err(Rejected::Policy { ticket, .. }) => ticket,
        other => panic!("expected a policy rejection, got {other:?}"),
    };
    drop(service);
    let (mut recovered, _) = FleetService::recover(&dir).unwrap();
    let a_events = recovered.poll(a);
    assert!(matches!(
        a_events.first(),
        Some(ServiceEvent::Submitted {
            decision: AdmissionDecision::Accept,
            ..
        })
    ));
    let r_events = recovered.poll(r);
    assert!(
        matches!(
            r_events.first(),
            Some(ServiceEvent::Submitted {
                decision: AdmissionDecision::Reject,
                ..
            })
        ),
        "the journaled rejection streams back after recovery"
    );
    let report = recovered.shutdown().unwrap();
    assert_eq!(report.submitted, 2);
    assert_eq!(report.rejected, 1);
}

#[test]
fn recovering_a_closed_service_is_a_clean_no_op_resume() {
    let dir = temp_dir("closed");
    let clean = lifetime(&dir, false, false);
    let (recovered, recovery) = FleetService::recover(&dir).unwrap();
    assert!(recovery.was_closed);
    assert!(recovery.pending.is_empty());
    assert!(recovery
        .epoch_recoveries
        .iter()
        .all(|r| r.as_ref().is_some_and(|r| r.was_complete)));
    assert_eq!(recovered.events(), &clean.events[..]);
}

proptest! {
    /// Admission never *accepts* a job whose live-mix predicted makespan exceeds its
    /// deadline — across random worker demands, deadlines, and pre-existing mixes.
    #[test]
    fn accepted_jobs_always_fit_their_deadline(
        preload in 0usize..3,
        workers in 1usize..10,
        deadline_minutes in 1u64..30,
    ) {
        let dir = temp_dir(&format!("deadline-{preload}-{workers}-{deadline_minutes}"));
        let mut service = FleetService::open(&dir, config()).unwrap();
        for i in 0..preload {
            let _ = service.submit(job(&format!("mix-{i}"), 4));
        }
        let deadline = deadline_minutes as f64;
        let result = service.submit(
            job("probe", workers).deadline_minutes(deadline),
        );
        if let Ok(ticket) = result {
            let accepted = service.subscribe(ticket).any(|e| matches!(
                e,
                ServiceEvent::Submitted { decision: AdmissionDecision::Accept, forecast, .. }
                    if forecast.makespan_minutes <= deadline
            ));
            let queued = service.subscribe(ticket).any(|e| matches!(
                e,
                ServiceEvent::Submitted { decision: AdmissionDecision::Queue, .. }
            ));
            prop_assert!(
                accepted || queued,
                "an admitted deadline job is either queued or predicted to fit"
            );
        }
    }

    /// Servable queued jobs always drain: with no budget and no deadlines, every
    /// submission that was not rejected is served by some epoch before shutdown.
    #[test]
    fn queued_jobs_are_never_starved(
        jobs in 1usize..6,
        workers in 1usize..9,
    ) {
        let dir = temp_dir(&format!("starve-{jobs}-{workers}"));
        let mut service = FleetService::open(&dir, config()).unwrap();
        for i in 0..jobs {
            // Every job individually fits the 12-worker crowd, so none may starve.
            let _ = service
                .submit(job(&format!("j{i}"), workers))
                .expect("a servable job is never rejected");
        }
        let report = service.shutdown().unwrap();
        prop_assert!(
            report.unserved.is_empty(),
            "round-robin epochs must drain every queued servable job"
        );
        prop_assert_eq!(report.rejected, 0);
        let served: usize = report.epochs.iter().map(|e| e.jobs.len()).sum();
        prop_assert_eq!(served, jobs, "each submission runs in exactly one epoch");
    }
}
