//! Integration test: the quality guarantees the answering model claims — the prediction
//! model's worker estimate really does drive the *measured* accuracy of the verification
//! strategies above the requirement (Theorem 3 + Theorem 4 exercised against the simulated
//! crowd rather than in isolation).

use cdas::core::prediction::PredictionModel;
use cdas::core::types::{AnswerDomain, Label, Observation, QuestionId, Vote};
use cdas::core::verification::probabilistic::ProbabilisticVerifier;
use cdas::core::verification::voting::HalfVoting;
use cdas::core::verification::Verifier;
use cdas::crowd::question::CrowdQuestion;
use cdas::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulate one question answered by `n` random workers of the pool and verify it with the
/// probabilistic model using the workers' true accuracies.
fn run_question(
    pool: &WorkerPool,
    question: &CrowdQuestion,
    n: usize,
    rng: &mut StdRng,
) -> (Label, Label) {
    let workers = pool.assign(n, rng);
    let votes: Vec<Vote> = workers
        .iter()
        .map(|w| {
            Vote::new(
                w.id,
                w.answer(question, rng),
                w.effective_accuracy(question),
            )
        })
        .collect();
    let observation = Observation::from_votes(votes);
    let verifier = ProbabilisticVerifier::with_domain_size(question.domain.size());
    let best = verifier.verify(&observation).unwrap().best().clone();
    (best, question.ground_truth.clone())
}

fn sentiment_question(id: u64) -> CrowdQuestion {
    CrowdQuestion::new(
        QuestionId(id),
        AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
        Label::from("Positive"),
    )
}

#[test]
fn predicted_worker_count_achieves_the_required_accuracy_in_simulation() {
    let pool = WorkerPool::generate(&PoolConfig::clean(400, 0.7, 3));
    let mu = 0.7;
    let model = PredictionModel::new(mu).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    for required in [0.75, 0.85, 0.95] {
        let n = model.refined_workers(required).unwrap() as usize;
        let trials = 400;
        let mut correct = 0usize;
        for i in 0..trials {
            let q = sentiment_question(i as u64);
            let (answer, truth) = run_question(&pool, &q, n, &mut rng);
            if answer == truth {
                correct += 1;
            }
        }
        let measured = correct as f64 / trials as f64;
        // Simulation noise: allow a 3-point slack below the requirement.
        assert!(
            measured >= required - 0.03,
            "required {required}, n={n}, measured only {measured}"
        );
    }
}

#[test]
fn verification_beats_half_voting_with_heterogeneous_workers() {
    // The Figure 7 claim, measured end to end: with a mixed-accuracy pool the probabilistic
    // verifier beats Half-Voting at the same worker count.
    let pool = WorkerPool::generate(&PoolConfig {
        size: 400,
        seed: 23,
        ..PoolConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(29);
    let n = 7usize;
    let trials = 500;
    let mut prob_correct = 0usize;
    let mut half_correct = 0usize;
    for i in 0..trials {
        let q = sentiment_question(i as u64);
        let workers = pool.assign(n, &mut rng);
        let votes: Vec<Vote> = workers
            .iter()
            .map(|w| Vote::new(w.id, w.answer(&q, &mut rng), w.effective_accuracy(&q)))
            .collect();
        let observation = Observation::from_votes(votes);
        let prob = ProbabilisticVerifier::with_domain_size(3)
            .decide(&observation)
            .unwrap();
        if prob.label() == Some(&q.ground_truth) {
            prob_correct += 1;
        }
        let half = HalfVoting::new(n).decide(&observation).unwrap();
        if half.label() == Some(&q.ground_truth) {
            half_correct += 1;
        }
    }
    let prob_acc = prob_correct as f64 / trials as f64;
    let half_acc = half_correct as f64 / trials as f64;
    assert!(
        prob_acc >= half_acc,
        "verification ({prob_acc}) should not lose to half-voting ({half_acc})"
    );
    assert!(prob_acc > 0.8, "verification accuracy too low: {prob_acc}");
}

#[test]
fn spammers_and_colluders_degrade_voting_more_than_verification() {
    // A quarter of the pool is malicious; verification down-weights them via sampling-style
    // accuracies, voting cannot.
    let pool = WorkerPool::generate(&PoolConfig {
        size: 300,
        spammer_fraction: 0.15,
        colluder_fraction: 0.10,
        seed: 31,
        ..PoolConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(37);
    let trials = 400;
    let n = 9usize;
    let mut prob_correct = 0usize;
    let mut half_correct = 0usize;
    for i in 0..trials {
        let q = sentiment_question(i as u64);
        let workers = pool.assign(n, &mut rng);
        let votes: Vec<Vote> = workers
            .iter()
            .map(|w| Vote::new(w.id, w.answer(&q, &mut rng), w.effective_accuracy(&q)))
            .collect();
        let observation = Observation::from_votes(votes);
        if ProbabilisticVerifier::with_domain_size(3)
            .decide(&observation)
            .unwrap()
            .label()
            == Some(&q.ground_truth)
        {
            prob_correct += 1;
        }
        if HalfVoting::new(n).decide(&observation).unwrap().label() == Some(&q.ground_truth) {
            half_correct += 1;
        }
    }
    assert!(
        prob_correct >= half_correct,
        "verification ({prob_correct}) should tolerate malicious workers at least as well as voting ({half_correct})"
    );
}
