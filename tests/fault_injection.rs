//! Fault-injection harness: kill threads mid-run, then prove recovery.
//!
//! Where `tests/journal_recovery.rs` attacks the journal's *bytes* (write kills,
//! truncation, corruption), this suite attacks the *process*: a [`FailpointPlatform`]
//! panics mid-poll — on the single platform of an `EndOfTime`/`Clocked` run, or on one
//! shard thread of a `Parallel` run (the kill -9 drill) — and `Fleet::recover` must
//! resume the journaled wreckage to a run indistinguishable from one that never
//! crashed, without re-paying any HIT the crashed run already committed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Once;

use cdas::core::CdasError;
use cdas::crowd::failpoint::FAILPOINT_PANIC;
use cdas::fixtures::demo_questions;
use cdas::prelude::*;
use proptest::prelude::*;

/// Keep the default panic hook from spamming stderr with the injected panics the
/// proptests below throw by the dozen; genuine panics still print.
fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|message| message == FAILPOINT_PANIC);
            if !injected {
                previous(info);
            }
        }));
    });
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdas-fault-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn crowd() -> CrowdSpec {
    CrowdSpec::clean(12, 0.85)
        .seed(11)
        .latency(LatencyModel::Exponential { mean: 4.0 })
}

fn builder() -> FleetBuilder<CrowdSpec> {
    Fleet::builder()
        .crowd(crowd())
        .job(
            JobSpec::sentiment("alpha", demo_questions(6, 2))
                .workers(4)
                .domain_size(3)
                .batch_size(3),
        )
        .job(
            JobSpec::sentiment("beta", demo_questions(5, 1))
                .workers(3)
                .domain_size(3)
                .batch_size(5),
        )
}

fn baseline(mode: ExecutionMode) -> FleetRun {
    builder().build().unwrap().run(mode).unwrap()
}

fn journaled(dir: &Path) -> Fleet {
    builder().journal(dir).build().unwrap()
}

fn assert_equals_baseline(run: &FleetRun, expected: &FleetRun, context: &str) {
    assert_eq!(
        run.report().ignoring_wall_clock(),
        expected.report().ignoring_wall_clock(),
        "{context}: report differs from the uninterrupted run"
    );
    assert_eq!(
        run.events(),
        expected.events(),
        "{context}: event stream differs from the uninterrupted run"
    );
}

/// Crash a journaled run via the given failpoints and return whether it actually died.
fn crash(fleet: &Fleet, mode: ExecutionMode, failpoints: FleetFailpoints) -> bool {
    match catch_unwind(AssertUnwindSafe(|| {
        fleet.run_with_failpoints(mode, failpoints)
    })) {
        Ok(result) => {
            result.expect("an un-crashed run must succeed");
            false
        }
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert_eq!(message, FAILPOINT_PANIC, "only the injected crash may fire");
            true
        }
    }
}

/// The kill -9 regression drill: abort one shard thread of a 2-shard parallel run,
/// recover, and prove the healthy shard's journaled work was **not** re-paid.
#[test]
fn killing_a_shard_thread_recovers_without_double_paying() {
    silence_injected_panics();
    let mode = ExecutionMode::Parallel { shards: 2 };
    let expected = baseline(mode);
    let dir = temp_dir("shard-kill");
    let fleet = journaled(&dir);
    assert!(
        crash(
            &fleet,
            mode,
            FleetFailpoints::on_shard(1, Failpoint::after_polls(3))
        ),
        "shard 1 must die mid-run"
    );

    let (run, report) = Fleet::recover(&dir).unwrap();
    assert_equals_baseline(&run, &expected, "shard-kill recovery");
    assert!(!report.was_complete, "the crashed journal had no trailer");
    assert!(
        report.recovered_hits > 0,
        "the healthy shard's commits were journaled and matched, not re-paid"
    );
    assert!(
        report.resumed_hits > 0,
        "the dead shard's unfinished work was resumed"
    );
    let dispatched = expected
        .events()
        .iter()
        .filter(|e| matches!(e, FleetEvent::HitDispatched { .. }))
        .count();
    assert_eq!(
        report.recovered_hits + report.resumed_hits,
        dispatched,
        "every HIT is paid exactly once across crash and resume"
    );
    assert!(
        (report.total_cost() - expected.report().fleet.cost).abs() < 1e-9,
        "recovered + resumed dollars equal the uninterrupted run's cost"
    );

    // The resumed journal is complete: a second recovery re-pays nothing at all.
    let (_, second) = Fleet::recover(&dir).unwrap();
    assert!(second.was_complete);
    assert_eq!(second.resumed_hits, 0);
}

/// The crash matrix: a platform failpoint in each execution mode, at an early and a
/// late poll. Recovery always reproduces the uninterrupted run.
#[test]
fn crash_matrix_across_all_modes() {
    silence_injected_panics();
    for (m, mode) in [
        ExecutionMode::EndOfTime,
        ExecutionMode::Clocked,
        ExecutionMode::Parallel { shards: 2 },
    ]
    .into_iter()
    .enumerate()
    {
        let expected = baseline(mode);
        // An EndOfTime run polls each HIT exactly once (4 batches here), so its "late"
        // crash comes at poll 3; the clocked modes poll per arrival event and go longer.
        let late = if mode == ExecutionMode::EndOfTime {
            3
        } else {
            9
        };
        for polls in [0, 2, late] {
            let dir = temp_dir(&format!("matrix-{m}-{polls}"));
            let fleet = journaled(&dir);
            assert!(
                crash(
                    &fleet,
                    mode,
                    FleetFailpoints::platform(Failpoint::after_polls(polls))
                ),
                "{mode:?}: a {polls}-poll failpoint must fire before the run completes"
            );
            let (run, report) = Fleet::recover(&dir).unwrap();
            assert_equals_baseline(&run, &expected, &format!("{mode:?} after {polls} polls"));
            assert!(!report.was_complete);
        }
    }
}

/// A journal is required to recover a crash: without one, the wreckage is just a panic.
#[test]
fn recovering_an_unjournaled_crash_has_nothing_to_recover() {
    silence_injected_panics();
    let dir = temp_dir("unjournaled");
    std::fs::create_dir_all(&dir).unwrap();
    let fleet = builder().build().unwrap();
    assert!(crash(
        &fleet,
        ExecutionMode::Clocked,
        FleetFailpoints::platform(Failpoint::after_polls(1)),
    ));
    match Fleet::recover(&dir) {
        Err(CdasError::JournalEmpty) => {}
        other => panic!("expected JournalEmpty, got {other:?}"),
    }
}

proptest! {
    /// Abort a random shard after a random number of polls, across 1- and 2-shard
    /// parallel runs. Whether or not the failpoint fires before the run finishes,
    /// recover-then-resume equals never-crashed.
    #[test]
    fn shard_abort_then_recover_equals_never_crashed(
        polls in 0u64..60,
        shard in 0usize..2,
        shards in 1usize..3,
    ) {
        silence_injected_panics();
        let mode = ExecutionMode::Parallel { shards };
        let expected = baseline(mode);
        let dir = temp_dir(&format!("abort-{polls}-{shard}-{shards}"));
        let fleet = journaled(&dir);
        let died = crash(
            &fleet,
            mode,
            FleetFailpoints::on_shard(shard.min(shards - 1), Failpoint::after_polls(polls)),
        );
        let (run, report) = Fleet::recover(&dir).unwrap();
        assert_equals_baseline(&run, &expected, "shard-abort recovery");
        prop_assert_eq!(report.was_complete, !died, "a run that survived journaled its trailer");
        let dispatched = expected
            .events()
            .iter()
            .filter(|e| matches!(e, FleetEvent::HitDispatched { .. }))
            .count();
        prop_assert_eq!(report.recovered_hits + report.resumed_hits, dispatched);
        prop_assert!((report.total_cost() - expected.report().fleet.cost).abs() < 1e-9);
    }
}
