//! Integration tests of the multi-job scheduler: mixed TSA + IT jobs multiplexed over one
//! shared worker pool, with disjoint per-HIT worker leases and a fleet-wide shared
//! accuracy registry (cross-job reuse of gold estimates).

use cdas::core::economics::CostModel;
use cdas::crowd::question::CrowdQuestion;
use cdas::prelude::*;
use cdas::workloads::it::images::SyntheticImage;
use cdas::workloads::tsa::tweets::Tweet;

fn tweets(seed: u64, count: usize) -> Vec<Tweet> {
    let mut g = TweetGenerator::new(TweetGeneratorConfig {
        seed,
        ..TweetGeneratorConfig::default()
    });
    g.generate("Thor", count)
}

fn images(seed: u64, count: usize) -> Vec<SyntheticImage> {
    let mut g = ImageGenerator::new(ImageGeneratorConfig {
        seed,
        ..ImageGeneratorConfig::default()
    });
    g.generate("tiger", count)
}

fn fixed_engine(n: usize, domain: Option<usize>) -> EngineConfig {
    EngineConfig {
        workers: WorkerCountPolicy::Fixed(n),
        domain_size: domain,
        ..EngineConfig::default()
    }
}

/// TSA questions with gold flags, exactly as the TSA application renders them.
fn tsa_questions(seed: u64, count: usize) -> Vec<CrowdQuestion> {
    let ts = tweets(seed, count);
    let refs: Vec<&Tweet> = ts.iter().collect();
    TsaApp::new(TsaConfig::default()).build_questions(&refs)
}

/// IT questions with gold flags, exactly as the IT application renders them.
fn it_questions(seed: u64, count: usize) -> Vec<CrowdQuestion> {
    let imgs = images(seed, count);
    let refs: Vec<&SyntheticImage> = imgs.iter().collect();
    ImageTaggingApp::new(ItConfig::default()).build_questions(&refs)
}

/// IT questions with NO gold questions at all: a job that can never estimate worker
/// accuracy on its own and must rely on what other jobs learned.
fn it_questions_no_gold(seed: u64, count: usize) -> Vec<CrowdQuestion> {
    images(seed, count)
        .iter()
        .map(|img| {
            CrowdQuestion::new(img.id, img.domain(), img.truth_label())
                .with_difficulty(img.difficulty)
        })
        .collect()
}

fn setup(pool_size: usize, accuracy: f64, seed: u64) -> (SimulatedPlatform, PoolLedger) {
    let pool = WorkerPool::generate(&PoolConfig::clean(pool_size, accuracy, seed));
    let ledger = PoolLedger::from_pool(&pool);
    (
        SimulatedPlatform::new(pool, CostModel::default(), seed),
        ledger,
    )
}

#[test]
fn mixed_fleet_completes_all_jobs_against_one_pool() {
    let (mut platform, ledger) = setup(16, 0.8, 77);
    let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);

    let thor = scheduler.submit(
        ScheduledJob::named(
            JobKind::SentimentAnalytics,
            "thor-tsa",
            tsa_questions(1, 30),
        )
        .with_engine(fixed_engine(7, Some(3)))
        .with_batch_size(10),
    );
    let hulk = scheduler.submit(
        ScheduledJob::named(
            JobKind::SentimentAnalytics,
            "hulk-tsa",
            tsa_questions(2, 30),
        )
        .with_engine(fixed_engine(7, Some(3)))
        .with_batch_size(10),
    );
    let tiger = scheduler.submit(
        ScheduledJob::named(JobKind::ImageTagging, "tiger-it", it_questions(3, 20))
            .with_engine(fixed_engine(5, None))
            .with_batch_size(10),
    );

    let report = scheduler.run(&mut platform).unwrap();
    assert_eq!(report.jobs.len(), 3);

    // Every job resolved every one of its real (non-gold) questions.
    for (id, questions) in [
        (thor, tsa_questions(1, 30)),
        (hulk, tsa_questions(2, 30)),
        (tiger, it_questions(3, 20)),
    ] {
        let real = questions.iter().filter(|q| !q.is_gold).count();
        let job = &report.jobs[id.0];
        assert_eq!(
            job.report.questions, real,
            "{} scored every question",
            job.name
        );
        assert!(job.hits >= 2, "{} was split into batches", job.name);
    }

    // Quality holds fleet-wide even under contention.
    assert!(
        report.fleet.accuracy > 0.8,
        "fleet accuracy {}",
        report.fleet.accuracy
    );
    assert!(report.total_cost() > 0.0);
    assert!(report.questions_per_tick() > 0.0);

    // A 16-worker pool cannot fit 7+7+5 workers at once, so at least one job waited.
    assert!(
        report.jobs.iter().any(|j| j.ticks_waited > 0),
        "expected pool contention across 3 jobs on 16 workers"
    );
    // But at least two HITs were in flight together: jobs really ran concurrently.
    assert!(
        report.max_concurrent_hits() >= 2,
        "expected concurrent HITs, got {}",
        report.max_concurrent_hits()
    );
}

#[test]
fn concurrent_hits_never_share_a_worker_and_never_repeat_one() {
    let (mut platform, ledger) = setup(25, 0.8, 13);
    let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
    for (name, seed) in [("a", 4u64), ("b", 5), ("c", 6)] {
        scheduler.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, name, tsa_questions(seed, 20))
                .with_engine(fixed_engine(7, Some(3)))
                .with_batch_size(5),
        );
    }
    let report = scheduler.run(&mut platform).unwrap();

    for a in &report.dispatches {
        // Within one HIT, a worker appears exactly once — so no worker ever answers
        // the same question twice.
        let mut ids: Vec<u64> = a.workers.iter().map(|w| w.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.workers.len(), "duplicate worker inside a HIT");

        // Across HITs in flight during the same tick, worker sets are disjoint.
        for b in &report.dispatches {
            if a.tick == b.tick && (a.job, a.hit) != (b.job, b.hit) {
                assert!(
                    a.workers.iter().all(|w| !b.workers.contains(w)),
                    "tick {}: HITs {:?} and {:?} share a worker",
                    a.tick,
                    a.hit,
                    b.hit
                );
            }
        }
    }
}

#[test]
fn accuracy_learned_in_one_job_reweights_votes_in_another() {
    let (mut platform, ledger) = setup(15, 0.8, 99);
    let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);

    // Job A (TSA) carries gold questions: it is the only source of accuracy estimates.
    scheduler.submit(
        ScheduledJob::named(JobKind::SentimentAnalytics, "teacher", tsa_questions(8, 40))
            .with_engine(fixed_engine(7, Some(3)))
            .with_batch_size(10),
    );
    // Job B (IT) has ZERO gold questions: alone, it could never estimate anyone.
    let student = scheduler.submit(
        ScheduledJob::named(
            JobKind::ImageTagging,
            "student",
            it_questions_no_gold(9, 20),
        )
        .with_engine(fixed_engine(7, None))
        .with_batch_size(10),
    );

    let report = scheduler.run(&mut platform).unwrap();

    // The student's verification registries are populated purely by estimates sampled in
    // the teacher's gold questions (samples > 0 proves gold sampling, which the student
    // cannot have done).
    let student_runs = scheduler.outcomes(student);
    assert!(!student_runs.is_empty());
    let mut saw_estimates = false;
    for (questions, outcome) in student_runs {
        assert!(questions.iter().all(|q| !q.is_gold), "student has no gold");
        if !outcome.registry.is_empty() {
            saw_estimates = true;
            assert!(
                outcome.registry.iter().all(|(_, e)| e.samples > 0),
                "student estimates must come from gold sampling in the teacher job"
            );
        }
    }
    assert!(
        saw_estimates,
        "cross-job reuse: the teacher's estimates never reached the student"
    );

    // The shared registry outlives the fleet and the cache did its job.
    assert!(report.registry_size > 0);
    assert!(scheduler.shared_registry().len() == report.registry_size);
    assert!(report.cache_misses > 0);
    assert!(
        report.cache_hit_rate() >= 0.0 && report.cache_hit_rate() <= 1.0,
        "hit rate is a fraction"
    );
}

#[test]
fn priority_policy_orders_mixed_kinds() {
    let (mut platform, ledger) = setup(9, 0.8, 55);
    let mut scheduler = JobScheduler::new(
        SchedulerConfig {
            policy: DispatchPolicy::Priority,
            ..SchedulerConfig::default()
        },
        ledger,
    );
    // The 9-worker pool fits exactly one 7-worker HIT at a time: strict serialization.
    let background = scheduler.submit(
        ScheduledJob::named(JobKind::ImageTagging, "background", it_questions(21, 12))
            .with_engine(fixed_engine(7, None))
            .with_batch_size(6),
    );
    let urgent = scheduler.submit(
        ScheduledJob::named(JobKind::SentimentAnalytics, "urgent", tsa_questions(22, 12))
            .with_engine(fixed_engine(7, Some(3)))
            .with_batch_size(6)
            .with_priority(10),
    );
    let report = scheduler.run(&mut platform).unwrap();
    let last_urgent = report
        .dispatches
        .iter()
        .filter(|d| d.job == urgent)
        .map(|d| d.tick)
        .max()
        .unwrap();
    let first_background = report
        .dispatches
        .iter()
        .filter(|d| d.job == background)
        .map(|d| d.tick)
        .min()
        .unwrap();
    assert!(
        last_urgent < first_background,
        "urgent drained first: urgent last {last_urgent}, background first {first_background}"
    );
    // The background job still completed — priority is not starvation.
    assert!(report.jobs[background.0].report.questions > 0);
}
