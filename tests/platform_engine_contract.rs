//! Integration test: the contract between the crowdsourcing engine and the crowd platform —
//! assignment counts, answer delivery, cancellation, and cost accounting.

use cdas::core::online::TerminationStrategy;
use cdas::core::types::{AnswerDomain, Label, QuestionId};
use cdas::crowd::hit::HitRequest;
use cdas::crowd::question::CrowdQuestion;
use cdas::engine::engine::AccuracySource;
use cdas::prelude::*;

fn questions(count: u64) -> Vec<CrowdQuestion> {
    (0..count)
        .map(|i| {
            CrowdQuestion::new(
                QuestionId(i),
                AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
                Label::from("Positive"),
            )
        })
        .collect()
}

fn platform(accuracy: f64, seed: u64) -> SimulatedPlatform {
    let pool = WorkerPool::generate(&PoolConfig::clean(100, accuracy, seed));
    SimulatedPlatform::new(pool, CostModel::default(), seed)
}

#[test]
fn platform_delivers_exactly_assignments_times_questions() {
    let mut p = platform(0.8, 1);
    let request = HitRequest::new(questions(6), 7, 0.01);
    let (_, answers) = p.publish_and_collect(request);
    assert_eq!(answers.len(), 42);
    // Every question gets exactly 7 answers, one per assigned worker.
    for q in 0..6u64 {
        let votes: Vec<_> = answers
            .iter()
            .filter(|a| a.question == QuestionId(q))
            .collect();
        assert_eq!(votes.len(), 7);
        let mut workers: Vec<u64> = votes.iter().map(|a| a.worker.0).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 7, "each worker answers a question once");
    }
}

#[test]
fn engine_cost_always_equals_platform_cost_and_clocked_termination_saves() {
    let offline_engine = CrowdsourcingEngine::new(EngineConfig {
        workers: WorkerCountPolicy::Fixed(15),
        verification: VerificationStrategy::Probabilistic,
        termination: None,
        domain_size: Some(3),
        ..EngineConfig::default()
    });
    let online_engine = CrowdsourcingEngine::new(EngineConfig {
        workers: WorkerCountPolicy::Fixed(15),
        verification: VerificationStrategy::Probabilistic,
        termination: Some(TerminationStrategy::ExpMax),
        domain_size: Some(3),
        ..EngineConfig::default()
    });

    // End-of-time collection polls every answer before verifying, so both modes pay the
    // full price — and, contract: `HitOutcome::cost` is exactly what the platform charged.
    // (The engine used to re-price terminated HITs at the consumed fraction, which made
    // its accounting diverge from `platform.total_cost()`.)
    let mut p_offline = platform(0.85, 3);
    let offline = offline_engine
        .run_hit(&mut p_offline, questions(10))
        .unwrap();
    let mut p_online = platform(0.85, 3);
    let online = online_engine.run_hit(&mut p_online, questions(10)).unwrap();
    let full_price = CostModel::default().hit_cost(15);
    assert!((offline.cost - full_price).abs() < 1e-9);
    assert!((offline.cost - p_offline.total_cost()).abs() < 1e-9);
    assert!((online.cost - full_price).abs() < 1e-9);
    assert!((online.cost - p_online.total_cost()).abs() < 1e-9);
    assert!(online.mean_answers_used() < 15.0, "termination still fired");

    // Real savings need real time: the clocked path polls up to the termination instant
    // and cancels mid-flight, so undelivered assignments are never charged. Workers must
    // finish asynchronously for that to matter (a constant-latency pool delivers every
    // answer in one event).
    let pool = WorkerPool::generate(&PoolConfig {
        latency: LatencyModel::Exponential { mean: 5.0 },
        ..PoolConfig::clean(100, 0.85, 3)
    });
    let mut p_clocked = SimulatedPlatform::new(pool, CostModel::default(), 3);
    let mut clock = cdas::crowd::clock::SimClock::new();
    let ticket = online_engine
        .publish_batch(&mut p_clocked, questions(10))
        .unwrap();
    let clocked = online_engine
        .collect_batch_clocked(&mut p_clocked, ticket, &mut clock)
        .unwrap();
    assert!(clocked.cancelled, "the HIT was cancelled mid-flight");
    assert!(
        clocked.outcome.cost < full_price,
        "early termination must save money when collection is clocked"
    );
    assert!((clocked.outcome.cost - p_clocked.total_cost()).abs() < 1e-9);
    assert!(clocked.reclaimed_minutes > 0.0);
}

#[test]
fn oracle_registry_and_gold_sampling_agree_on_clean_pools() {
    // With a uniform-accuracy pool, sampling-based estimation and the oracle registry lead
    // to the same verdicts on easy questions.
    let pool = WorkerPool::generate(&PoolConfig::clean(100, 0.85, 13));
    let reference = &questions(1)[0];
    let oracle = pool.oracle_registry(reference);

    let gold_engine = CrowdsourcingEngine::new(EngineConfig {
        workers: WorkerCountPolicy::Fixed(9),
        accuracy_source: AccuracySource::GoldSampling,
        domain_size: Some(3),
        ..EngineConfig::default()
    });
    let oracle_engine = CrowdsourcingEngine::new(EngineConfig {
        workers: WorkerCountPolicy::Fixed(9),
        accuracy_source: AccuracySource::Registry(oracle),
        domain_size: Some(3),
        ..EngineConfig::default()
    });

    // Mark a fifth of the questions gold for the sampling path.
    let mut qs = questions(25);
    for (i, q) in qs.iter_mut().enumerate() {
        if i % 5 == 0 {
            *q = q.clone().as_gold();
        }
    }
    let a = gold_engine
        .run_hit(
            &mut SimulatedPlatform::new(pool.clone(), CostModel::default(), 21),
            qs.clone(),
        )
        .unwrap();
    let b = oracle_engine
        .run_hit(
            &mut SimulatedPlatform::new(pool.clone(), CostModel::default(), 21),
            qs,
        )
        .unwrap();
    let labels = |o: &cdas::engine::HitOutcome| {
        o.real_verdicts()
            .map(|v| v.verdict.label().map(|l| l.as_str().to_string()))
            .collect::<Vec<_>>()
    };
    // Same platform seed ⇒ same raw answers; the two accuracy sources must agree on nearly
    // every verdict for a homogeneous pool.
    let same = labels(&a)
        .iter()
        .zip(labels(&b).iter())
        .filter(|(x, y)| x == y)
        .count();
    assert!(same >= 18, "only {same}/20 verdicts agree");
}

#[test]
fn privacy_manager_blocks_workers_and_masks_terms() {
    use cdas::core::types::WorkerId;
    use cdas::engine::privacy::PrivacyManager;
    let privacy = PrivacyManager::permissive()
        .redact_term("Acme Corp")
        .block_worker(WorkerId(2));
    assert!(!privacy.allows_worker(WorkerId(2)));
    assert!(privacy.allows_worker(WorkerId(3)));
    let masked = privacy.sanitize("Acme Corp quarterly report");
    assert!(!masked.contains("Acme Corp"));
}
