//! Guard against manifest/feature drift between `cdas::prelude` and the
//! sub-crates it re-exports from.
//!
//! Every item the prelude promises is checked to be *the same item* as the one
//! at its canonical path in the owning sub-crate — a `TypeId` comparison for
//! types, and a trait-bound check (the canonical implementor must satisfy the
//! prelude-named trait) for traits. If a sub-crate renames or re-homes an item,
//! or the umbrella crate's manifest stops wiring a sub-crate in, this test
//! stops compiling or fails, instead of the drift surfacing in user code.

use std::any::TypeId;

use cdas::prelude;

fn same_type<A: 'static, B: 'static>(name: &str) {
    assert_eq!(
        TypeId::of::<A>(),
        TypeId::of::<B>(),
        "prelude::{name} is not the canonical type"
    );
}

#[test]
fn prelude_types_match_their_canonical_definitions() {
    same_type::<prelude::CostModel, cdas::core::economics::CostModel>("CostModel");
    same_type::<prelude::QualitySensitiveModel, cdas::core::model::QualitySensitiveModel>(
        "QualitySensitiveModel",
    );
    same_type::<prelude::TerminationStrategy, cdas::core::online::TerminationStrategy>(
        "TerminationStrategy",
    );
    same_type::<prelude::PredictionModel, cdas::core::prediction::PredictionModel>(
        "PredictionModel",
    );
    same_type::<prelude::Label, cdas::core::types::Label>("Label");
    same_type::<prelude::Observation, cdas::core::types::Observation>("Observation");
    same_type::<prelude::QuestionId, cdas::core::types::QuestionId>("QuestionId");
    same_type::<prelude::Vote, cdas::core::types::Vote>("Vote");
    same_type::<prelude::WorkerId, cdas::core::types::WorkerId>("WorkerId");
    same_type::<
        prelude::ProbabilisticVerifier,
        cdas::core::verification::probabilistic::ProbabilisticVerifier,
    >("ProbabilisticVerifier");
    same_type::<prelude::HalfVoting, cdas::core::verification::voting::HalfVoting>("HalfVoting");
    same_type::<prelude::MajorityVoting, cdas::core::verification::voting::MajorityVoting>(
        "MajorityVoting",
    );
    same_type::<prelude::Verdict, cdas::core::verification::Verdict>("Verdict");
    same_type::<prelude::PoolConfig, cdas::crowd::pool::PoolConfig>("PoolConfig");
    same_type::<prelude::WorkerPool, cdas::crowd::pool::WorkerPool>("WorkerPool");
    same_type::<prelude::SimulatedPlatform, cdas::crowd::SimulatedPlatform>("SimulatedPlatform");
    same_type::<prelude::ImageTaggingApp, cdas::engine::apps::ImageTaggingApp>("ImageTaggingApp");
    same_type::<prelude::ItConfig, cdas::engine::apps::ItConfig>("ItConfig");
    same_type::<prelude::TsaApp, cdas::engine::apps::TsaApp>("TsaApp");
    same_type::<prelude::TsaConfig, cdas::engine::apps::TsaConfig>("TsaConfig");
    same_type::<prelude::CrowdsourcingEngine, cdas::engine::CrowdsourcingEngine>(
        "CrowdsourcingEngine",
    );
    same_type::<prelude::EngineConfig, cdas::engine::EngineConfig>("EngineConfig");
    same_type::<prelude::Query, cdas::engine::Query>("Query");
    same_type::<prelude::VerificationStrategy, cdas::engine::VerificationStrategy>(
        "VerificationStrategy",
    );
    same_type::<prelude::ImageGenerator, cdas::workloads::it::images::ImageGenerator>(
        "ImageGenerator",
    );
    same_type::<prelude::ImageGeneratorConfig, cdas::workloads::it::images::ImageGeneratorConfig>(
        "ImageGeneratorConfig",
    );
    same_type::<prelude::TweetGenerator, cdas::workloads::tsa::tweets::TweetGenerator>(
        "TweetGenerator",
    );
    same_type::<prelude::TweetGeneratorConfig, cdas::workloads::tsa::tweets::TweetGeneratorConfig>(
        "TweetGeneratorConfig",
    );
}

#[test]
fn prelude_scheduler_types_match_their_canonical_definitions() {
    // The multi-job scheduler surface (PR 2): the shared-registry types live in core,
    // the lease ledger in crowd, and the scheduler itself in engine.
    same_type::<prelude::SharedAccuracyRegistry, cdas::core::sharing::SharedAccuracyRegistry>(
        "SharedAccuracyRegistry",
    );
    same_type::<prelude::AccuracyCache, cdas::core::sharing::AccuracyCache>("AccuracyCache");
    same_type::<prelude::PoolLedger, cdas::crowd::lease::PoolLedger>("PoolLedger");
    same_type::<prelude::WorkerLease, cdas::crowd::lease::WorkerLease>("WorkerLease");
    same_type::<prelude::LeaseId, cdas::crowd::lease::LeaseId>("LeaseId");
    same_type::<prelude::AnalyticsJob, cdas::engine::job_manager::AnalyticsJob>("AnalyticsJob");
    same_type::<prelude::JobKind, cdas::engine::job_manager::JobKind>("JobKind");
    same_type::<prelude::JobManager, cdas::engine::job_manager::JobManager>("JobManager");
    same_type::<prelude::JobScheduler, cdas::engine::scheduler::JobScheduler>("JobScheduler");
    same_type::<prelude::ScheduledJob, cdas::engine::scheduler::ScheduledJob>("ScheduledJob");
    same_type::<prelude::SchedulerConfig, cdas::engine::scheduler::SchedulerConfig>(
        "SchedulerConfig",
    );
    same_type::<prelude::DispatchPolicy, cdas::engine::scheduler::DispatchPolicy>("DispatchPolicy");
    same_type::<prelude::JobId, cdas::engine::scheduler::JobId>("JobId");
    same_type::<prelude::FleetReport, cdas::engine::metrics::FleetReport>("FleetReport");
    same_type::<prelude::JobReport, cdas::engine::metrics::JobReport>("JobReport");
}

#[test]
fn prelude_parallel_types_match_their_canonical_definitions() {
    // The parallel-fleet surface (PR 4): the sharded platform lives in crowd, the
    // per-shard report in engine. `ShardedPlatform` is generic with a `SimulatedPlatform`
    // default — the prelude re-export must preserve that default.
    same_type::<prelude::ShardedPlatform, cdas::crowd::sharded::ShardedPlatform>("ShardedPlatform");
    same_type::<
        prelude::ShardedPlatform<cdas::crowd::SimulatedPlatform>,
        cdas::crowd::sharded::ShardedPlatform,
    >("ShardedPlatform<SimulatedPlatform>");
    same_type::<
        prelude::PlatformShard<cdas::crowd::SimulatedPlatform>,
        cdas::crowd::sharded::PlatformShard<cdas::crowd::SimulatedPlatform>,
    >("PlatformShard");
    same_type::<prelude::ShardReport, cdas::engine::metrics::ShardReport>("ShardReport");
}

#[test]
fn prelude_clocked_types_match_their_canonical_definitions() {
    // The clocked-crowd surface (PR 3): the simulation clock and cancel receipt live in
    // crowd, the discrete-event collector in engine.
    same_type::<prelude::SimClock, cdas::crowd::clock::SimClock>("SimClock");
    same_type::<prelude::CancelReceipt, cdas::crowd::platform::CancelReceipt>("CancelReceipt");
    same_type::<prelude::ClockedCollector, cdas::engine::clocked::ClockedCollector>(
        "ClockedCollector",
    );
    same_type::<prelude::ClockedOutcome, cdas::engine::clocked::ClockedOutcome>("ClockedOutcome");
}

#[test]
fn prelude_event_heap_types_match_their_canonical_definitions() {
    // The event-heap scheduler core (PR 6): the lazy-deletion arrival queue lives in
    // crowd, the discovery-mode switch on the scheduler config in engine.
    same_type::<prelude::ArrivalQueue, cdas::crowd::arrival_queue::ArrivalQueue>("ArrivalQueue");
    same_type::<prelude::ArrivalDiscovery, cdas::engine::scheduler::ArrivalDiscovery>(
        "ArrivalDiscovery",
    );
}

#[test]
fn prelude_front_door_types_match_their_canonical_definitions() {
    // The fleet facade surface (PR 5): the crowd spec lives in crowd, the facade in
    // engine, plus the deep-path items the examples used to import through
    // `cdas::engine::engine::` / `cdas::crowd::arrival::`, promoted to the prelude.
    same_type::<prelude::CrowdSpec, cdas::crowd::spec::CrowdSpec>("CrowdSpec");
    same_type::<prelude::LatencyModel, cdas::crowd::arrival::LatencyModel>("LatencyModel");
    same_type::<prelude::WorkerCountPolicy, cdas::engine::engine::WorkerCountPolicy>(
        "WorkerCountPolicy",
    );
    same_type::<prelude::Fleet, cdas::engine::fleet::Fleet>("Fleet");
    same_type::<prelude::FleetBuilder, cdas::engine::fleet::FleetBuilder>("FleetBuilder");
    // The typestate default must survive the re-export: `FleetBuilder` with no
    // parameter is the crowd-less state on both paths.
    same_type::<
        prelude::FleetBuilder<cdas::crowd::spec::CrowdSpec>,
        cdas::engine::fleet::FleetBuilder<cdas::crowd::spec::CrowdSpec>,
    >("FleetBuilder<CrowdSpec>");
    same_type::<prelude::JobSpec, cdas::engine::fleet::JobSpec>("JobSpec");
    same_type::<prelude::ExecutionMode, cdas::engine::fleet::ExecutionMode>("ExecutionMode");
    same_type::<prelude::FleetRun, cdas::engine::fleet::FleetRun>("FleetRun");
    same_type::<prelude::FleetEvent, cdas::engine::fleet::FleetEvent>("FleetEvent");
}

#[test]
fn prelude_durability_types_match_their_canonical_definitions() {
    // The durable-fleet surface (PR 7): the write-ahead journal and recovery report
    // live in engine::journal, the fault-injection platform wrapper in crowd.
    same_type::<prelude::Journal, cdas::engine::journal::Journal>("Journal");
    same_type::<prelude::JournalConfig, cdas::engine::journal::JournalConfig>("JournalConfig");
    same_type::<prelude::JournalRecord, cdas::engine::journal::JournalRecord>("JournalRecord");
    same_type::<prelude::SyncPolicy, cdas::engine::journal::SyncPolicy>("SyncPolicy");
    same_type::<prelude::RunConfig, cdas::engine::journal::RunConfig>("RunConfig");
    same_type::<prelude::RecoveryReport, cdas::engine::journal::RecoveryReport>("RecoveryReport");
    same_type::<prelude::RecoveryReport, cdas::engine::journal::recovery::RecoveryReport>(
        "RecoveryReport (re-export)",
    );
    same_type::<prelude::FleetFailpoints, cdas::engine::fleet::FleetFailpoints>("FleetFailpoints");
    same_type::<prelude::Failpoint, cdas::crowd::failpoint::Failpoint>("Failpoint");
    same_type::<
        prelude::FailpointPlatform<cdas::crowd::SimulatedPlatform>,
        cdas::crowd::failpoint::FailpointPlatform<cdas::crowd::SimulatedPlatform>,
    >("FailpointPlatform");
}

#[test]
fn prelude_service_types_match_their_canonical_definitions() {
    // The resident-service surface (PR 10): admission control, the service facade,
    // and its tickets/events/reports all live in engine::service.
    same_type::<prelude::AdmissionDecision, cdas::engine::service::AdmissionDecision>(
        "AdmissionDecision",
    );
    same_type::<prelude::AdmissionForecast, cdas::engine::service::AdmissionForecast>(
        "AdmissionForecast",
    );
    same_type::<prelude::AdmissionModel, cdas::engine::service::AdmissionModel>("AdmissionModel");
    same_type::<prelude::AdmissionModel, cdas::engine::service::admission::AdmissionModel>(
        "AdmissionModel (re-export)",
    );
    same_type::<prelude::FleetService, cdas::engine::service::FleetService>("FleetService");
    same_type::<prelude::JobTicket, cdas::engine::service::JobTicket>("JobTicket");
    same_type::<prelude::Rejected, cdas::engine::service::Rejected>("Rejected");
    same_type::<prelude::ServiceConfig, cdas::engine::service::ServiceConfig>("ServiceConfig");
    same_type::<prelude::ServiceConfig, cdas::engine::service::manifest::ServiceConfig>(
        "ServiceConfig (re-export)",
    );
    same_type::<prelude::ServiceEvent, cdas::engine::service::ServiceEvent>("ServiceEvent");
    same_type::<prelude::ServiceRecovery, cdas::engine::service::ServiceRecovery>(
        "ServiceRecovery",
    );
    same_type::<prelude::ServiceReport, cdas::engine::service::ServiceReport>("ServiceReport");
}

#[test]
fn prelude_traits_match_their_canonical_definitions() {
    // The canonical implementors must satisfy the *prelude-named* traits: this
    // fails to compile if prelude::Verifier / prelude::CrowdPlatform ever stop
    // being the same traits the sub-crates define and implement.
    fn requires_verifier<T: prelude::Verifier>() {}
    requires_verifier::<cdas::core::verification::probabilistic::ProbabilisticVerifier>();
    requires_verifier::<cdas::core::verification::voting::MajorityVoting>();

    fn requires_platform<T: prelude::CrowdPlatform>() {}
    requires_platform::<cdas::crowd::SimulatedPlatform>();
}

#[test]
fn prelude_is_sufficient_for_the_quickstart_path() {
    // A compile-time sanity check that the prelude alone covers the README
    // quickstart: predict, simulate, verify.
    use cdas::prelude::*;

    let model = PredictionModel::new(0.75).unwrap();
    let n = model.refined_workers(0.9).unwrap();
    assert!(n >= 3 && n % 2 == 1);

    let obs = Observation::from_votes(vec![
        Vote::new(WorkerId(1), Label::from("pos"), 0.8),
        Vote::new(WorkerId(2), Label::from("pos"), 0.7),
        Vote::new(WorkerId(3), Label::from("neg"), 0.6),
    ]);
    let verifier = ProbabilisticVerifier::with_domain_size(3);
    let result = verifier.verify(&obs).unwrap();
    assert_eq!(result.best().as_str(), "pos");
}
