//! Integration tests for the parallel fleet: `JobScheduler::run_parallel` across OS
//! threads over a `ShardedPlatform`, against two ground truths —
//!
//! 1. the **sequential special case**: a 1-shard parallel run must be byte-identical to
//!    `run_clocked` (the acceptance regression of the parallel refactor), and
//! 2. **interleaving independence**: an N-shard parallel run must produce the same
//!    accuracy estimates and per-job metrics as running the same N shard schedules one
//!    after another on a single thread — the lock-striped registry makes cross-thread
//!    sharing commutative, so thread timing cannot change what the fleet learned.

use cdas::core::economics::CostModel;
use cdas::core::online::TerminationStrategy;

use cdas::engine::job_manager::JobKind;
use cdas::fixtures::demo_questions;
use cdas::prelude::*;

const SEED: u64 = 2024;

fn pool(size: usize) -> WorkerPool {
    WorkerPool::generate(&PoolConfig {
        latency: LatencyModel::Exponential { mean: 5.0 },
        ..PoolConfig::clean(size, 0.85, SEED)
    })
}

fn engine(termination: Option<TerminationStrategy>) -> EngineConfig {
    EngineConfig {
        workers: WorkerCountPolicy::Fixed(7),
        verification: VerificationStrategy::Probabilistic,
        termination,
        domain_size: Some(3),
        ..EngineConfig::default()
    }
}

fn submit_fleet(
    scheduler: &mut JobScheduler,
    jobs: usize,
    termination: Option<TerminationStrategy>,
) {
    for i in 0..jobs {
        scheduler.submit(
            ScheduledJob::named(
                JobKind::SentimentAnalytics,
                format!("job-{i}"),
                demo_questions(10, 3),
            )
            .with_engine(engine(termination))
            .with_batch_size(5),
        );
    }
}

#[test]
fn one_shard_parallel_run_equals_run_clocked_with_termination() {
    // The acceptance regression, on the hardest configuration: early termination fires,
    // HITs are cancelled mid-flight, leases hand over between jobs — and the 1-shard
    // parallel run still reproduces the sequential report byte for byte (wall-clock
    // timings aside, the one nondeterministic field).
    let termination = Some(TerminationStrategy::ExpMax);

    let mut platform = SimulatedPlatform::new(pool(12), CostModel::default(), SEED);
    let mut sequential =
        JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool(12)));
    submit_fleet(&mut sequential, 3, termination);
    let clocked = sequential.run_clocked(&mut platform).unwrap();

    let mut sharded = ShardedPlatform::split(&pool(12), CostModel::default(), SEED, 1);
    let mut parallel =
        JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool(12)));
    submit_fleet(&mut parallel, 3, termination);
    let par = parallel.run_parallel(&mut sharded).unwrap();

    assert_eq!(clocked.ignoring_wall_clock(), par.ignoring_wall_clock());
    // The run really exercised the clocked machinery, not a degenerate path.
    assert!(par.reclaimed_minutes > 0.0, "termination reclaimed minutes");
    assert!(par.makespan > 0.0);
    assert_eq!(par.shards.len(), 1);
    // And the engine-side accounting still equals the platform ledger, shard-summed.
    assert!((par.fleet.cost - sharded.total_cost()).abs() < 1e-9);
    assert!((clocked.fleet.cost - platform.total_cost()).abs() < 1e-9);

    // The facade runs the identical fleet through `ExecutionMode`: both of the above are
    // reproduced by one `Fleet` without any of this file's hand-wiring.
    let mut fleet = Fleet::builder()
        .crowd(
            CrowdSpec::clean(12, 0.85)
                .seed(SEED)
                .latency(LatencyModel::Exponential { mean: 5.0 }),
        )
        .build()
        .unwrap();
    for i in 0..3 {
        fleet
            .submit(
                JobSpec::sentiment(format!("job-{i}"), demo_questions(10, 3))
                    .workers(7)
                    .domain_size(3)
                    .termination(TerminationStrategy::ExpMax)
                    .batch_size(5),
            )
            .unwrap();
    }
    let facade_clocked = fleet.run(ExecutionMode::Clocked).unwrap();
    let facade_parallel = fleet.run(ExecutionMode::Parallel { shards: 1 }).unwrap();
    assert_eq!(
        facade_clocked.report().ignoring_wall_clock(),
        clocked.ignoring_wall_clock(),
        "facade Clocked != hand-wired run_clocked"
    );
    assert_eq!(
        facade_parallel.report().ignoring_wall_clock(),
        par.ignoring_wall_clock(),
        "facade 1-shard Parallel != hand-wired run_parallel"
    );
}

/// Run the same sharded fleet either in parallel (`run_parallel`) or as the equivalent
/// sequence of per-shard clocked runs on one thread, returning the job accuracy reports
/// and the final shared-registry estimates.
fn run_fleet(shards: usize, parallel: bool) -> (Vec<JobReport>, Vec<(u64, f64, usize)>) {
    const JOBS: usize = 8;
    let whole = pool(8 * shards);

    if parallel {
        let mut platform = ShardedPlatform::split(&whole, CostModel::default(), SEED, shards);
        let mut scheduler =
            JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&whole));
        submit_fleet(&mut scheduler, JOBS, None);
        let report = scheduler.run_parallel(&mut platform).unwrap();
        let registry = scheduler
            .shared_registry()
            .snapshot()
            .iter()
            .map(|(w, e)| (w.0, e.accuracy, e.samples))
            .collect();
        (report.jobs, registry)
    } else {
        // The sequential ground truth: the exact shard decomposition run_parallel uses —
        // same platform shards, same per-shard seeds, same job striping, same shared
        // registry — but each shard's event loop runs to completion before the next
        // shard starts. Any difference to the parallel run could only come from thread
        // interleaving; there must be none.
        let shared = SharedAccuracyRegistry::new();
        let mut sharded = ShardedPlatform::split(&whole, CostModel::default(), SEED, shards);
        let mut jobs_by_global: Vec<Option<JobReport>> = (0..JOBS).map(|_| None).collect();
        for (s, shard) in sharded.shards_mut().iter_mut().enumerate() {
            let mut scheduler = JobScheduler::with_shared_registry(
                SchedulerConfig {
                    seed: SchedulerConfig::default().seed + s as u64,
                    ..SchedulerConfig::default()
                },
                PoolLedger::new(shard.roster().to_vec()),
                shared.clone(),
            );
            let globals: Vec<usize> = (0..JOBS).filter(|j| j % shards == s).collect();
            for &j in &globals {
                scheduler.submit(
                    ScheduledJob::named(
                        JobKind::SentimentAnalytics,
                        format!("job-{j}"),
                        demo_questions(10, 3),
                    )
                    .with_engine(engine(None))
                    .with_batch_size(5),
                );
            }
            let report = scheduler.run_clocked(shard.platform_mut()).unwrap();
            for (local, job) in report.jobs.into_iter().enumerate() {
                jobs_by_global[globals[local]] = Some(JobReport {
                    job: JobId(globals[local]),
                    ..job
                });
            }
        }
        let registry = shared
            .snapshot()
            .iter()
            .map(|(w, e)| (w.0, e.accuracy, e.samples))
            .collect();
        (
            jobs_by_global.into_iter().map(Option::unwrap).collect(),
            registry,
        )
    }
}

#[test]
fn parallel_threads_learn_exactly_what_a_sequential_pass_learns() {
    // The seeded-interleaving stress of the striped registry at fleet scale: 8 jobs over
    // 4 shards, run as 4 OS threads vs. run as 4 consecutive single-thread passes. Worker
    // partitions are disjoint, so every estimate is written by exactly one thread in a
    // deterministic order — the striped registry must make the parallel outcome
    // indistinguishable from the sequential one: same estimates (bit-for-bit), same
    // sample counts, same per-job accuracy/cost metrics.
    let (parallel_jobs, parallel_registry) = run_fleet(4, true);
    let (sequential_jobs, sequential_registry) = run_fleet(4, false);

    assert_eq!(parallel_registry.len(), sequential_registry.len());
    assert!(!parallel_registry.is_empty(), "gold estimates were shared");
    for (p, s) in parallel_registry.iter().zip(&sequential_registry) {
        assert_eq!(p.0, s.0, "same workers estimated");
        assert_eq!(p.1.to_bits(), s.1.to_bits(), "bit-identical accuracy");
        assert_eq!(p.2, s.2, "same sample counts");
    }

    assert_eq!(parallel_jobs.len(), sequential_jobs.len());
    for (p, s) in parallel_jobs.iter().zip(&sequential_jobs) {
        assert_eq!(p.job, s.job);
        assert_eq!(p.name, s.name);
        assert_eq!(p.report, s.report, "job {} diverged across threads", p.name);
        assert_eq!(p.hits, s.hits);
        assert_eq!(p.distinct_workers, s.distinct_workers);
    }
}

#[test]
fn panicking_shard_resurfaces_after_every_other_shard_completed() {
    // The RAII/teardown half of the tentpole, end to end. Shard 0's platform panics on
    // its first poll (a simulated adapter crash); shard 1 is a healthy simulated crowd.
    // `run_parallel` must (a) let shard 1 run to completion — panics resurface only after
    // every thread joined, no shard is abandoned mid-HIT — and (b) resurface the panic to
    // the caller. The panicking thread's lease guards release during its unwind (the
    // guard-level guarantee is pinned by `cdas_crowd::lease` and scheduler tests); here
    // we observe the fleet-level consequences: the parent scheduler's own ledger is
    // untouched and the healthy shard's platform shows a full run's charges.
    use cdas::core::types::HitId;
    use cdas::core::types::WorkerId;
    use cdas::crowd::hit::HitRequest;
    use cdas::crowd::platform::{CancelReceipt, WorkerAnswer};

    struct PanicsOnPoll;
    impl CrowdPlatform for PanicsOnPoll {
        fn publish(&mut self, _request: HitRequest) -> HitId {
            HitId(0)
        }
        fn poll(&mut self, _hit: HitId, _now: f64) -> Vec<WorkerAnswer> {
            panic!("simulated shard crash mid-poll");
        }
        fn cancel(&mut self, _hit: HitId, _now: f64) -> CancelReceipt {
            CancelReceipt::empty()
        }
        fn total_cost(&self) -> f64 {
            0.0
        }
    }

    // An enum shard type so one fleet can mix the crashing platform with a real one.
    enum Mixed {
        Crashing(PanicsOnPoll),
        Real(SimulatedPlatform),
    }
    impl CrowdPlatform for Mixed {
        fn publish(&mut self, request: HitRequest) -> HitId {
            match self {
                Mixed::Crashing(p) => p.publish(request),
                Mixed::Real(p) => p.publish(request),
            }
        }
        fn publish_to(&mut self, request: HitRequest, workers: &[WorkerId]) -> HitId {
            match self {
                Mixed::Crashing(p) => p.publish_to(request, workers),
                Mixed::Real(p) => p.publish_to(request, workers),
            }
        }
        fn advance_time(&mut self, now: f64) {
            match self {
                Mixed::Crashing(p) => p.advance_time(now),
                Mixed::Real(p) => p.advance_time(now),
            }
        }
        fn poll(&mut self, hit: HitId, now: f64) -> Vec<WorkerAnswer> {
            match self {
                Mixed::Crashing(p) => p.poll(hit, now),
                Mixed::Real(p) => p.poll(hit, now),
            }
        }
        fn next_arrival(&self, hit: HitId) -> Option<f64> {
            match self {
                Mixed::Crashing(p) => p.next_arrival(hit),
                Mixed::Real(p) => p.next_arrival(hit),
            }
        }
        fn cancel(&mut self, hit: HitId, now: f64) -> CancelReceipt {
            match self {
                Mixed::Crashing(p) => p.cancel(hit, now),
                Mixed::Real(p) => p.cancel(hit, now),
            }
        }
        fn total_cost(&self) -> f64 {
            match self {
                Mixed::Crashing(p) => p.total_cost(),
                Mixed::Real(p) => p.total_cost(),
            }
        }
    }

    let healthy_pool = pool(8);
    let crashing_roster: Vec<WorkerId> = (100..108).map(WorkerId).collect();
    let healthy_roster: Vec<WorkerId> = healthy_pool.workers().iter().map(|w| w.id).collect();
    let mut platform = ShardedPlatform::from_parts([
        (Mixed::Crashing(PanicsOnPoll), crashing_roster.clone()),
        (
            Mixed::Real(SimulatedPlatform::new(
                healthy_pool,
                CostModel::default(),
                SEED,
            )),
            healthy_roster.clone(),
        ),
    ]);
    let ledger = PoolLedger::new(crashing_roster.into_iter().chain(healthy_roster));
    let observer = ledger.clone();
    let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
    for name in ["doomed", "fine"] {
        scheduler.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(4, 1))
                .with_engine(EngineConfig {
                    workers: WorkerCountPolicy::Fixed(5),
                    domain_size: Some(3),
                    ..EngineConfig::default()
                }),
        );
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        scheduler.run_parallel(&mut platform)
    }));
    assert!(outcome.is_err(), "the shard panic must resurface");
    // The healthy shard completed its whole job before the panic resurfaced: the panic
    // is raised only after every thread joined.
    assert!(
        platform.shards()[1].platform().total_cost() > 0.0,
        "the healthy shard never ran"
    );
    // Job states were reassembled before the panic was re-raised: the healthy job's
    // outcomes are inspectable (and the doomed job is present, merely without runs) —
    // the submitted fleet is not silently lost to the unwind.
    assert!(
        !scheduler.outcomes(JobId(1)).is_empty(),
        "the healthy job's outcomes survived the panic"
    );
    assert!(scheduler.outcomes(JobId(0)).is_empty());
    // The parent ledger never participated (shards lease from their own tables) and is
    // fully available for a retry.
    assert_eq!(observer.leased(), 0);
    assert_eq!(observer.available(), 16);
}
