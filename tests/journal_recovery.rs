//! Journal durability and crash-recovery edge cases.
//!
//! The contract under test: a fleet run journaled via [`FleetBuilder::journal`] can be
//! recovered from *any* crash signature the journal layer can exhibit — a torn final
//! frame, a write kill mid-run, a compaction snapshot plus a partial tail, or a journal
//! that already holds the whole run — and `Fleet::recover` resumes it to a report and
//! event stream identical (wall clock aside) to a run that never crashed. Corruption
//! that is *not* a crash signature (a flipped byte away from the tail) must be rejected
//! loudly, never silently replayed.

use std::path::{Path, PathBuf};

use cdas::core::types::HitId;
use cdas::core::CdasError;
use cdas::fixtures::demo_questions;
use cdas::prelude::*;
use proptest::prelude::*;

/// A unique scratch directory per test (wiped on entry; tests may run in parallel).
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdas-journal-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn crowd() -> CrowdSpec {
    CrowdSpec::clean(12, 0.85)
        .seed(11)
        .latency(LatencyModel::Exponential { mean: 4.0 })
}

fn builder() -> FleetBuilder<CrowdSpec> {
    Fleet::builder()
        .crowd(crowd())
        .job(
            JobSpec::sentiment("alpha", demo_questions(6, 2))
                .workers(4)
                .domain_size(3)
                .batch_size(3),
        )
        .job(
            JobSpec::sentiment("beta", demo_questions(5, 1))
                .workers(3)
                .domain_size(3)
                .batch_size(5),
        )
}

/// The same fleet without a journal — the uninterrupted baseline.
fn baseline(mode: ExecutionMode) -> FleetRun {
    builder().build().unwrap().run(mode).unwrap()
}

fn journaled(dir: &Path, config: JournalConfig) -> Fleet {
    builder()
        .journal(dir)
        .journal_config(config)
        .build()
        .unwrap()
}

const MODES: [ExecutionMode; 3] = [
    ExecutionMode::EndOfTime,
    ExecutionMode::Clocked,
    ExecutionMode::Parallel { shards: 2 },
];

fn assert_equals_baseline(run: &FleetRun, expected: &FleetRun, context: &str) {
    assert_eq!(
        run.report().ignoring_wall_clock(),
        expected.report().ignoring_wall_clock(),
        "{context}: report differs from the uninterrupted run"
    );
    assert_eq!(
        run.events(),
        expected.events(),
        "{context}: event stream differs from the uninterrupted run"
    );
}

/// Total on-disk size of the journal's segments.
fn journal_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|entry| entry.ok())
        .filter(|entry| entry.path().extension().is_some_and(|e| e == "wal"))
        .map(|entry| entry.metadata().unwrap().len())
        .sum()
}

#[test]
fn recovering_an_empty_journal_is_journal_empty() {
    // A directory that never existed is an I/O error, not an empty journal…
    let dir = temp_dir("empty");
    match Fleet::recover(&dir) {
        Err(CdasError::JournalIo { .. }) => {}
        other => panic!("expected JournalIo for a missing directory, got {other:?}"),
    }
    // …an existing directory with no segments (or a header-only segment) is empty.
    std::fs::create_dir_all(&dir).unwrap();
    match Fleet::recover(&dir) {
        Err(CdasError::JournalEmpty) => {}
        other => panic!("expected JournalEmpty, got {other:?}"),
    }
    let _ = Journal::create(&dir, JournalConfig::default()).unwrap();
    match Fleet::recover(&dir) {
        Err(CdasError::JournalEmpty) => {}
        other => panic!("expected JournalEmpty for a header-only journal, got {other:?}"),
    }
}

#[test]
fn journaled_runs_match_plain_runs_and_recovery_is_a_noop_resume() {
    for (i, mode) in MODES.iter().enumerate() {
        let expected = baseline(*mode);
        let dir = temp_dir(&format!("noop-{i}"));
        let run = journaled(&dir, JournalConfig::default())
            .run(*mode)
            .unwrap();
        assert_equals_baseline(&run, &expected, "journal-on run");

        // The journal holds the complete run: recovery replays it, re-pays nothing,
        // appends nothing new.
        let (recovered, report) = Fleet::recover(&dir).unwrap();
        assert_equals_baseline(&recovered, &expected, "no-op recovery");
        assert!(report.was_complete, "{mode:?}: journal held RunCompleted");
        assert!(!report.torn_tail);
        assert_eq!(report.resumed_hits, 0, "{mode:?}: nothing left to resume");
        assert!(report.recovered_hits > 0);
        assert!(
            (report.recovered_cost - expected.report().fleet.cost).abs() < 1e-12,
            "{mode:?}: every journaled dollar is accounted as recovered"
        );
    }
}

#[test]
fn a_torn_final_record_is_dropped_and_resumed() {
    let mode = ExecutionMode::Clocked;
    let expected = baseline(mode);
    let dir = temp_dir("torn");
    journaled(&dir, JournalConfig::default()).run(mode).unwrap();

    // Chop into the final frame (the RunCompleted trailer), leaving a torn tail.
    Journal::truncate_tail(&dir, 10).unwrap();
    let contents = Journal::read(&dir).unwrap();
    assert!(contents.torn_tail, "a mid-frame cut reads as a torn tail");

    let (recovered, report) = Fleet::recover(&dir).unwrap();
    assert_equals_baseline(&recovered, &expected, "torn-tail recovery");
    assert!(report.torn_tail);
    assert!(!report.was_complete, "the trailer was in the torn frame");

    // The repaired journal is complete: recovering again is a clean no-op.
    let (_, second) = Fleet::recover(&dir).unwrap();
    assert!(second.was_complete);
    assert!(!second.torn_tail);
}

#[test]
fn corruption_away_from_the_tail_is_rejected() {
    let dir = temp_dir("corrupt");
    journaled(&dir, JournalConfig::default())
        .run(ExecutionMode::Clocked)
        .unwrap();
    // Flip a payload byte of the very first frame (RunStarted): 16-byte segment header,
    // 8-byte frame header, then payload. Nowhere near the tail, so this must be
    // corruption, not a crash signature.
    let len = journal_bytes(&dir);
    Journal::corrupt_tail_byte(&dir, len - 16 - 8 - 2).unwrap();
    match Fleet::recover(&dir) {
        Err(CdasError::JournalCorrupt { segment, .. }) => {
            assert!(
                segment.contains("segment-000000"),
                "damage is in segment 0: {segment}"
            )
        }
        other => panic!("expected JournalCorrupt in segment 0, got {other:?}"),
    }
    match Journal::read(&dir) {
        Err(CdasError::JournalCorrupt { .. }) => {}
        other => panic!("read must reject it too, got {other:?}"),
    }
}

#[test]
fn recovery_from_snapshot_plus_partial_tail() {
    let mode = ExecutionMode::Clocked;
    let expected = baseline(mode);

    // Crash the journal mid-run (the run itself finishes; the journal's on-disk state
    // is frozen at the write kill, like a supervisor snapshotting the crash instant).
    let dir = temp_dir("snapshot");
    let full = {
        let probe = temp_dir("snapshot-probe");
        journaled(&probe, JournalConfig::default())
            .run(mode)
            .unwrap();
        journal_bytes(&probe)
    };
    journaled(
        &dir,
        JournalConfig {
            fail_writes_after: Some(full / 2),
            ..JournalConfig::default()
        },
    )
    .run(mode)
    .unwrap();

    // Compact the crashed journal into a snapshot…
    Journal::compact(&dir).unwrap();
    let compacted = Journal::read(&dir).unwrap();
    assert_eq!(compacted.segments, 1);
    assert!(matches!(
        compacted.records.first(),
        Some(JournalRecord::Snapshot(_))
    ));

    // …resume it with the journal crashing *again* partway through the resumed tail…
    let (run, report) = Fleet::recover_with_config(
        &dir,
        JournalConfig {
            fail_writes_after: Some(512),
            ..JournalConfig::default()
        },
    )
    .unwrap();
    assert_equals_baseline(&run, &expected, "resume from snapshot");
    assert!(!report.was_complete);
    assert!(report.recovered_hits > 0, "snapshot commits were matched");

    // …and recover once more from snapshot + partial tail, to a complete journal.
    let (run, report) = Fleet::recover(&dir).unwrap();
    assert_equals_baseline(&run, &expected, "recover snapshot + partial tail");
    let (_, finished) = Fleet::recover(&dir).unwrap();
    assert!(finished.was_complete, "third recovery is a no-op");
    assert_eq!(
        report.recovered_hits + report.resumed_hits,
        finished.recovered_hits,
        "recovered + resumed converges to the full run's commit count"
    );
}

#[test]
fn group_commit_batches_fsyncs() {
    let dir = temp_dir("groupcommit-batch");
    let config = JournalConfig {
        sync: SyncPolicy::GroupCommit {
            max_batch: 4,
            max_delay_ms: 60_000,
        },
        ..JournalConfig::default()
    };
    let mut journal = Journal::create(&dir, config).unwrap();
    let commit = |i: usize| JournalRecord::RunCompleted {
        cost: i as f64,
        questions: i,
        makespan: 1.0,
    };
    for i in 0..8 {
        journal.append(&commit(i)).unwrap();
    }
    assert_eq!(
        journal.syncs_performed(),
        2,
        "8 commit-class records at max_batch 4 cost exactly 2 fsyncs"
    );
    assert_eq!(journal.pending_commits(), 0, "both groups were closed");
    for i in 8..11 {
        journal.append(&commit(i)).unwrap();
    }
    assert_eq!(journal.syncs_performed(), 2, "a partial group stays open");
    assert_eq!(journal.pending_commits(), 3);
    journal.sync().unwrap();
    assert_eq!(
        journal.syncs_performed(),
        3,
        "explicit sync closes the group"
    );
    assert_eq!(journal.pending_commits(), 0);
    let contents = Journal::read(&dir).unwrap();
    assert_eq!(contents.records.len(), 11, "every record survived");
}

#[test]
fn group_commit_delay_bounds_unsynced_commits() {
    let dir = temp_dir("groupcommit-delay");
    // With a zero delay, any commit joining an already-open group is overdue.
    let config = JournalConfig {
        sync: SyncPolicy::GroupCommit {
            max_batch: usize::MAX,
            max_delay_ms: 0,
        },
        ..JournalConfig::default()
    };
    let mut journal = Journal::create(&dir, config).unwrap();
    let commit = JournalRecord::RunCompleted {
        cost: 0.0,
        questions: 1,
        makespan: 1.0,
    };
    journal.append(&commit).unwrap();
    assert_eq!(
        journal.syncs_performed(),
        0,
        "the first commit opens the group"
    );
    assert_eq!(journal.pending_commits(), 1);
    journal.append(&commit).unwrap();
    assert_eq!(
        journal.syncs_performed(),
        1,
        "the overdue group was flushed"
    );
    assert_eq!(journal.pending_commits(), 0);
}

#[test]
fn group_commit_runs_recover_like_default_sync() {
    let mode = ExecutionMode::Clocked;
    let expected = baseline(mode);
    let dir = temp_dir("groupcommit-run");
    let run = journaled(
        &dir,
        JournalConfig {
            sync: SyncPolicy::GroupCommit {
                max_batch: 8,
                max_delay_ms: 50,
            },
            ..JournalConfig::default()
        },
    )
    .run(mode)
    .unwrap();
    assert_equals_baseline(&run, &expected, "group-commit run");
    let (recovered, report) = Fleet::recover(&dir).unwrap();
    assert_equals_baseline(&recovered, &expected, "group-commit recovery");
    assert!(
        report.was_complete,
        "the run-completion sync made the whole journal durable"
    );
}

#[test]
fn a_foreign_record_in_the_journal_diverges() {
    let dir = temp_dir("diverged");
    journaled(&dir, JournalConfig::default())
        .run(ExecutionMode::Clocked)
        .unwrap();
    // Append a charge for a job this run never had.
    let (mut journal, _) = Journal::open_append(&dir, JournalConfig::default()).unwrap();
    journal
        .append(&JournalRecord::Charge {
            job: JobId(99),
            hit: HitId(0),
            amount: 0.25,
            at: 1.0,
        })
        .unwrap();
    journal.sync().unwrap();
    match Fleet::recover(&dir) {
        Err(CdasError::JournalDiverged { detail }) => {
            assert!(
                detail.contains("99"),
                "detail names the bogus job: {detail}"
            )
        }
        other => panic!("expected JournalDiverged, got {other:?}"),
    }
}

#[test]
fn a_journal_from_a_different_crowd_diverges() {
    // Journal a run, then overwrite the journal with a *different* fleet's journal head
    // but graft the first fleet's tail records onto it: replay must notice the grafted
    // records never happen.
    let dir = temp_dir("foreign");
    journaled(&dir, JournalConfig::default())
        .run(ExecutionMode::Clocked)
        .unwrap();
    let original = Journal::read(&dir).unwrap();
    let other = Fleet::builder()
        .crowd(CrowdSpec::clean(12, 0.85).seed(99))
        .job(
            JobSpec::sentiment("alpha", demo_questions(6, 2))
                .workers(4)
                .domain_size(3)
                .batch_size(3),
        )
        .build()
        .unwrap();
    let mut journal = Journal::create(&dir, JournalConfig::default()).unwrap();
    journal
        .append(&JournalRecord::RunStarted(
            other.run_config(ExecutionMode::Clocked).unwrap(),
        ))
        .unwrap();
    for record in &original.records {
        if matches!(record, JournalRecord::Commit(_)) {
            journal.append(record).unwrap();
        }
    }
    journal.sync().unwrap();
    drop(journal);
    match Fleet::recover(&dir) {
        Err(CdasError::JournalDiverged { .. }) => {}
        other => panic!("expected JournalDiverged, got {other:?}"),
    }
}

proptest! {
    /// The headline durability property: kill the journal's writer at a random byte,
    /// in every execution mode — recover-then-resume always reproduces the
    /// uninterrupted run, re-journals it completely, and a second recovery is a no-op.
    #[test]
    fn recover_after_a_random_write_kill(frac in 0.0f64..1.0, mode_idx in 0usize..3) {
        let mode = MODES[mode_idx];
        let expected = baseline(mode);
        let dir = temp_dir(&format!("kill-{mode_idx}-{}", (frac * 1e6) as u64));

        // Bound the kill below by the head record so a RunStarted always survives
        // (a journal cut inside its head is unrecoverable by design) and above by the
        // full journal size (no kill at all).
        let head = head_bytes(mode, &format!("kill-head-{mode_idx}-{}", (frac * 1e6) as u64));
        let full = {
            let probe = temp_dir(&format!("kill-full-{mode_idx}-{}", (frac * 1e6) as u64));
            journaled(&probe, JournalConfig::default()).run(mode).unwrap();
            journal_bytes(&probe)
        };
        let cut = head + 1 + ((full.saturating_sub(head + 1)) as f64 * frac) as u64;

        journaled(
            &dir,
            JournalConfig { fail_writes_after: Some(cut), ..JournalConfig::default() },
        )
        .run(mode)
        .unwrap();

        let (run, report) = Fleet::recover(&dir).unwrap();
        assert_equals_baseline(&run, &expected, "write-kill recovery");
        prop_assert_eq!(
            report.recovered_hits + report.resumed_hits,
            expected.events().iter().filter(|e| matches!(e, FleetEvent::HitDispatched { .. })).count(),
            "every dispatched HIT is either recovered or resumed"
        );
        prop_assert!((report.total_cost() - expected.report().fleet.cost).abs() < 1e-9);

        let (_, second) = Fleet::recover(&dir).unwrap();
        prop_assert!(second.was_complete, "recovery left a complete journal");
        prop_assert_eq!(second.resumed_hits, 0);
    }

    /// Truncate a random number of bytes off the journal's tail: recovery must either
    /// repair and resume to the uninterrupted run, or (when the cut reaches into the
    /// head record) report the journal as unrecoverable — never anything in between.
    #[test]
    fn recover_after_a_random_tail_truncation(frac in 0.0f64..1.0, mode_idx in 0usize..3) {
        let mode = MODES[mode_idx];
        let expected = baseline(mode);
        let dir = temp_dir(&format!("trunc-{mode_idx}-{}", (frac * 1e6) as u64));
        let head = head_bytes(mode, &format!("trunc-head-{mode_idx}-{}", (frac * 1e6) as u64));
        journaled(&dir, JournalConfig::default()).run(mode).unwrap();
        let full = journal_bytes(&dir);
        let cut = 1 + ((full - 1) as f64 * frac) as u64;
        Journal::truncate_tail(&dir, cut).unwrap();
        match Fleet::recover(&dir) {
            Ok((run, report)) => {
                assert_equals_baseline(&run, &expected, "truncation recovery");
                let (_, second) = Fleet::recover(&dir).unwrap();
                prop_assert!(second.was_complete);
                prop_assert_eq!(report.recovered_hits + report.resumed_hits, second.recovered_hits);
            }
            Err(CdasError::JournalEmpty) => {
                // The cut reached into the head record: nothing to recover.
                prop_assert!(
                    full - cut < head,
                    "only a cut into the head frame may read as empty (kept {} of {full}, head {head})",
                    full - cut
                );
            }
            Err(other) => panic!("unexpected recovery error: {other:?}"),
        }
    }

    /// Flip a random byte near the journal's tail. Whatever the byte hits — a CRC, a
    /// length field, payload — recovery must never silently produce a WRONG run: it
    /// either errors, or resumes to exactly the uninterrupted run (possible when the
    /// flip reads as a torn tail and the damage is dropped).
    #[test]
    fn a_random_tail_flip_never_silently_corrupts(offset in 1u64..64, mode_idx in 0usize..3) {
        let mode = MODES[mode_idx];
        let expected = baseline(mode);
        let dir = temp_dir(&format!("flip-{mode_idx}-{offset}"));
        journaled(&dir, JournalConfig::default()).run(mode).unwrap();
        Journal::corrupt_tail_byte(&dir, offset).unwrap();
        if let Ok((run, _)) = Fleet::recover(&dir) {
            assert_equals_baseline(&run, &expected, "tail-flip recovery");
        }
    }
}

/// Bytes the journal holds once the head (`RunStarted`) record is appended — segment
/// header included. Measured by appending a real head record to a probe journal.
fn head_bytes(mode: ExecutionMode, probe_name: &str) -> u64 {
    let probe = temp_dir(probe_name);
    let fleet = builder().build().unwrap();
    let mut journal = Journal::create(&probe, JournalConfig::default()).unwrap();
    journal
        .append(&JournalRecord::RunStarted(fleet.run_config(mode).unwrap()))
        .unwrap();
    journal.bytes_written()
}
