//! Integration tests for the fleet facade (the "front door"): builder misuse comes back
//! as typed errors, and — the headline contract — a facade run is *exactly* the
//! hand-wired scheduler run it replaces, for every execution mode, asserted via
//! `FleetReport::ignoring_wall_clock()`. A proptest drives randomized builder chains
//! through both paths.

use cdas::core::CdasError;
use cdas::fixtures::demo_questions;
use cdas::prelude::*;
use proptest::prelude::*;

const SEED: u64 = 77;

fn crowd(size: usize, accuracy: f64) -> CrowdSpec {
    CrowdSpec::clean(size, accuracy)
        .seed(SEED)
        .latency(LatencyModel::Exponential { mean: 5.0 })
}

/// The hand-wired twin of `crowd(..)` + a set of `(name, questions, workers, batch)`
/// jobs: exactly the five-struct wiring PR 2–4 callers used.
fn hand_wired(
    size: usize,
    accuracy: f64,
    jobs: &[(String, u64, u64, usize, usize)],
) -> (SimulatedPlatform, JobScheduler) {
    let pool = WorkerPool::generate(&PoolConfig {
        latency: LatencyModel::Exponential { mean: 5.0 },
        ..PoolConfig::clean(size, accuracy, SEED)
    });
    let platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), SEED);
    let mut scheduler = JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
    for (name, real, gold, workers, batch) in jobs {
        let mut engine = EngineConfig::for_job(0.9, 3);
        engine.workers = WorkerCountPolicy::Fixed(*workers);
        scheduler.submit(
            ScheduledJob::named(
                JobKind::SentimentAnalytics,
                name.clone(),
                demo_questions(*real, *gold),
            )
            .with_engine(engine)
            .with_batch_size(*batch),
        );
    }
    (platform, scheduler)
}

fn facade(size: usize, accuracy: f64, jobs: &[(String, u64, u64, usize, usize)]) -> Fleet {
    let mut fleet = Fleet::builder()
        .crowd(crowd(size, accuracy))
        .build()
        .unwrap();
    for (name, real, gold, workers, batch) in jobs {
        fleet
            .submit(
                JobSpec::sentiment(name.clone(), demo_questions(*real, *gold))
                    .workers(*workers)
                    .domain_size(3)
                    .batch_size(*batch),
            )
            .unwrap();
    }
    fleet
}

fn demo_jobs() -> Vec<(String, u64, u64, usize, usize)> {
    vec![
        ("alpha".to_string(), 10, 3, 7, 5),
        ("beta".to_string(), 8, 2, 5, 4),
        ("gamma".to_string(), 6, 2, 7, 6),
    ]
}

#[test]
fn facade_clocked_equals_hand_wired_run_clocked() {
    // The acceptance contract: one fleet, built through the front door, must reproduce
    // the direct `JobScheduler::run_clocked` report byte for byte.
    let jobs = demo_jobs();
    let run = facade(20, 0.85, &jobs).run(ExecutionMode::Clocked).unwrap();
    let (mut platform, mut scheduler) = hand_wired(20, 0.85, &jobs);
    let direct = scheduler.run_clocked(&mut platform).unwrap();
    assert_eq!(
        run.report().ignoring_wall_clock(),
        direct.ignoring_wall_clock(),
        "facade Clocked != hand-wired run_clocked"
    );
    assert!((run.platform_cost() - platform.total_cost()).abs() < 1e-12);
}

#[test]
fn facade_end_of_time_equals_hand_wired_run() {
    let jobs = demo_jobs();
    let run = facade(20, 0.85, &jobs)
        .run(ExecutionMode::EndOfTime)
        .unwrap();
    let (mut platform, mut scheduler) = hand_wired(20, 0.85, &jobs);
    let direct = scheduler.run(&mut platform).unwrap();
    assert_eq!(
        run.report().ignoring_wall_clock(),
        direct.ignoring_wall_clock(),
        "facade EndOfTime != hand-wired run"
    );
}

#[test]
fn facade_parallel_equals_hand_wired_run_parallel() {
    let jobs = demo_jobs();
    let run = facade(20, 0.85, &jobs)
        .run(ExecutionMode::Parallel { shards: 2 })
        .unwrap();
    let pool = WorkerPool::generate(&PoolConfig {
        latency: LatencyModel::Exponential { mean: 5.0 },
        ..PoolConfig::clean(20, 0.85, SEED)
    });
    let mut platform = ShardedPlatform::split(&pool, CostModel::default(), SEED, 2);
    let (_, mut scheduler) = hand_wired(20, 0.85, &jobs);
    let direct = scheduler.run_parallel(&mut platform).unwrap();
    assert_eq!(
        run.report().ignoring_wall_clock(),
        direct.ignoring_wall_clock(),
        "facade Parallel != hand-wired run_parallel"
    );
}

#[test]
fn builder_misuse_returns_typed_errors_not_panics() {
    // Empty fleet.
    match Fleet::builder().crowd(CrowdSpec::clean(0, 0.8)).build() {
        Err(CdasError::EmptyFleet) => {}
        other => panic!("empty crowd: expected EmptyFleet, got {other:?}"),
    }
    // shards == 0 and shards > pool size.
    for shards in [0usize, 21] {
        match Fleet::builder()
            .crowd(crowd(20, 0.8))
            .shards(shards)
            .build()
        {
            Err(CdasError::InvalidShardCount { shards: s, workers }) => {
                assert_eq!((s, workers), (shards, 20));
            }
            other => panic!("shards {shards}: expected InvalidShardCount, got {other:?}"),
        }
    }
    let mut fleet = Fleet::builder().crowd(crowd(20, 0.8)).build().unwrap();
    // Job with zero questions.
    match fleet.submit(JobSpec::sentiment("none", Vec::new())) {
        Err(CdasError::EmptyJob { name }) => assert_eq!(name, "none"),
        other => panic!("expected EmptyJob, got {other:?}"),
    }
    // Batch size 0.
    match fleet.submit(JobSpec::sentiment("b", demo_questions(4, 1)).batch_size(0)) {
        Err(CdasError::NonPositive { what: "batch size" }) => {}
        other => panic!("expected NonPositive batch size, got {other:?}"),
    }
    // Zero workers.
    match fleet.submit(JobSpec::sentiment("w", demo_questions(4, 1)).workers(0)) {
        Err(CdasError::NonPositive {
            what: "worker count",
        }) => {}
        other => panic!("expected NonPositive worker count, got {other:?}"),
    }
    // Nothing slipped through.
    assert_eq!(fleet.job_count(), 0);
    // And the builder equivalents of the same misuses fail at build() too.
    match Fleet::builder()
        .crowd(crowd(20, 0.8))
        .job(JobSpec::sentiment("none", Vec::new()))
        .build()
    {
        Err(CdasError::EmptyJob { .. }) => {}
        other => panic!("expected EmptyJob from build(), got {other:?}"),
    }
}

#[test]
fn streamed_verdicts_match_the_report() {
    let jobs = demo_jobs();
    let fleet = facade(20, 0.85, &jobs);
    let run = fleet.run(ExecutionMode::Clocked).unwrap();
    let report = run.report();
    // One streamed verdict per real question; accepted count consistent with accuracy
    // accounting (accuracy_over_answered * answered == correct <= accepted).
    assert_eq!(run.verdicts().count(), report.fleet.questions);
    let accepted = run.verdicts().filter(|(_, _, v)| v.is_accepted()).count();
    let expected_accepted =
        ((1.0 - report.fleet.no_answer_ratio) * report.fleet.questions as f64).round() as usize;
    assert_eq!(accepted, expected_accepted);
    // Events cover every dispatch in the report's timeline, in time order.
    let dispatched: Vec<_> = run
        .events()
        .iter()
        .filter(|e| matches!(e, FleetEvent::HitDispatched { .. }))
        .collect();
    assert_eq!(dispatched.len(), report.dispatches.len());
    assert!(run.events().windows(2).all(|w| w[0].at() <= w[1].at()));
}

proptest! {
    /// Any valid builder chain produces a fleet whose report matches the equivalent
    /// hand-wired scheduler run — the facade adds configuration surface, never behavior.
    #[test]
    fn any_valid_builder_chain_matches_the_hand_wired_run(
        pool_size in 8usize..20,
        job_count in 1usize..4,
        real in 3u64..8,
        gold in 1u64..3,
        workers in 3usize..8,
        batch in 3usize..8,
        clocked_coin in 0usize..2,
    ) {
        prop_assume!(workers <= pool_size);
        let clocked = clocked_coin == 1;
        let jobs: Vec<(String, u64, u64, usize, usize)> = (0..job_count)
            .map(|i| (format!("job-{i}"), real, gold, workers, batch))
            .collect();
        let mode = if clocked { ExecutionMode::Clocked } else { ExecutionMode::EndOfTime };
        let run = facade(pool_size, 0.85, &jobs).run(mode).unwrap();
        let (mut platform, mut scheduler) = hand_wired(pool_size, 0.85, &jobs);
        let direct = if clocked {
            scheduler.run_clocked(&mut platform).unwrap()
        } else {
            scheduler.run(&mut platform).unwrap()
        };
        prop_assert_eq!(
            run.report().ignoring_wall_clock(),
            direct.ignoring_wall_clock()
        );
    }
}
