//! Integration test: the full TSA pipeline across every crate — synthetic tweets, program
//! executor filtering, gold-question sampling, the simulated crowd, probabilistic
//! verification, and scoring against ground truth and the machine baseline.

use cdas::baselines::text::NaiveBayesClassifier;
use cdas::core::types::AnswerDomain;
use cdas::engine::executor::ProgramExecutor;
use cdas::prelude::*;
use cdas::workloads::difficulty::DifficultyModel;
use cdas::workloads::tsa::stream::TweetStream;
use cdas::workloads::tsa::MovieCatalog;

fn platform(seed: u64) -> SimulatedPlatform {
    let pool = WorkerPool::generate(&PoolConfig {
        size: 300,
        seed,
        ..PoolConfig::default()
    });
    SimulatedPlatform::new(pool, CostModel::default(), seed)
}

#[test]
fn tsa_pipeline_meets_required_accuracy_and_beats_the_machine() {
    // Train the machine baseline on other movies.
    let mut generator = TweetGenerator::new(TweetGeneratorConfig::default());
    let catalog = MovieCatalog::with_size(30);
    let mut training = Vec::new();
    for title in catalog.titles().iter().skip(5) {
        training.extend(generator.generate(title, 20));
    }
    let mut baseline = NaiveBayesClassifier::new();
    baseline.train(&training);

    // Query tweets for a Figure 5 movie. Real movie chatter is full of slang and sarcasm,
    // which is precisely where the machine baseline collapses (the paper's Figure 5 point);
    // the test stream therefore carries a larger hard fraction than the training corpus.
    let query = Query::new(
        MovieCatalog::keywords("Thor"),
        0.90,
        AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
        0.0,
        24.0 * 60.0,
    );
    let mut test_generator = TweetGenerator::new(TweetGeneratorConfig {
        difficulty: DifficultyModel {
            hard_fraction: 0.25,
            easy_difficulty: 0.05,
            hard_difficulty: 0.5,
        },
        seed: 99,
        ..TweetGeneratorConfig::default()
    });
    let stream = TweetStream::new(test_generator.generate("Thor", 100));
    let executor = ProgramExecutor::new();
    let candidates = executor.candidate_tweets(&stream, &query);
    assert_eq!(candidates.len(), 100, "all Thor tweets fall in the window");

    let app = TsaApp::new(TsaConfig {
        engine: EngineConfig {
            workers: WorkerCountPolicy::Predicted {
                mean_accuracy: 0.68,
            },
            required_accuracy: query.required_accuracy,
            domain_size: Some(3),
            ..EngineConfig::default()
        },
        batch_size: 25,
        sampling_rate: 0.2,
    });
    let mut p = platform(11);
    let report = app.run(&mut p, &candidates, Some(&baseline)).unwrap();

    // The crowd must land near the 90 % requirement (hard tweets and simulation noise cost
    // a few points, the same effect the paper reports for difficult questions) and beat the
    // machine baseline, which is the headline comparison of Figure 5.
    assert!(report.crowd.questions >= 75);
    assert!(
        report.crowd.accuracy >= 0.80,
        "crowd accuracy {} below the required band",
        report.crowd.accuracy
    );
    let machine = report.machine_accuracy.unwrap();
    assert!(
        report.crowd.accuracy > machine,
        "crowd {} should beat machine {machine}",
        report.crowd.accuracy
    );
    // Costs were charged for every published HIT.
    assert!(report.crowd.cost > 0.0);
    assert!(p.total_cost() > 0.0);
    // The summary distributes mass across the three sentiments.
    let total: f64 = report.summary.iter().map(|s| s.percentage).sum();
    assert!(total > 0.9 && total <= 1.0 + 1e-9);
}

#[test]
fn predicted_worker_count_scales_with_required_accuracy() {
    let mut generator = TweetGenerator::new(TweetGeneratorConfig {
        seed: 3,
        ..TweetGeneratorConfig::default()
    });
    let tweets = generator.generate("Green Lantern", 30);
    let refs: Vec<_> = tweets.iter().collect();

    let run = |required: f64, seed: u64| {
        let app = TsaApp::new(TsaConfig {
            engine: EngineConfig {
                workers: WorkerCountPolicy::Predicted { mean_accuracy: 0.7 },
                required_accuracy: required,
                domain_size: Some(3),
                ..EngineConfig::default()
            },
            batch_size: 30,
            sampling_rate: 0.2,
        });
        let mut p = platform(seed);
        app.run(&mut p, &refs, None).unwrap()
    };
    let loose = run(0.7, 21);
    let strict = run(0.97, 21);
    // A stricter requirement consumes more answers per question and costs more.
    assert!(strict.crowd.mean_answers_used > loose.crowd.mean_answers_used);
    assert!(strict.crowd.cost > loose.crowd.cost);
}
