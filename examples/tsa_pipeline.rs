//! Twitter Sentiment Analytics end to end: synthetic tweet stream → program executor
//! filter → HIT batches with gold questions → simulated crowd → probability-based
//! verification → Figure-4-style summary, compared against the Naive-Bayes baseline
//! (the reproduction's LIBSVM stand-in).
//!
//! Run with: `cargo run -p cdas --example tsa_pipeline`

use cdas::baselines::text::NaiveBayesClassifier;
use cdas::core::types::AnswerDomain;
use cdas::engine::engine::WorkerCountPolicy;
use cdas::engine::executor::ProgramExecutor;
use cdas::prelude::*;
use cdas::workloads::tsa::stream::TweetStream;
use cdas::workloads::tsa::MovieCatalog;

fn main() {
    let catalog = MovieCatalog::paper_default();

    // Training corpus: tweets about every movie except the query movie.
    let mut generator = TweetGenerator::new(TweetGeneratorConfig::default());
    let mut training = Vec::new();
    for title in catalog.titles().iter().skip(5).take(60) {
        training.extend(generator.generate(title, 20));
    }
    let mut baseline = NaiveBayesClassifier::new();
    baseline.train(&training);

    // The query: opinions about Thor over one day, 90 % required accuracy.
    let query = Query::new(
        MovieCatalog::keywords("Thor"),
        0.90,
        AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
        0.0,
        24.0 * 60.0,
    );
    let stream = TweetStream::new(generator.generate("Thor", 120));
    let executor = ProgramExecutor::new();
    let candidates = executor.candidate_tweets(&stream, &query);
    println!(
        "program executor selected {} candidate tweets for {:?}",
        candidates.len(),
        query.keywords
    );

    // Simulated crowd platform.
    let pool = WorkerPool::generate(&PoolConfig::default());
    let mut platform = SimulatedPlatform::new(pool, CostModel::default(), 2024);

    // Crowdsourcing engine: prediction model decides the worker count from the estimated
    // mean accuracy; probabilistic verification; ExpMax early termination.
    let app = TsaApp::new(TsaConfig {
        engine: EngineConfig {
            workers: WorkerCountPolicy::Predicted {
                mean_accuracy: 0.68,
            },
            required_accuracy: query.required_accuracy,
            termination: Some(TerminationStrategy::ExpMax),
            domain_size: Some(3),
            ..EngineConfig::default()
        },
        batch_size: 20,
        sampling_rate: 0.2,
    });
    let report = app
        .run(&mut platform, &candidates, Some(&baseline))
        .expect("TSA run");

    println!(
        "\n== results over {} tweets ({} HITs) ==",
        report.crowd.questions, report.hits
    );
    println!("crowd accuracy        : {:.3}", report.crowd.accuracy);
    println!(
        "machine (NB) accuracy : {:.3}",
        report.machine_accuracy.unwrap()
    );
    println!(
        "no-answer ratio       : {:.3}",
        report.crowd.no_answer_ratio
    );
    println!(
        "mean answers/question : {:.2}",
        report.crowd.mean_answers_used
    );
    println!("engine-side cost      : ${:.2}", report.crowd.cost);
    println!("\nopinion summary (Figure 4 style):");
    for row in &report.summary {
        println!(
            "  {:<9} {:>5.1}%   reasons: {}",
            row.label.as_str(),
            row.percentage * 100.0,
            if row.reasons.is_empty() {
                "-".to_string()
            } else {
                row.reasons.join(", ")
            }
        );
    }
}
