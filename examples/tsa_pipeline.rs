//! Twitter Sentiment Analytics end to end: synthetic tweet stream → program executor
//! filter → HIT batches with gold questions → simulated crowd → probability-based
//! verification → Figure-4-style summary, compared against the Naive-Bayes baseline
//! (the reproduction's LIBSVM stand-in).
//!
//! The crowd part runs through the fleet facade: the TSA app renders the candidate
//! tweets to questions, a `JobSpec` sized by the prediction model carries them, and the
//! Figure-4 summary is assembled straight from the run's streamed verdicts (labels and
//! reason keywords ride on every `QuestionTerminated` event).
//!
//! Run with: `cargo run -p cdas --example tsa_pipeline`

use cdas::baselines::text::NaiveBayesClassifier;
use cdas::core::presentation::{QuestionOutcome, ResultPresenter};
use cdas::core::types::AnswerDomain;
use cdas::engine::executor::ProgramExecutor;
use cdas::prelude::*;
use cdas::workloads::tsa::stream::TweetStream;
use cdas::workloads::tsa::{MovieCatalog, Sentiment};

fn main() {
    let catalog = MovieCatalog::paper_default();

    // Training corpus: tweets about every movie except the query movie.
    let mut generator = TweetGenerator::new(TweetGeneratorConfig::default());
    let mut training = Vec::new();
    for title in catalog.titles().iter().skip(5).take(60) {
        training.extend(generator.generate(title, 20));
    }
    let mut baseline = NaiveBayesClassifier::new();
    baseline.train(&training);

    // The query: opinions about Thor over one day, 90 % required accuracy.
    let query = Query::new(
        MovieCatalog::keywords("Thor"),
        0.90,
        AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
        0.0,
        24.0 * 60.0,
    );
    let stream = TweetStream::new(generator.generate("Thor", 120));
    let executor = ProgramExecutor::new();
    let candidates = executor.candidate_tweets(&stream, &query);
    println!(
        "program executor selected {} candidate tweets for {:?}",
        candidates.len(),
        query.keywords
    );

    // The human part through the front door: the TSA app renders the questions (gold
    // sampled at 20 %), the prediction model decides the worker count from the estimated
    // mean accuracy, ExpMax terminates early.
    let app = TsaApp::new(TsaConfig::default());
    let questions = app.build_questions(&candidates);
    let fleet = Fleet::builder()
        .crowd(CrowdSpec::paper().platform_seed(2024))
        .job(
            JobSpec::sentiment("thor-sentiment", questions)
                .worker_policy(WorkerCountPolicy::Predicted {
                    mean_accuracy: 0.68,
                })
                .required_accuracy(query.required_accuracy)
                .termination(TerminationStrategy::ExpMax)
                .domain_size(3)
                .batch_size(20),
        )
        .build()
        .expect("a well-formed fleet");
    let run = fleet.run(ExecutionMode::EndOfTime).expect("TSA run");
    let report = run.report();

    // Machine baseline accuracy over the same tweets.
    let machine: f64 = {
        let correct = candidates
            .iter()
            .filter(|t| baseline.classify(&t.text) == t.sentiment)
            .count();
        correct as f64 / candidates.len().max(1) as f64
    };

    // Figure 4 presentation, assembled from the verdict stream.
    let mut presenter = ResultPresenter::new();
    for event in run.events() {
        if let FleetEvent::QuestionTerminated {
            verdict, reasons, ..
        } = event
        {
            match verdict.label() {
                Some(label) => {
                    presenter.push_outcome(QuestionOutcome::Accepted {
                        label: label.clone(),
                    });
                    presenter.push_keywords(label, reasons.iter().map(|s| s.as_str()));
                }
                None => presenter.push_outcome(QuestionOutcome::Pending {
                    confidences: Vec::new(),
                }),
            }
        }
    }
    let domain: Vec<Label> = Sentiment::ALL.iter().map(|s| s.label()).collect();
    let summary = presenter.summarize(&domain);

    println!(
        "\n== results over {} tweets ({} HITs) ==",
        report.fleet.questions, report.jobs[0].hits
    );
    println!("crowd accuracy        : {:.3}", report.fleet.accuracy);
    println!("machine (NB) accuracy : {machine:.3}");
    println!(
        "no-answer ratio       : {:.3}",
        report.fleet.no_answer_ratio
    );
    println!(
        "mean answers/question : {:.2}",
        report.fleet.mean_answers_used
    );
    println!("engine-side cost      : ${:.2}", report.fleet.cost);
    println!("\nopinion summary (Figure 4 style):");
    for row in &summary {
        println!(
            "  {:<9} {:>5.1}%   reasons: {}",
            row.label.as_str(),
            row.percentage * 100.0,
            if row.reasons.is_empty() {
                "-".to_string()
            } else {
                row.reasons.join(", ")
            }
        );
    }
}
