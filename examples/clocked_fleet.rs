//! The clocked crowd (§4.2 at scale): the same fleet run twice over identical worker
//! pools — once polling every HIT to its natural makespan, once with early termination
//! cancelling HITs *mid-flight*, so the cancelled workers' leases flow straight to the
//! next waiting job.
//!
//! The pool is deliberately tight (9 workers, 7-worker HITs) so only one HIT fits in
//! flight: every minute a lease comes back early is a minute the next job starts sooner.
//! Because a `Fleet` derives a fresh, bit-identical crowd from its `CrowdSpec` on every
//! `run`, the two configurations are compared over *the same* simulated workers — no
//! hand-cloning of pools required.
//!
//! Run with: `cargo run -p cdas --example clocked_fleet`

use cdas::fixtures::demo_questions;
use cdas::prelude::*;

const SEED: u64 = 2012;

/// The two-job fleet over a 9-worker, 90 %-accuracy crowd whose completion times are
/// exponential (mean 5 min), with or without early termination.
fn fleet(termination: Option<TerminationStrategy>) -> Fleet {
    let mut builder = Fleet::builder()
        .crowd(
            CrowdSpec::clean(9, 0.9)
                .seed(SEED)
                .latency(LatencyModel::Exponential { mean: 5.0 }),
        )
        .batch_size(9);
    for name in ["first-job", "second-job"] {
        let mut job = JobSpec::sentiment(name, demo_questions(6, 3))
            .workers(7)
            .domain_size(3);
        job = match termination {
            Some(strategy) => job.termination(strategy),
            None => job.no_termination(),
        };
        builder = builder.job(job);
    }
    builder.build().expect("a well-formed fleet")
}

fn print_fleet(tag: &str, run: &FleetRun) {
    let report = run.report();
    println!("== {tag} ==");
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>9} {:>8}",
        "job", "1st verdict", "completed", "reclaimed", "accuracy", "cost $"
    );
    for job in &report.jobs {
        println!(
            "{:<12} {:>8.1}m {:>11.1}m {:>11.1}m {:>9.3} {:>8.3}",
            job.name,
            job.time_to_first_verdict.unwrap_or(f64::NAN),
            job.completed_at,
            job.reclaimed_minutes,
            job.report.accuracy,
            job.report.cost,
        );
    }
    println!(
        "makespan              : {:.1} simulated minutes",
        report.makespan
    );
    println!("worker-minutes saved  : {:.1}", report.reclaimed_minutes);
    println!("answers cancelled     : {}", report.answers_cancelled);
    println!("fleet cost            : ${:.3}", report.total_cost());
    println!("platform ledger       : ${:.3}", run.platform_cost());
    println!();
}

fn main() {
    // Baseline: clocked collection, but every HIT runs to its natural makespan.
    let baseline = fleet(None).run(ExecutionMode::Clocked).expect("fleet run");
    print_fleet("end-of-time baseline", &baseline);

    // Early termination (ExpMax, the paper's recommendation): the moment every question
    // of a HIT is decided, the HIT is cancelled mid-flight — its undelivered assignments
    // are never paid, and its workers go back to the pool for the waiting job.
    let early = fleet(Some(TerminationStrategy::ExpMax))
        .run(ExecutionMode::Clocked)
        .expect("fleet run");
    print_fleet("ExpMax early termination", &early);

    // The handover, observed from the event stream: when did the second job start, and
    // when did leases come back mid-flight?
    let started = |run: &FleetRun, job: JobId| {
        run.events()
            .iter()
            .find_map(|e| match e {
                FleetEvent::JobStarted { job: j, at, .. } if *j == job => Some(*at),
                _ => None,
            })
            .unwrap_or(f64::NAN)
    };
    println!(
        "second job started    : {:.1}m (baseline {:.1}m)",
        started(&early, JobId(1)),
        started(&baseline, JobId(1))
    );
    for event in early.events() {
        if let FleetEvent::LeaseReclaimed { job, minutes, at } = event {
            println!(
                "lease reclaimed       : job {} handed back {minutes:.1} worker-minutes by {at:.1}m",
                job.0
            );
        }
    }
    let (b, e) = (baseline.report(), early.report());
    println!(
        "makespan saved        : {:.1} simulated minutes ({:.0}%)",
        b.makespan - e.makespan,
        100.0 * (b.makespan - e.makespan) / b.makespan
    );
    println!(
        "dollars saved         : ${:.3}",
        b.total_cost() - e.total_cost()
    );
    assert!(e.makespan < b.makespan);
    assert!((e.total_cost() - early.platform_cost()).abs() < 1e-9);
}
