//! The clocked crowd (§4.2 at scale): the same fleet run twice over identical worker
//! pools — once polling every HIT at the end of time, once under a discrete-event
//! `SimClock` where answers arrive asynchronously, early termination cancels HITs
//! *mid-flight*, and the cancelled workers' leases flow straight to the next waiting job.
//!
//! The pool is deliberately tight (9 workers, 7-worker HITs) so only one HIT fits in
//! flight: every minute a lease comes back early is a minute the next job starts sooner.
//! The paper's Figure 11 observation — result quality is driven by the *arrival sequence*
//! — is what makes this simulation meaningful: the clocked run consumes exactly the
//! prefix of each arrival sequence it needs, and pays only for that prefix.
//!
//! Run with: `cargo run -p cdas --example clocked_fleet`

use cdas::core::economics::CostModel;
use cdas::core::online::TerminationStrategy;
use cdas::crowd::arrival::LatencyModel;
use cdas::crowd::pool::PoolConfig;
use cdas::engine::engine::WorkerCountPolicy;
use cdas::engine::job_manager::JobKind;
use cdas::engine::scheduler::demo_questions;
use cdas::prelude::*;

const SEED: u64 = 2012;

fn engine(termination: Option<TerminationStrategy>) -> EngineConfig {
    EngineConfig {
        workers: WorkerCountPolicy::Fixed(7),
        termination,
        domain_size: Some(3),
        ..EngineConfig::default()
    }
}

/// Run the two-job fleet clocked, with or without early termination, over an identical
/// crowd: 9 workers at 90 % accuracy whose completion times are exponential (mean 5 min).
fn run(termination: Option<TerminationStrategy>) -> (FleetReport, f64) {
    let pool = WorkerPool::generate(&PoolConfig {
        latency: LatencyModel::Exponential { mean: 5.0 },
        ..PoolConfig::clean(9, 0.9, SEED)
    });
    let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), SEED);
    let mut scheduler = JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
    for name in ["first-job", "second-job"] {
        scheduler.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(6, 3))
                .with_engine(engine(termination))
                .with_batch_size(9),
        );
    }
    let report = scheduler.run_clocked(&mut platform).expect("fleet run");
    (report, platform.total_cost())
}

fn print_fleet(tag: &str, report: &FleetReport, platform_cost: f64) {
    println!("== {tag} ==");
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>9} {:>8}",
        "job", "1st verdict", "completed", "reclaimed", "accuracy", "cost $"
    );
    for job in &report.jobs {
        println!(
            "{:<12} {:>8.1}m {:>11.1}m {:>11.1}m {:>9.3} {:>8.3}",
            job.name,
            job.time_to_first_verdict.unwrap_or(f64::NAN),
            job.completed_at,
            job.reclaimed_minutes,
            job.report.accuracy,
            job.report.cost,
        );
    }
    println!(
        "makespan              : {:.1} simulated minutes",
        report.makespan
    );
    println!("worker-minutes saved  : {:.1}", report.reclaimed_minutes);
    println!("answers cancelled     : {}", report.answers_cancelled);
    println!("fleet cost            : ${:.3}", report.total_cost());
    println!("platform ledger       : ${platform_cost:.3}");
    println!();
}

fn main() {
    // Baseline: clocked collection, but every HIT runs to its natural makespan.
    let (baseline, baseline_cost) = run(None);
    print_fleet("end-of-time baseline", &baseline, baseline_cost);

    // Early termination (ExpMax, the paper's recommendation): the moment every question
    // of a HIT is decided, the HIT is cancelled mid-flight — its undelivered assignments
    // are never paid, and its workers go back to the pool for the waiting job.
    let (early, early_cost) = run(Some(TerminationStrategy::ExpMax));
    print_fleet("ExpMax early termination", &early, early_cost);

    // The handover, explicitly: when did the second job get its workers?
    let handover = |report: &FleetReport| {
        report
            .dispatches
            .iter()
            .find(|d| d.job == JobId(1))
            .map(|d| d.at)
            .unwrap_or(f64::NAN)
    };
    println!(
        "second job started    : {:.1}m (baseline {:.1}m)",
        handover(&early),
        handover(&baseline)
    );
    println!(
        "makespan saved        : {:.1} simulated minutes ({:.0}%)",
        baseline.makespan - early.makespan,
        100.0 * (baseline.makespan - early.makespan) / baseline.makespan
    );
    println!(
        "dollars saved         : ${:.3}",
        baseline.total_cost() - early.total_cost()
    );
    assert!(early.makespan < baseline.makespan);
    assert!((early.total_cost() - early_cost).abs() < 1e-9);
}
