//! The parallel fleet: the same clocked scheduler, spread across OS threads.
//!
//! A `ShardedPlatform` splits one simulated crowd into disjoint shards — each shard owns
//! a slice of the worker pool and a slice of the HIT-id space — and
//! `JobScheduler::run_parallel` pins one shard (and the jobs striped onto it) to one
//! thread. The threads share exactly one thing: the lock-striped
//! `SharedAccuracyRegistry`, so accuracy learned anywhere in the fleet weights votes
//! everywhere, just as in a sequential run. `run_clocked` is literally the one-shard
//! special case of the same code path, which this example demonstrates by running the
//! identical 8-job fleet three ways: sequentially, on 1 shard, and on 4 shards.
//!
//! Run with: `cargo run --release -p cdas --example parallel_fleet`

use cdas::core::economics::CostModel;
use cdas::crowd::arrival::LatencyModel;
use cdas::crowd::pool::PoolConfig;
use cdas::engine::engine::WorkerCountPolicy;
use cdas::engine::job_manager::JobKind;
use cdas::engine::scheduler::demo_questions;
use cdas::prelude::*;

const SEED: u64 = 2024;
const JOBS: usize = 8;

fn pool() -> WorkerPool {
    WorkerPool::generate(&PoolConfig {
        latency: LatencyModel::Exponential { mean: 5.0 },
        ..PoolConfig::clean(32, 0.85, SEED)
    })
}

fn scheduler() -> JobScheduler {
    let mut scheduler = JobScheduler::new(SchedulerConfig::default(), {
        PoolLedger::from_pool(&pool())
    });
    for i in 0..JOBS {
        scheduler.submit(
            ScheduledJob::named(
                JobKind::SentimentAnalytics,
                format!("job-{i}"),
                demo_questions(24, 4),
            )
            .with_engine(EngineConfig {
                workers: WorkerCountPolicy::Fixed(7),
                domain_size: Some(3),
                ..EngineConfig::default()
            })
            .with_batch_size(7),
        );
    }
    scheduler
}

fn print_run(tag: &str, report: &FleetReport) {
    println!("== {tag} ==");
    println!(
        "{:<7} {:>6} {:>7} {:>11} {:>10} {:>9}",
        "shard", "jobs", "ticks", "makespan", "questions", "wall ms"
    );
    for shard in &report.shards {
        println!(
            "{:<7} {:>6} {:>7} {:>10.1}m {:>10} {:>9.1}",
            shard.shard,
            shard.jobs.len(),
            shard.ticks,
            shard.makespan,
            shard.questions,
            shard.wall_seconds * 1e3,
        );
    }
    println!(
        "fleet: accuracy {:.3}, cost ${:.2}, makespan {:.1}m, speedup x{:.2}",
        report.fleet.accuracy,
        report.total_cost(),
        report.makespan,
        report.parallel_speedup(),
    );
    println!();
}

fn main() {
    // Sequential baseline: one thread, one event loop over all 8 jobs.
    let mut platform = SimulatedPlatform::new(pool(), CostModel::default(), SEED);
    let mut sequential = scheduler();
    let baseline = sequential.run_clocked(&mut platform).expect("clocked run");
    print_run("run_clocked (sequential)", &baseline);

    // The same fleet on the parallel path with a single shard: byte-identical results
    // (wall-clock timing aside) — the sequential loop IS the one-shard special case.
    let mut one_shard = ShardedPlatform::split(&pool(), CostModel::default(), SEED, 1);
    let mut parallel_one = scheduler();
    let one = parallel_one
        .run_parallel(&mut one_shard)
        .expect("1-shard run");
    print_run("run_parallel, 1 shard", &one);
    assert_eq!(
        baseline.ignoring_wall_clock(),
        one.ignoring_wall_clock(),
        "1-shard run_parallel must reproduce run_clocked exactly"
    );

    // Four shards, four OS threads: each owns 8 workers and 2 jobs. The fleet finishes
    // as fast as its slowest shard instead of the sum of all of them.
    let mut four_shards = ShardedPlatform::split(&pool(), CostModel::default(), SEED, 4);
    let mut parallel_four = scheduler();
    let four = parallel_four
        .run_parallel(&mut four_shards)
        .expect("4-shard run");
    print_run("run_parallel, 4 shards", &four);

    assert_eq!(four.fleet.questions, baseline.fleet.questions);
    assert!(four.fleet.accuracy > 0.8);
    println!(
        "4-shard speedup over running its shards serially: x{:.2} ({} threads)",
        four.parallel_speedup(),
        four.shards.len()
    );
}
