//! The parallel fleet: the same clocked scheduler, spread across OS threads.
//!
//! One `Fleet` is run three ways — `Clocked`, `Parallel { shards: 1 }` and
//! `Parallel { shards: 4 }` — over bit-identical crowds derived from its `CrowdSpec`.
//! Under the hood a `ShardedPlatform` splits the simulated crowd into disjoint shards
//! (each owning a slice of the worker pool and of the HIT-id space) and the scheduler
//! pins one shard, and the jobs striped onto it, to one thread. The threads share exactly
//! one thing: the lock-striped `SharedAccuracyRegistry`, so accuracy learned anywhere in
//! the fleet weights votes everywhere, just as in a sequential run. The sequential
//! clocked loop is literally the one-shard special case of the parallel code path, which
//! the 1-shard run demonstrates by reproducing the `Clocked` report byte for byte.
//!
//! Run with: `cargo run --release -p cdas --example parallel_fleet`

use cdas::fixtures::demo_questions;
use cdas::prelude::*;

const SEED: u64 = 2024;
const JOBS: usize = 8;

fn fleet() -> Fleet {
    let mut builder = Fleet::builder()
        .crowd(
            CrowdSpec::clean(32, 0.85)
                .seed(SEED)
                .latency(LatencyModel::Exponential { mean: 5.0 }),
        )
        .shards(4)
        .batch_size(7);
    for i in 0..JOBS {
        builder = builder.job(
            JobSpec::sentiment(format!("job-{i}"), demo_questions(24, 4))
                .workers(7)
                .domain_size(3),
        );
    }
    builder.build().expect("a well-formed fleet")
}

fn print_run(tag: &str, report: &FleetReport) {
    println!("== {tag} ==");
    println!(
        "{:<7} {:>6} {:>7} {:>11} {:>10} {:>9}",
        "shard", "jobs", "ticks", "makespan", "questions", "wall ms"
    );
    for shard in &report.shards {
        println!(
            "{:<7} {:>6} {:>7} {:>10.1}m {:>10} {:>9.1}",
            shard.shard,
            shard.jobs.len(),
            shard.ticks,
            shard.makespan,
            shard.questions,
            shard.wall_seconds * 1e3,
        );
    }
    println!(
        "fleet: accuracy {:.3}, cost ${:.2}, makespan {:.1}m, speedup x{:.2}",
        report.fleet.accuracy,
        report.total_cost(),
        report.makespan,
        report.parallel_speedup(),
    );
    println!();
}

fn main() {
    let fleet = fleet();

    // Sequential baseline: one thread, one event loop over all 8 jobs.
    let baseline = fleet.run(ExecutionMode::Clocked).expect("clocked run");
    print_run("run(Clocked) — sequential", baseline.report());

    // The same fleet on the parallel path with a single shard: byte-identical results
    // (wall-clock timing aside) — the sequential loop IS the one-shard special case.
    let one = fleet
        .run(ExecutionMode::Parallel { shards: 1 })
        .expect("1-shard run");
    print_run("run(Parallel { shards: 1 })", one.report());
    assert_eq!(
        baseline.report().ignoring_wall_clock(),
        one.report().ignoring_wall_clock(),
        "1-shard Parallel must reproduce Clocked exactly"
    );

    // Four shards, four OS threads: each owns 8 workers and 2 jobs. The fleet finishes
    // as fast as its slowest shard instead of the sum of all of them. `run_parallel()`
    // picks up the builder's `.shards(4)` default.
    let four = fleet.run_parallel().expect("4-shard run");
    print_run("run(Parallel { shards: 4 })", four.report());

    assert_eq!(
        four.report().fleet.questions,
        baseline.report().fleet.questions
    );
    assert!(four.report().fleet.accuracy > 0.8);
    println!(
        "4-shard speedup over running its shards serially: x{:.2} ({} threads)",
        four.report().parallel_speedup(),
        four.report().shards.len()
    );
}
