//! Many concurrent analytics jobs over one shared crowd: two Twitter-sentiment jobs and
//! one image-tagging job multiplexed over a single 16-worker pool. Each tick interleaves
//! Phase-1 publishes with Phase-2 ingestion across jobs; worker leases keep concurrently
//! in-flight HITs disjoint, and every job's gold-question estimates land in one shared
//! accuracy registry, so what the fleet learns about a worker in one job reweights that
//! worker's votes everywhere else.
//!
//! The whole fleet is wired through the front door: one `CrowdSpec`, one
//! `Fleet::builder()` chain, one `run(ExecutionMode::EndOfTime)`. The scheduler, ledger
//! and platform it used to take five structs to assemble are derived behind the facade.
//!
//! Run with: `cargo run -p cdas --example multi_job`

use cdas::crowd::question::CrowdQuestion;
use cdas::prelude::*;
use cdas::workloads::it::images::SyntheticImage;
use cdas::workloads::tsa::tweets::Tweet;

fn tsa_questions(movie: &str, seed: u64, count: usize) -> Vec<CrowdQuestion> {
    let mut generator = TweetGenerator::new(TweetGeneratorConfig {
        seed,
        ..TweetGeneratorConfig::default()
    });
    let tweets = generator.generate(movie, count);
    let refs: Vec<&Tweet> = tweets.iter().collect();
    TsaApp::new(TsaConfig::default()).build_questions(&refs)
}

fn it_questions(subject: &str, seed: u64, count: usize) -> Vec<CrowdQuestion> {
    let mut generator = ImageGenerator::new(ImageGeneratorConfig {
        seed,
        ..ImageGeneratorConfig::default()
    });
    let images = generator.generate(subject, count);
    let refs: Vec<&SyntheticImage> = images.iter().collect();
    ImageTaggingApp::new(ItConfig::default()).build_questions(&refs)
}

fn main() {
    // One finite crowd, shared by everyone: 16 workers at 80 % accuracy. Three jobs
    // compete for them (7 + 7 + 5 never fit at once), batched 10 questions per HIT.
    let fleet = Fleet::builder()
        .crowd(CrowdSpec::clean(16, 0.8).seed(7))
        .policy(DispatchPolicy::Priority)
        .batch_size(10)
        .job(
            JobSpec::sentiment("thor-sentiment", tsa_questions("Thor", 1, 30))
                .workers(7)
                .domain_size(3)
                .priority(10), // the urgent job: drains first under Priority dispatch
        )
        .job(
            JobSpec::sentiment("hulk-sentiment", tsa_questions("Hulk", 2, 30))
                .workers(7)
                .domain_size(3),
        )
        .job(
            JobSpec::tagging("tiger-tags", it_questions("tiger", 3, 20))
                .workers(5)
                .estimated_domain_size(),
        )
        .build()
        .expect("a well-formed fleet");

    let run = fleet.run(ExecutionMode::EndOfTime).expect("fleet run");
    let report = run.report();

    println!(
        "== fleet of {} jobs over one 16-worker pool ==",
        report.jobs.len()
    );
    println!(
        "{:<16} {:>4} {:>6} {:>8} {:>7} {:>8} {:>8}",
        "job", "hits", "waits", "workers", "quest.", "accuracy", "cost $"
    );
    for job in &report.jobs {
        println!(
            "{:<16} {:>4} {:>6} {:>8} {:>7} {:>8.3} {:>8.2}",
            job.name,
            job.hits,
            job.ticks_waited,
            job.distinct_workers,
            job.report.questions,
            job.report.accuracy,
            job.report.cost,
        );
    }
    println!("\nfleet accuracy        : {:.3}", report.fleet.accuracy);
    println!("fleet cost            : ${:.2}", report.total_cost());
    println!("scheduler ticks       : {}", report.ticks);
    println!("questions per tick    : {:.1}", report.questions_per_tick());
    println!("max concurrent HITs   : {}", report.max_concurrent_hits());
    println!(
        "shared registry       : {} workers estimated (cache {} hits / {} misses)",
        report.registry_size, report.cache_hits, report.cache_misses
    );

    // The dispatch timeline proves the interleaving: tick by tick, which job published a
    // HIT and how many workers it leased.
    println!("\ndispatch timeline (tick: job x workers):");
    let mut tick = 0;
    for d in &report.dispatches {
        if d.tick != tick {
            tick = d.tick;
            print!("\n  tick {tick:>2}:");
        }
        let name = &report.jobs[d.job.0].name;
        print!(" {name} x{}", d.workers.len());
    }
    println!();

    // The same run, observed as a stream: every verdict the fleet produced, without
    // walking the per-job reports.
    let accepted = run.verdicts().filter(|(_, _, v)| v.is_accepted()).count();
    println!(
        "\nstreamed {} events, {} verdicts ({} accepted)",
        run.events().len(),
        run.verdicts().count(),
        accepted
    );
}
