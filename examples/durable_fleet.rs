//! The durable fleet: journal a run, kill it mid-flight, recover it exactly.
//!
//! A `Fleet` built with `.journal(dir)` appends every scheduler decision — dispatches,
//! charges, batch commits, fleet events — to a segmented write-ahead log as the run
//! executes. This example crashes a 2-shard parallel run on purpose (a failpoint aborts
//! shard 1 after three platform polls, the in-process stand-in for `kill -9`), then
//! calls `Fleet::recover(dir)`: the journaled prefix is replayed and cross-checked
//! against a deterministic re-execution, the unfinished suffix is resumed live, and the
//! final report is bit-identical (wall clock aside) to a run that never crashed — with
//! every already-committed HIT recovered from the log rather than paid a second time.
//!
//! Run with: `cargo run --release -p cdas --example durable_fleet`

use std::panic::{catch_unwind, AssertUnwindSafe};

use cdas::crowd::failpoint::FAILPOINT_PANIC;
use cdas::fixtures::demo_questions;
use cdas::prelude::*;

const MODE: ExecutionMode = ExecutionMode::Parallel { shards: 2 };

fn fleet(journal: Option<&std::path::Path>) -> Fleet {
    let mut builder = Fleet::builder()
        .crowd(
            CrowdSpec::clean(12, 0.85)
                .seed(11)
                .latency(LatencyModel::Exponential { mean: 4.0 }),
        )
        .job(
            JobSpec::sentiment("alpha", demo_questions(6, 2))
                .workers(4)
                .domain_size(3)
                .batch_size(3),
        )
        .job(
            JobSpec::sentiment("beta", demo_questions(5, 1))
                .workers(3)
                .domain_size(3)
                .batch_size(5),
        );
    if let Some(dir) = journal {
        builder = builder.journal(dir);
    }
    builder.build().expect("a well-formed fleet")
}

fn journal_bytes(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.path().extension().is_some_and(|e| e == "wal") {
                total += entry.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}

fn main() {
    // The injected crash is the whole point of the demo; keep the default panic hook
    // from printing a scary backtrace for it (genuine panics still print).
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|message| message == FAILPOINT_PANIC);
        if !injected {
            previous(info);
        }
    }));

    let dir = std::env::temp_dir().join(format!("cdas-durable-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The control: the same fleet, never crashed and never journaled.
    let expected = fleet(None).run(MODE).expect("uninterrupted run");
    println!(
        "uninterrupted run: {} questions, ${:.2}, makespan {:.1}m",
        expected.report().fleet.questions,
        expected.report().total_cost(),
        expected.report().makespan,
    );

    // Journal the run and kill shard 1 after three polls. The healthy shard finishes
    // and its commits land in the journal before the panic resurfaces here.
    let crash = catch_unwind(AssertUnwindSafe(|| {
        fleet(Some(&dir)).run_with_failpoints(
            MODE,
            FleetFailpoints::on_shard(1, Failpoint::after_polls(3)),
        )
    }));
    assert!(crash.is_err(), "the failpoint must abort the run");
    println!(
        "crashed mid-run: shard 1 aborted, {} journal bytes survive in {}",
        journal_bytes(&dir),
        dir.display(),
    );

    // Recovery: replay the wreckage, resume the rest, and account for both halves.
    let (run, report) = Fleet::recover(&dir).expect("recovery succeeds");
    println!(
        "recovered: {} HITs (${:.2}) replayed from the journal, {} HITs (${:.2}) resumed live",
        report.recovered_hits, report.recovered_cost, report.resumed_hits, report.resumed_cost,
    );
    assert!(!report.was_complete, "the crashed journal had no trailer");
    assert_eq!(
        run.report().ignoring_wall_clock(),
        expected.report().ignoring_wall_clock(),
        "recovery must reproduce the uninterrupted run exactly"
    );
    assert_eq!(run.events(), expected.events());
    assert!(
        (report.total_cost() - expected.report().total_cost()).abs() < 1e-9,
        "recovered + resumed dollars equal the uninterrupted cost — nothing paid twice"
    );

    // The resumed run completed the journal, so recovering again is a pure no-op read.
    let (_, second) = Fleet::recover(&dir).expect("second recovery");
    assert!(second.was_complete);
    assert_eq!(second.resumed_hits, 0);
    println!(
        "second recovery: complete journal, {} HITs replayed, 0 resumed — crash-and-resume \
         is indistinguishable from never crashing",
        second.recovered_hits,
    );

    let _ = std::fs::remove_dir_all(&dir);
}
