//! The resident service: submit jobs over time, watch admission decisions stream
//! back, kill the service, recover it from its directory.
//!
//! A `FleetService` stays up across many jobs: each `submit` is forecast by the
//! white-box admission model (workers per HIT, batches, dollars, predicted makespan
//! under the *live mix*) and answered with Accept / Queue / Reject before anything
//! runs. Accepted jobs pool into epochs; `run_epoch` drains them into one journaled
//! fleet run with an auto-picked shard count, and queued jobs promote as capacity
//! frees. Every decision and epoch boundary is journaled in the service's manifest,
//! so this example can drop the service on the floor mid-lifetime — the in-process
//! stand-in for `kill -9` — and `FleetService::recover(dir)` rebuilds it: journaled
//! work is reused, pending tickets come back, and the finished lifetime is
//! indistinguishable from one that never crashed.
//!
//! Run with: `cargo run --release -p cdas --example service_fleet`

use cdas::fixtures::demo_questions;
use cdas::prelude::*;

fn spec(name: &str, workers: usize) -> JobSpec {
    JobSpec::sentiment(name, demo_questions(6, 2))
        .workers(workers)
        .domain_size(3)
        .batch_size(3)
}

fn describe(decision: AdmissionDecision, forecast: &AdmissionForecast) -> String {
    format!(
        "{decision:?} (predicted: {} workers/HIT, {} batches, ${:.3}, makespan {:.1} min)",
        forecast.workers_per_hit, forecast.batches, forecast.cost, forecast.makespan_minutes
    )
}

fn main() {
    let dir = std::env::temp_dir().join(format!("cdas-service-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = ServiceConfig::new(
        CrowdSpec::clean(12, 0.85)
            .seed(11)
            .latency(LatencyModel::Exponential { mean: 4.0 }),
    );
    println!("== open ==");
    println!(
        "service dir: {} (manifest journal + one run journal per epoch)",
        dir.display()
    );
    let mut service = FleetService::open(&dir, config).expect("a fresh service");

    // Submissions arrive over time. The third one wants more workers than the mix
    // leaves free, so admission queues it; the hopeless one is rejected outright.
    println!("\n== submissions ==");
    let mut tickets = Vec::new();
    for (name, workers) in [("alpha", 4), ("beta", 3), ("gamma", 7)] {
        let ticket = service.submit(spec(name, workers)).expect("servable job");
        for event in service.poll(ticket) {
            if let ServiceEvent::Submitted {
                decision, forecast, ..
            } = event
            {
                println!("  {name:<6} → {}", describe(decision, &forecast));
            }
        }
        tickets.push((name, ticket));
    }
    match service.submit(spec("hopeless", 40)) {
        Err(Rejected::Policy { reason, .. }) => {
            println!("  hopeless → Reject ({reason})");
        }
        other => panic!("a 40-worker job cannot be admitted: {other:?}"),
    }

    // First epoch: the accepted jobs run; the queued one waits.
    println!("\n== epoch 0 ==");
    let summary = service
        .run_epoch()
        .expect("epoch runs")
        .expect("jobs ready");
    println!(
        "  ran {} jobs under {:?}: {} questions, ${:.3}, makespan {:.1} min",
        summary.tickets.len(),
        summary.mode,
        summary.questions,
        summary.cost,
        summary.makespan
    );

    // The kill: drop the service without shutdown. Everything journaled survives.
    println!("\n== kill -9 ==");
    drop(service);
    println!("  service dropped without shutdown; recovering from the directory…");

    let (service, recovery) = FleetService::recover(&dir).expect("recovery");
    println!(
        "  recovered: {} epoch(s) replayed, {} ticket(s) still pending, torn tail: {}",
        recovery.epoch_recoveries.len(),
        recovery.pending.len(),
        recovery.torn_tail
    );
    for ticket in &recovery.pending {
        let name = tickets
            .iter()
            .find(|(_, t)| t == ticket)
            .map(|(n, _)| *n)
            .unwrap_or("?");
        println!("  pending after recovery: {name} ({ticket:?})");
    }

    // The recovered service is live: the queued job promotes now that the mix is
    // empty, and shutdown drains it.
    println!("\n== shutdown ==");
    let report = service.shutdown().expect("clean shutdown");
    println!(
        "  {} submitted, {} rejected, {} epochs, total ${:.3}",
        report.submitted,
        report.rejected,
        report.epochs.len(),
        report.total_cost
    );
    for (name, ticket) in &tickets {
        let served = report.events.iter().any(|e| {
            matches!(e, ServiceEvent::Job { ticket: t, event: FleetEvent::JobCompleted { .. }, .. } if t == ticket)
        });
        println!("  {name:<6} served: {served}");
    }
    assert!(report.unserved.is_empty(), "every admitted job was served");
    assert_eq!(report.rejected, 1);

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nA killed service is a directory, not a loss.");
}
