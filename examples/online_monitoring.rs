//! Online processing, observed live: run a clocked fleet with early termination and
//! watch its event stream — jobs starting, HITs dispatched, verdicts terminating early,
//! leases flowing back mid-flight — then drill into one HIT to see the per-answer
//! confidence trajectory each termination strategy reacts to (§4.2, Figures 11–13).
//!
//! Run with: `cargo run -p cdas --example online_monitoring`

use cdas::core::online::OnlineProcessor;
use cdas::core::types::AnswerDomain;
use cdas::crowd::question::CrowdQuestion;
use cdas::fixtures::demo_questions;
use cdas::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- The monitor: a fleet's event stream ----------------------------------------
    // Two 12-question jobs with ExpMax termination over a tight asynchronous crowd.
    let fleet = Fleet::builder()
        .crowd(
            CrowdSpec::clean(12, 0.85)
                .seed(7)
                .latency(LatencyModel::Exponential { mean: 5.0 }),
        )
        .batch_size(6)
        .jobs(["alpha", "beta"].map(|name| {
            JobSpec::sentiment(name, demo_questions(12, 3))
                .workers(7)
                .domain_size(3)
                .termination(TerminationStrategy::ExpMax)
        }))
        .build()
        .expect("a well-formed fleet");
    let run = fleet.run(ExecutionMode::Clocked).expect("fleet run");

    println!("live fleet monitor (simulated minutes):");
    run.replay(|event| match event {
        FleetEvent::JobStarted { name, at, .. } => {
            println!("  {at:>6.1}m  job {name:?} started");
        }
        FleetEvent::HitDispatched {
            job, workers, at, ..
        } => {
            println!(
                "  {at:>6.1}m  job {} dispatched a HIT to {workers} workers",
                job.0
            );
        }
        FleetEvent::FirstVerdict { job, at } => {
            println!("  {at:>6.1}m  job {} produced its first verdict", job.0);
        }
        FleetEvent::LeaseReclaimed { job, minutes, at } => {
            println!(
                "  {at:>6.1}m  job {} cancelled mid-flight, reclaiming {minutes:.1} worker-minutes",
                job.0
            );
        }
        FleetEvent::JobCompleted {
            job,
            questions,
            accuracy,
            at,
        } => {
            println!(
                "  {at:>6.1}m  job {} completed: {questions} questions at {accuracy:.3}",
                job.0
            );
        }
        FleetEvent::QuestionTerminated { .. } => {} // 24 of these; summarized below
    });
    let early = run
        .events()
        .iter()
        .filter(|e| matches!(e, FleetEvent::QuestionTerminated { early: true, .. }))
        .count();
    println!(
        "  {} verdicts streamed, {} terminated before every worker answered\n",
        run.verdicts().count(),
        early
    );

    // --- The drill-down: one HIT, answer by answer ----------------------------------
    // A HIT assigned to 15 workers drawn from the default (Figure 14-shaped) pool; the
    // question has three answers and the true one is "Positive".
    let pool = CrowdSpec::paper().build_pool();
    let mut rng = StdRng::seed_from_u64(7);
    let question = CrowdQuestion::new(
        QuestionId(0),
        AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
        Label::from("Positive"),
    );
    let workers = pool.assign(15, &mut rng);
    let mean_accuracy = pool.true_mean_accuracy(&question);

    // Build the asynchronous answer sequence: every worker answers, latencies decide order.
    let mut submissions: Vec<(f64, Vote)> = workers
        .iter()
        .map(|w| {
            let label = w.answer(&question, &mut rng);
            let at = w.sample_latency(&mut rng);
            (at, Vote::new(w.id, label, w.effective_accuracy(&question)))
        })
        .collect();
    submissions.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    println!("mean pool accuracy: {mean_accuracy:.3}; 15 workers assigned\n");
    println!(
        "{:>6} {:>8} {:>10} {:>10}   termination fired",
        "t", "worker", "answer", "P(best)"
    );

    let mut processors: Vec<(TerminationStrategy, OnlineProcessor)> = TerminationStrategy::ALL
        .iter()
        .map(|s| {
            (
                *s,
                OnlineProcessor::new(15, mean_accuracy, *s)
                    .unwrap()
                    .with_domain_size(3),
            )
        })
        .collect();

    for (at, vote) in &submissions {
        let mut fired = Vec::new();
        let mut best = (String::new(), 0.0);
        for (strategy, processor) in processors.iter_mut() {
            let outcome = processor.consume(vote.clone()).unwrap();
            if let Some((label, p)) = &outcome.best {
                best = (label.as_str().to_string(), *p);
            }
            if processor.terminated_at() == Some(outcome.answers_received) {
                fired.push(strategy.name());
            }
        }
        println!(
            "{:>6.1} {:>8} {:>10} {:>9.3}   {}",
            at,
            vote.worker.to_string(),
            vote.label.as_str(),
            best.1,
            if fired.is_empty() {
                String::from("-")
            } else {
                fired.join(", ")
            }
        );
    }

    println!("\nanswers consumed before termination:");
    for (strategy, processor) in &processors {
        println!(
            "  {:<7} {:>2} of 15",
            strategy.name(),
            processor.terminated_at().unwrap_or(15)
        );
    }
    println!("\nExpMax terminates earliest while MinMax is provably stable — the trade-off of Figures 12 and 13.");
}
