//! Online processing: watch the confidence of a HIT's answers evolve as workers submit
//! asynchronously, and see where each early-termination strategy would stop (§4.2,
//! Figures 11–13).
//!
//! Run with: `cargo run -p cdas --example online_monitoring`

use cdas::core::online::OnlineProcessor;
use cdas::core::types::{AnswerDomain, QuestionId};
use cdas::crowd::question::CrowdQuestion;
use cdas::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A HIT assigned to 15 workers drawn from the default (Figure 14-shaped) pool; the
    // question has three answers and the true one is "Positive".
    let pool = WorkerPool::generate(&PoolConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    let question = CrowdQuestion::new(
        QuestionId(0),
        AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
        Label::from("Positive"),
    );
    let workers = pool.assign(15, &mut rng);
    let mean_accuracy = pool.true_mean_accuracy(&question);

    // Build the asynchronous answer sequence: every worker answers, latencies decide order.
    let mut submissions: Vec<(f64, Vote)> = workers
        .iter()
        .map(|w| {
            let label = w.answer(&question, &mut rng);
            let at = w.sample_latency(&mut rng);
            (at, Vote::new(w.id, label, w.effective_accuracy(&question)))
        })
        .collect();
    submissions.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    println!("mean pool accuracy: {mean_accuracy:.3}; 15 workers assigned\n");
    println!(
        "{:>6} {:>8} {:>10} {:>10}   termination fired",
        "t", "worker", "answer", "P(best)"
    );

    let mut processors: Vec<(TerminationStrategy, OnlineProcessor)> = TerminationStrategy::ALL
        .iter()
        .map(|s| {
            (
                *s,
                OnlineProcessor::new(15, mean_accuracy, *s)
                    .unwrap()
                    .with_domain_size(3),
            )
        })
        .collect();

    for (at, vote) in &submissions {
        let mut fired = Vec::new();
        let mut best = (String::new(), 0.0);
        for (strategy, processor) in processors.iter_mut() {
            let outcome = processor.consume(vote.clone()).unwrap();
            if let Some((label, p)) = &outcome.best {
                best = (label.as_str().to_string(), *p);
            }
            if processor.terminated_at() == Some(outcome.answers_received) {
                fired.push(strategy.name());
            }
        }
        println!(
            "{:>6.1} {:>8} {:>10} {:>9.3}   {}",
            at,
            vote.worker.to_string(),
            vote.label.as_str(),
            best.1,
            if fired.is_empty() {
                String::from("-")
            } else {
                fired.join(", ")
            }
        );
    }

    println!("\nanswers consumed before termination:");
    for (strategy, processor) in &processors {
        println!(
            "  {:<7} {:>2} of 15",
            strategy.name(),
            processor.terminated_at().unwrap_or(15)
        );
    }
    println!("\nExpMax terminates earliest while MinMax is provably stable — the trade-off of Figures 12 and 13.");
}
