//! Quickstart: CDAS through the front door.
//!
//! 1. Describe a crowd (`CrowdSpec`), build a `Fleet`, submit a `JobSpec`.
//! 2. Run it under simulated time and stream the verdicts as they terminate.
//! 3. Peek under the hood: the prediction model that sizes HITs automatically, and the
//!    paper's Table 3/4 worked example where probability-based verification overturns
//!    the majority vote.
//!
//! Run with: `cargo run -p cdas --example quickstart`

use cdas::fixtures::demo_questions;
use cdas::prelude::*;

fn main() {
    // --- The front door ------------------------------------------------------------
    // A 16-worker crowd at 85 % accuracy whose answers arrive asynchronously, and one
    // sentiment job: 10 real questions plus 2 gold questions, 5 workers per HIT.
    let mut fleet = Fleet::builder()
        .crowd(
            CrowdSpec::clean(16, 0.85)
                .seed(7)
                .latency(LatencyModel::Exponential { mean: 5.0 }),
        )
        .build()
        .expect("a well-formed fleet");
    fleet
        .submit(
            JobSpec::sentiment("quickstart", demo_questions(10, 2))
                .workers(5)
                .domain_size(3),
        )
        .expect("a well-formed job");

    let run = fleet.run(ExecutionMode::Clocked).expect("fleet run");

    // The streaming side: verdicts in event order, no report spelunking.
    println!("verdicts as they terminated:");
    for (job, question, verdict) in run.verdicts() {
        println!(
            "  job {} question {:>2} -> {}",
            job.0,
            question.0,
            verdict.label().map(|l| l.as_str()).unwrap_or("no answer")
        );
    }

    // The aggregate side: the same FleetReport the scheduler has always produced.
    let report = run.report();
    println!(
        "\n{} questions, accuracy {:.3}, ${:.2}, makespan {:.1} simulated minutes",
        report.fleet.questions,
        report.fleet.accuracy,
        report.total_cost(),
        report.makespan
    );

    // --- Phase 1 under the hood ------------------------------------------------------
    // Instead of `.workers(5)` the job could ask the prediction model to size its HITs:
    // `g(C)` workers for a required accuracy `C`, given the crowd's mean accuracy.
    let prediction = PredictionModel::new(0.75).expect("mean accuracy must exceed 0.5");
    for required in [0.80, 0.90, 0.95, 0.99] {
        println!(
            "required accuracy {:>4.0}% -> conservative estimate {:>3} workers, refined {:>3}",
            required * 100.0,
            prediction.conservative_workers(required).unwrap(),
            prediction.refined_workers(required).unwrap()
        );
    }
    println!("(ask for that with JobSpec::worker_policy(WorkerCountPolicy::Predicted {{ .. }}))");

    // --- Phase 2 under the hood -------------------------------------------------------
    // The verification model that weighed the votes above, on the paper's Table 3/4
    // example: five workers disagree about the sentiment of a tweet.
    let observation = Observation::from_votes(vec![
        Vote::new(WorkerId(1), Label::from("Positive"), 0.54),
        Vote::new(WorkerId(2), Label::from("Positive"), 0.31),
        Vote::new(WorkerId(3), Label::from("Neutral"), 0.49),
        Vote::new(WorkerId(4), Label::from("Negative"), 0.73),
        Vote::new(WorkerId(5), Label::from("Positive"), 0.46),
    ]);
    let majority = MajorityVoting::new().decide(&observation).unwrap();
    println!(
        "\nMajority-Voting says:         {}",
        majority.label().map(|l| l.as_str()).unwrap_or("no answer")
    );
    let result = ProbabilisticVerifier::with_domain_size(3)
        .verify(&observation)
        .unwrap();
    println!(
        "Probability-based model says: {} (confidence {:.3})",
        result.best(),
        result.best_confidence()
    );
    println!(
        "The high-accuracy worker (0.73) flips the answer to Negative — Table 4 of the paper."
    );
}
