//! Quickstart: the quality-sensitive answering model in ~40 lines.
//!
//! 1. Ask the prediction model how many workers a 95 %-accuracy HIT needs.
//! 2. Aggregate five conflicting worker answers with the probability-based verification
//!    model (the paper's Table 3/4 example).
//!
//! Run with: `cargo run -p cdas --example quickstart`

use cdas::prelude::*;

fn main() {
    // --- Phase 1: prediction --------------------------------------------------------
    // Our worker population answers correctly 75 % of the time on average.
    let prediction = PredictionModel::new(0.75).expect("mean accuracy must exceed 0.5");
    for required in [0.80, 0.90, 0.95, 0.99] {
        let conservative = prediction.conservative_workers(required).unwrap();
        let refined = prediction.refined_workers(required).unwrap();
        println!(
            "required accuracy {:>4.0}% -> conservative estimate {:>3} workers, refined {:>3}",
            required * 100.0,
            conservative,
            refined
        );
    }

    // --- Phase 2: verification ------------------------------------------------------
    // Five workers disagree about the sentiment of a tweet (Table 3 of the paper).
    let observation = Observation::from_votes(vec![
        Vote::new(WorkerId(1), Label::from("Positive"), 0.54),
        Vote::new(WorkerId(2), Label::from("Positive"), 0.31),
        Vote::new(WorkerId(3), Label::from("Neutral"), 0.49),
        Vote::new(WorkerId(4), Label::from("Negative"), 0.73),
        Vote::new(WorkerId(5), Label::from("Positive"), 0.46),
    ]);

    let majority = MajorityVoting::new().decide(&observation).unwrap();
    println!(
        "\nMajority-Voting says:         {}",
        majority.label().map(|l| l.as_str()).unwrap_or("no answer")
    );

    let verifier = ProbabilisticVerifier::with_domain_size(3);
    let result = verifier.verify(&observation).unwrap();
    println!(
        "Probability-based model says: {} (confidence {:.3})",
        result.best(),
        result.best_confidence()
    );
    println!("Full ranking:");
    for (label, confidence) in result.ranking() {
        println!("  {label:<9} {confidence:.3}");
    }
    println!(
        "\nThe high-accuracy worker (0.73) flips the answer to Negative — Table 4 of the paper."
    );
}
