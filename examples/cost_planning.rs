//! Cost planning with the economic model of §3.1: what does a windowed TSA query cost
//! under the conservative estimate, the refined estimate, and with ExpMax early
//! termination? Then the plan is checked against reality: a fleet sized by the same
//! prediction model is run through the front door and its measured cost compared to the
//! planned one.
//!
//! Run with: `cargo run -p cdas --example cost_planning`

use cdas::fixtures::demo_questions;
use cdas::prelude::*;

fn main() {
    // AMT-style pricing: 1¢ to the worker, 0.1¢ to the platform, per assignment.
    let cost = CostModel::default();
    // 20 candidate tweets arrive per time unit; the query window spans 10 units.
    let tweets_per_unit = 20u64;
    let window_units = 10u64;
    let mean_accuracy = 0.72;
    let prediction = PredictionModel::new(mean_accuracy).unwrap();

    println!(
        "pricing: {:.3}$ per assignment; {tweets_per_unit} HITs/unit over {window_units} units",
        cost.per_assignment()
    );
    println!("mean worker accuracy μ = {mean_accuracy}\n");
    println!(
        "{:>9} {:>14} {:>12} {:>14} {:>12} {:>16}",
        "target C", "conservative n", "cost ($)", "refined n", "cost ($)", "ExpMax est. ($)"
    );

    for required in [0.80, 0.85, 0.90, 0.95, 0.99] {
        let conservative = prediction.conservative_workers(required).unwrap();
        let refined = prediction.refined_workers(required).unwrap();
        let cost_conservative = cost.query_cost(conservative, tweets_per_unit, window_units);
        let cost_refined = cost.query_cost(refined, tweets_per_unit, window_units);
        // Figure 12 reports that ExpMax saves upwards of half of the assignments; use the
        // paper's observed ~50 % saving as the planning estimate.
        let expmax_workers = (refined as f64 * 0.5).ceil() as u64;
        let cost_expmax = cost.query_cost(expmax_workers.max(1), tweets_per_unit, window_units);
        println!(
            "{:>8.0}% {:>14} {:>12.2} {:>14} {:>12.2} {:>16.2}",
            required * 100.0,
            conservative,
            cost_conservative,
            refined,
            cost_refined,
            cost_expmax
        );
    }

    println!("\nThe refined (binary-search) estimate roughly halves the conservative cost, and");
    println!("online early termination halves it again while still meeting the accuracy target.");

    // --- Plan vs reality -------------------------------------------------------------
    // Size a real fleet with the same prediction model (C = 0.90 over a 0.72 crowd) and
    // measure what the clocked run actually charges per question, with and without
    // ExpMax termination. The refined estimate is the per-HIT worker count; termination
    // is where the extra saving comes from.
    let refined = prediction.refined_workers(0.90).unwrap() as usize;
    let measured = |terminate: bool| {
        let mut job = JobSpec::sentiment("planned", demo_questions(40, 8))
            .worker_policy(WorkerCountPolicy::Predicted { mean_accuracy })
            .required_accuracy(0.90)
            .domain_size(3)
            .batch_size(12);
        job = if terminate {
            job.termination(TerminationStrategy::ExpMax)
        } else {
            job.no_termination()
        };
        let fleet = Fleet::builder()
            .crowd(
                CrowdSpec::clean(30, mean_accuracy)
                    .seed(11)
                    .latency(LatencyModel::Exponential { mean: 5.0 }),
            )
            .job(job)
            .build()
            .expect("a well-formed fleet");
        let run = fleet.run(ExecutionMode::Clocked).expect("fleet run");
        let report = run.report();
        (
            report.fleet.cost / report.fleet.questions as f64,
            report.fleet.accuracy,
        )
    };
    let planned = cost.per_assignment() * refined as f64;
    let (full, full_acc) = measured(false);
    let (early, early_acc) = measured(true);
    println!("\nplan vs measured (refined n = {refined}, C = 90%):");
    println!("  planned  per question : ${planned:.3} (single-question HITs, as §3.1 prices)");
    println!(
        "  measured, no term.    : ${full:.3} (accuracy {full_acc:.3}; batching 12 questions \
         per HIT amortizes the {refined} assignments)"
    );
    println!("  measured, ExpMax      : ${early:.3} (accuracy {early_acc:.3})");
}
