//! Cost planning with the economic model of §3.1: what does a windowed TSA query cost under
//! the conservative estimate, the refined estimate, and with ExpMax early termination?
//!
//! Run with: `cargo run -p cdas --example cost_planning`

use cdas::prelude::*;

fn main() {
    // AMT-style pricing: 1¢ to the worker, 0.1¢ to the platform, per assignment.
    let cost = CostModel::default();
    // 20 candidate tweets arrive per time unit; the query window spans 10 units.
    let tweets_per_unit = 20u64;
    let window_units = 10u64;
    let mean_accuracy = 0.72;
    let prediction = PredictionModel::new(mean_accuracy).unwrap();

    println!(
        "pricing: {:.3}$ per assignment; {tweets_per_unit} HITs/unit over {window_units} units",
        cost.per_assignment()
    );
    println!("mean worker accuracy μ = {mean_accuracy}\n");
    println!(
        "{:>9} {:>14} {:>12} {:>14} {:>12} {:>16}",
        "target C", "conservative n", "cost ($)", "refined n", "cost ($)", "ExpMax est. ($)"
    );

    for required in [0.80, 0.85, 0.90, 0.95, 0.99] {
        let conservative = prediction.conservative_workers(required).unwrap();
        let refined = prediction.refined_workers(required).unwrap();
        let cost_conservative = cost.query_cost(conservative, tweets_per_unit, window_units);
        let cost_refined = cost.query_cost(refined, tweets_per_unit, window_units);
        // Figure 12 reports that ExpMax saves upwards of half of the assignments; use the
        // paper's observed ~50 % saving as the planning estimate.
        let expmax_workers = (refined as f64 * 0.5).ceil() as u64;
        let cost_expmax = cost.query_cost(expmax_workers.max(1), tweets_per_unit, window_units);
        println!(
            "{:>8.0}% {:>14} {:>12.2} {:>14} {:>12.2} {:>16.2}",
            required * 100.0,
            conservative,
            cost_conservative,
            refined,
            cost_refined,
            cost_expmax
        );
    }

    println!("\nThe refined (binary-search) estimate roughly halves the conservative cost, and");
    println!("online early termination halves it again while still meeting the accuracy target.");
}
