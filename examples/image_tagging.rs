//! Image tagging end to end: synthetic Flickr-style images with candidate + noise tags,
//! crowdsourced tag selection versus the automatic tagger (the ALIPR stand-in) — the
//! Figure 17 comparison in miniature.
//!
//! Run with: `cargo run -p cdas --example image_tagging`

use cdas::baselines::image::AutoTagger;
use cdas::engine::engine::WorkerCountPolicy;
use cdas::prelude::*;
use cdas::workloads::it::FIGURE17_SUBJECTS;

fn main() {
    let mut generator = ImageGenerator::new(ImageGeneratorConfig::default());

    // Train the automatic tagger on a separate image collection.
    let mut training = Vec::new();
    for subject in FIGURE17_SUBJECTS {
        training.extend(generator.generate(subject, 20));
    }
    let mut tagger = AutoTagger::new();
    tagger.train(&training);

    // The evaluation set: 20 images per subject, as in the paper.
    let pool = WorkerPool::generate(&PoolConfig::default());
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10}",
        "subject", "ALIPR*", "1 worker", "3 workers", "5 workers"
    );
    for subject in FIGURE17_SUBJECTS {
        let images = generator.generate(subject, 20);
        let refs: Vec<_> = images.iter().collect();
        let machine = tagger.accuracy(&images);
        let mut row = format!("{subject:<10} {:>7.1}%", machine * 100.0);
        for workers in [1usize, 3, 5] {
            let app = ImageTaggingApp::new(ItConfig {
                engine: EngineConfig {
                    workers: WorkerCountPolicy::Fixed(workers),
                    ..EngineConfig::default()
                },
                batch_size: 10,
                sampling_rate: 0.2,
            });
            let mut platform =
                SimulatedPlatform::new(pool.clone(), CostModel::default(), 31 + workers as u64);
            let report = app.run(&mut platform, &refs, None).expect("IT run");
            row.push_str(&format!(" {:>9.1}%", report.crowd.accuracy * 100.0));
        }
        println!("{row}");
    }
    println!("\n(*) automatic tagger baseline — the reproduction's substitute for ALIPR");
    println!("Even a single crowd worker beats automatic annotation by a wide margin (Figure 17).");
}
