//! Image tagging end to end: synthetic Flickr-style images with candidate + noise tags,
//! crowdsourced tag selection versus the automatic tagger (the ALIPR stand-in) — the
//! Figure 17 comparison in miniature, run through the fleet facade: one `CrowdSpec`
//! describes the paper-shaped crowd, and each (subject, worker-count) cell is a
//! `JobSpec::tagging` submitted to a `Fleet`.
//!
//! Run with: `cargo run -p cdas --example image_tagging`

use cdas::baselines::image::AutoTagger;
use cdas::prelude::*;
use cdas::workloads::it::FIGURE17_SUBJECTS;

fn main() {
    let mut generator = ImageGenerator::new(ImageGeneratorConfig::default());

    // Train the automatic tagger on a separate image collection.
    let mut training = Vec::new();
    for subject in FIGURE17_SUBJECTS {
        training.extend(generator.generate(subject, 20));
    }
    let mut tagger = AutoTagger::new();
    tagger.train(&training);

    // The evaluation set: 20 images per subject, as in the paper. Questions come from
    // the IT app (per-image candidate-tag domains, gold sampled at 20 %).
    let app = ImageTaggingApp::new(ItConfig::default());
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10}",
        "subject", "ALIPR*", "1 worker", "3 workers", "5 workers"
    );
    for (index, subject) in FIGURE17_SUBJECTS.iter().enumerate() {
        let images = generator.generate(subject, 20);
        let refs: Vec<_> = images.iter().collect();
        let machine = tagger.accuracy(&images);
        let mut row = format!("{subject:<10} {:>7.1}%", machine * 100.0);
        for workers in [1usize, 3, 5] {
            let fleet = Fleet::builder()
                .crowd(CrowdSpec::paper().platform_seed(31 + workers as u64))
                .scheduler_seed(100 * index as u64 + workers as u64)
                .job(
                    JobSpec::tagging(format!("{subject}-x{workers}"), app.build_questions(&refs))
                        .workers(workers)
                        .estimated_domain_size()
                        .batch_size(10),
                )
                .build()
                .expect("a well-formed fleet");
            let run = fleet.run(ExecutionMode::EndOfTime).expect("IT run");
            row.push_str(&format!(" {:>9.1}%", run.report().fleet.accuracy * 100.0));
        }
        println!("{row}");
    }
    println!("\n(*) automatic tagger baseline — the reproduction's substitute for ALIPR");
    println!("A handful of crowd workers beats automatic annotation by a wide margin (Figure 17).");
}
