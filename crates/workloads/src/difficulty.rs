//! Question-difficulty modelling.
//!
//! The paper observes that worker accuracy on *difficult* questions is markedly lower than
//! their average accuracy (the "Avatar: The Last Airbender sucks" example in §5.1.2) and
//! uses that to explain why voting under-performs its prediction. The workload generators
//! therefore tag a configurable fraction of items as *hard*, and the crowd simulator
//! degrades worker accuracy on those items.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of per-item difficulty in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifficultyModel {
    /// Fraction of items that are hard.
    pub hard_fraction: f64,
    /// Difficulty assigned to easy items.
    pub easy_difficulty: f64,
    /// Difficulty assigned to hard items.
    pub hard_difficulty: f64,
}

impl Default for DifficultyModel {
    /// Roughly one in six items is hard (sarcasm, ambiguous phrasing), costing workers
    /// about half of their edge over random guessing on those items.
    fn default() -> Self {
        DifficultyModel {
            hard_fraction: 0.15,
            easy_difficulty: 0.05,
            hard_difficulty: 0.55,
        }
    }
}

impl DifficultyModel {
    /// A model where every item is equally easy.
    pub fn uniform(difficulty: f64) -> Self {
        DifficultyModel {
            hard_fraction: 0.0,
            easy_difficulty: difficulty.clamp(0.0, 1.0),
            hard_difficulty: difficulty.clamp(0.0, 1.0),
        }
    }

    /// Draw a difficulty for one item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.hard_fraction > 0.0 && rng.random_bool(self.hard_fraction.clamp(0.0, 1.0)) {
            self.hard_difficulty
        } else {
            self.easy_difficulty
        }
    }

    /// Expected difficulty over many items.
    pub fn mean(&self) -> f64 {
        self.hard_fraction * self.hard_difficulty
            + (1.0 - self.hard_fraction) * self.easy_difficulty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_model_is_constant() {
        let m = DifficultyModel::uniform(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), 0.3);
        }
        assert!((m.mean() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn hard_fraction_is_respected() {
        let m = DifficultyModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let hard = (0..n)
            .filter(|_| (m.sample(&mut rng) - m.hard_difficulty).abs() < 1e-12)
            .count();
        let frac = hard as f64 / n as f64;
        assert!(
            (frac - m.hard_fraction).abs() < 0.01,
            "hard fraction {frac}"
        );
    }

    #[test]
    fn mean_matches_mixture() {
        let m = DifficultyModel {
            hard_fraction: 0.25,
            easy_difficulty: 0.0,
            hard_difficulty: 0.8,
        };
        assert!((m.mean() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn clamps_out_of_range_difficulty() {
        let m = DifficultyModel::uniform(3.0);
        assert_eq!(m.easy_difficulty, 1.0);
    }
}
