//! The movie catalogue: the 200 query titles of the TSA evaluation (§5.1).
//!
//! The paper uses the 200 most recent movies listed on IMDB and singles out five of them —
//! District 9, The Social Network, Thor, Green Lantern and The Roommate — for the
//! crowdsourcing-versus-LIBSVM comparison of Figure 5. We keep those five verbatim and
//! synthesise the remaining titles deterministically.

use serde::{Deserialize, Serialize};

/// The five movies the paper evaluates individually in Figure 5 (and Figure 17's analogue
/// role in IT is played by tag subjects).
pub const FIGURE5_MOVIES: [&str; 5] = [
    "District 9",
    "The Social Network",
    "Thor",
    "Green Lantern",
    "The Roommate",
];

const ADJECTIVES: [&str; 20] = [
    "Midnight",
    "Crimson",
    "Silent",
    "Golden",
    "Broken",
    "Hidden",
    "Electric",
    "Savage",
    "Frozen",
    "Rising",
    "Falling",
    "Iron",
    "Paper",
    "Neon",
    "Lost",
    "Burning",
    "Distant",
    "Hollow",
    "Velvet",
    "Shattered",
];

const NOUNS: [&str; 20] = [
    "Horizon",
    "Empire",
    "Garden",
    "Protocol",
    "Paradox",
    "Symphony",
    "Harbor",
    "Covenant",
    "Voyage",
    "Kingdom",
    "Mirage",
    "Outpost",
    "Reunion",
    "Labyrinth",
    "Ascension",
    "Verdict",
    "Frontier",
    "Eclipse",
    "Requiem",
    "Crossing",
];

/// A catalogue of movie titles used as TSA queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MovieCatalog {
    titles: Vec<String>,
}

impl MovieCatalog {
    /// The paper's setup: 200 titles, the first five being the Figure 5 movies.
    pub fn paper_default() -> Self {
        Self::with_size(200)
    }

    /// A catalogue of `size` titles (at least the five Figure 5 movies).
    pub fn with_size(size: usize) -> Self {
        let mut titles: Vec<String> = FIGURE5_MOVIES.iter().map(|s| s.to_string()).collect();
        let mut i = 0usize;
        while titles.len() < size.max(FIGURE5_MOVIES.len()) {
            let adj = ADJECTIVES[i % ADJECTIVES.len()];
            let noun = NOUNS[(i / ADJECTIVES.len()) % NOUNS.len()];
            let suffix = i / (ADJECTIVES.len() * NOUNS.len());
            let title = if suffix == 0 {
                format!("{adj} {noun}")
            } else {
                format!("{adj} {noun} {}", suffix + 1)
            };
            if !titles.contains(&title) {
                titles.push(title);
            }
            i += 1;
        }
        titles.truncate(size.max(FIGURE5_MOVIES.len()));
        MovieCatalog { titles }
    }

    /// Number of titles.
    pub fn len(&self) -> usize {
        self.titles.len()
    }

    /// Whether the catalogue is empty (never true for the provided constructors).
    pub fn is_empty(&self) -> bool {
        self.titles.is_empty()
    }

    /// All titles in order.
    pub fn titles(&self) -> &[String] {
        &self.titles
    }

    /// The title at an index.
    pub fn get(&self, idx: usize) -> Option<&str> {
        self.titles.get(idx).map(|s| s.as_str())
    }

    /// The five movies used by Figure 5, as stored in this catalogue.
    pub fn figure5_movies(&self) -> Vec<&str> {
        self.titles
            .iter()
            .filter(|t| FIGURE5_MOVIES.contains(&t.as_str()))
            .map(|s| s.as_str())
            .collect()
    }

    /// Keywords a tweet about the movie would contain (the `S` of the query definition):
    /// the full title plus a squashed no-space variant, mirroring the paper's
    /// `{iPhone4S, iPhone 4S}` example.
    pub fn keywords(title: &str) -> Vec<String> {
        let squashed: String = title.chars().filter(|c| !c.is_whitespace()).collect();
        if squashed == title {
            vec![title.to_string()]
        } else {
            vec![title.to_string(), squashed]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalogue_has_200_unique_titles() {
        let c = MovieCatalog::paper_default();
        assert_eq!(c.len(), 200);
        assert!(!c.is_empty());
        let mut titles = c.titles().to_vec();
        titles.sort();
        titles.dedup();
        assert_eq!(titles.len(), 200, "titles must be unique");
    }

    #[test]
    fn figure5_movies_come_first() {
        let c = MovieCatalog::paper_default();
        for (i, title) in FIGURE5_MOVIES.iter().enumerate() {
            assert_eq!(c.get(i), Some(*title));
        }
        assert_eq!(c.figure5_movies().len(), 5);
    }

    #[test]
    fn small_catalogues_still_contain_figure5() {
        let c = MovieCatalog::with_size(3);
        assert_eq!(c.len(), 5, "never fewer than the Figure 5 movies");
    }

    #[test]
    fn large_catalogues_do_not_repeat() {
        let c = MovieCatalog::with_size(450);
        let mut titles = c.titles().to_vec();
        assert_eq!(titles.len(), 450);
        titles.sort();
        titles.dedup();
        assert_eq!(titles.len(), 450);
    }

    #[test]
    fn keywords_include_squashed_variant() {
        let kw = MovieCatalog::keywords("Green Lantern");
        assert_eq!(
            kw,
            vec!["Green Lantern".to_string(), "GreenLantern".to_string()]
        );
        assert_eq!(MovieCatalog::keywords("Thor"), vec!["Thor".to_string()]);
    }
}
