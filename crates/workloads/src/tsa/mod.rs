//! The Twitter Sentiment Analytics (TSA) workload (§2.2, §5.1).
//!
//! Queries are movie titles; candidate tweets mentioning the title are labelled
//! Positive / Neutral / Negative by the crowd. The synthetic generator produces labelled
//! tweets whose text is assembled from a sentiment lexicon, with a configurable fraction of
//! *hard* tweets (sarcasm: surface words contradicting the true sentiment), timestamps
//! inside the query window, and reason keywords.

pub mod lexicon;
pub mod movies;
pub mod stream;
pub mod tweets;

use cdas_core::types::{AnswerDomain, Label};

pub use movies::MovieCatalog;
pub use stream::TweetStream;
pub use tweets::{Tweet, TweetGenerator, TweetGeneratorConfig};

/// The three sentiment labels of the TSA answer domain.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Sentiment {
    /// The tweet speaks well of the movie.
    Positive,
    /// The tweet is neutral or purely factual.
    Neutral,
    /// The tweet speaks badly of the movie.
    Negative,
}

impl Sentiment {
    /// All sentiments in the order the paper lists them.
    pub const ALL: [Sentiment; 3] = [Sentiment::Positive, Sentiment::Neutral, Sentiment::Negative];

    /// The label string used in observations and domains.
    pub fn label(&self) -> Label {
        match self {
            Sentiment::Positive => Label::from("Positive"),
            Sentiment::Neutral => Label::from("Neutral"),
            Sentiment::Negative => Label::from("Negative"),
        }
    }

    /// Parse a label back into a sentiment.
    pub fn from_label(label: &Label) -> Option<Sentiment> {
        match label.as_str() {
            "Positive" => Some(Sentiment::Positive),
            "Neutral" => Some(Sentiment::Neutral),
            "Negative" => Some(Sentiment::Negative),
            _ => None,
        }
    }
}

/// The TSA answer domain `R = {Positive, Neutral, Negative}`.
pub fn sentiment_domain() -> AnswerDomain {
    AnswerDomain::new(Sentiment::ALL.iter().map(|s| s.label()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_has_three_labels() {
        let d = sentiment_domain();
        assert_eq!(d.size(), 3);
        assert!(d.contains(&Label::from("Positive")));
        assert!(d.contains(&Label::from("Negative")));
    }

    #[test]
    fn sentiment_label_roundtrip() {
        for s in Sentiment::ALL {
            assert_eq!(Sentiment::from_label(&s.label()), Some(s));
        }
        assert_eq!(Sentiment::from_label(&Label::from("meh")), None);
    }
}
