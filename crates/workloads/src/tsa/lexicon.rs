//! The sentiment lexicon used to assemble synthetic tweet text.
//!
//! Phrases are grouped by the sentiment they *express on the surface*. Easy tweets use
//! phrases matching their true sentiment; hard (sarcastic) tweets deliberately mix in
//! phrases of the opposite surface sentiment, which is what defeats bag-of-words machine
//! baselines and trips up low-accuracy workers.

use super::Sentiment;

/// Phrases whose surface sentiment is positive.
pub const POSITIVE_PHRASES: &[&str] = &[
    "absolutely loved it",
    "a masterpiece",
    "best movie of the year",
    "brilliant acting",
    "can't stop thinking about it",
    "go watch it now",
    "gorgeous cinematography",
    "had me smiling the whole time",
    "instant classic",
    "left the cinema happy",
    "phenomenal soundtrack",
    "so much fun",
    "stunning visuals",
    "the plot twist is genius",
    "totally worth the ticket",
    "what a ride",
];

/// Phrases whose surface sentiment is negative.
pub const NEGATIVE_PHRASES: &[&str] = &[
    "a complete mess",
    "boring from start to finish",
    "fell asleep halfway",
    "i want my money back",
    "painfully predictable",
    "sucks",
    "terrible pacing",
    "the dialogue is awful",
    "the worst thing i've seen",
    "two hours i'll never get back",
    "utterly disappointing",
    "what a letdown",
    "wooden performances",
    "save yourself the trouble",
];

/// Phrases whose surface sentiment is neutral / factual.
pub const NEUTRAL_PHRASES: &[&str] = &[
    "just got back from watching",
    "showing at the downtown cinema",
    "the runtime is about two hours",
    "saw the midnight screening of",
    "they announced a sequel to",
    "the director also made",
    "tickets were sold out for",
    "watching this again tonight",
    "trailer just dropped for",
    "is now streaming",
];

/// Keyword reasons associated with each sentiment (what workers cite as justification,
/// mirroring the "Siri, iOS 5" style reasons of Table 1).
pub const POSITIVE_REASONS: &[&str] = &["acting", "visuals", "soundtrack", "plot", "humor"];
/// Reasons cited for negative opinions.
pub const NEGATIVE_REASONS: &[&str] = &["pacing", "dialogue", "length", "ending", "cliches"];
/// Reasons cited for neutral statements.
pub const NEUTRAL_REASONS: &[&str] = &["screening", "trailer", "release", "runtime"];

/// The surface phrase bank for a sentiment.
pub fn phrases(sentiment: Sentiment) -> &'static [&'static str] {
    match sentiment {
        Sentiment::Positive => POSITIVE_PHRASES,
        Sentiment::Neutral => NEUTRAL_PHRASES,
        Sentiment::Negative => NEGATIVE_PHRASES,
    }
}

/// The reason keywords for a sentiment.
pub fn reasons(sentiment: Sentiment) -> &'static [&'static str] {
    match sentiment {
        Sentiment::Positive => POSITIVE_REASONS,
        Sentiment::Neutral => NEUTRAL_REASONS,
        Sentiment::Negative => NEGATIVE_REASONS,
    }
}

/// The sentiment whose surface phrases *contradict* the given one (used for sarcasm).
/// Neutral has no opposite and maps to Negative (deadpan understatement).
pub fn opposite(sentiment: Sentiment) -> Sentiment {
    match sentiment {
        Sentiment::Positive => Sentiment::Negative,
        Sentiment::Negative => Sentiment::Positive,
        Sentiment::Neutral => Sentiment::Negative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phrase_banks_are_nonempty_and_distinct() {
        for s in Sentiment::ALL {
            assert!(!phrases(s).is_empty());
            assert!(!reasons(s).is_empty());
        }
        // No phrase appears in two banks (keeps the surface signal unambiguous).
        for p in POSITIVE_PHRASES {
            assert!(!NEGATIVE_PHRASES.contains(p));
            assert!(!NEUTRAL_PHRASES.contains(p));
        }
        for p in NEGATIVE_PHRASES {
            assert!(!NEUTRAL_PHRASES.contains(p));
        }
    }

    #[test]
    fn opposites_flip_polarity() {
        assert_eq!(opposite(Sentiment::Positive), Sentiment::Negative);
        assert_eq!(opposite(Sentiment::Negative), Sentiment::Positive);
        assert_eq!(opposite(Sentiment::Neutral), Sentiment::Negative);
    }
}
