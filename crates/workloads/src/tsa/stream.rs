//! The tweet stream the program executor consumes (§2.2): timestamped tweets filtered by
//! query keyword and time window.

use serde::{Deserialize, Serialize};

use crate::tsa::tweets::Tweet;

/// A time-ordered stream of tweets.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TweetStream {
    tweets: Vec<Tweet>,
}

impl TweetStream {
    /// Build a stream from tweets (sorted by posting time).
    pub fn new(mut tweets: Vec<Tweet>) -> Self {
        tweets.sort_by(|a, b| {
            a.posted_at
                .partial_cmp(&b.posted_at)
                .unwrap()
                .then_with(|| a.id.cmp(&b.id))
        });
        TweetStream { tweets }
    }

    /// Number of tweets in the stream.
    pub fn len(&self) -> usize {
        self.tweets.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.tweets.is_empty()
    }

    /// All tweets in time order.
    pub fn tweets(&self) -> &[Tweet] {
        &self.tweets
    }

    /// The tweets that mention any of the given keywords (the program executor's filter).
    pub fn filter_keywords<'a>(
        &'a self,
        keywords: &'a [String],
    ) -> impl Iterator<Item = &'a Tweet> {
        self.tweets
            .iter()
            .filter(move |t| keywords.iter().any(|k| t.mentions(k)))
    }

    /// The tweets posted inside `[from, to)` minutes.
    pub fn window(&self, from: f64, to: f64) -> impl Iterator<Item = &Tweet> {
        self.tweets
            .iter()
            .filter(move |t| t.posted_at >= from && t.posted_at < to)
    }

    /// Consume the stream in arrival order, in batches of `batch_size` (how the engine
    /// buffers tweets before building a HIT).
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = &[Tweet]> {
        self.tweets.chunks(batch_size.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsa::tweets::{TweetGenerator, TweetGeneratorConfig};

    fn stream() -> TweetStream {
        let mut g = TweetGenerator::new(TweetGeneratorConfig::default());
        let mut tweets = g.generate("Thor", 30);
        tweets.extend(g.generate("Green Lantern", 20));
        TweetStream::new(tweets)
    }

    #[test]
    fn stream_is_time_ordered() {
        let s = stream();
        assert_eq!(s.len(), 50);
        assert!(!s.is_empty());
        assert!(s
            .tweets()
            .windows(2)
            .all(|w| w[0].posted_at <= w[1].posted_at));
    }

    #[test]
    fn keyword_filter_selects_the_right_movie() {
        let s = stream();
        let thor_kw = vec!["Thor".to_string()];
        let thor: Vec<_> = s.filter_keywords(&thor_kw).collect();
        assert_eq!(thor.len(), 30);
        assert!(thor.iter().all(|t| t.movie == "Thor"));
        let avatar_kw = vec!["Avatar".to_string()];
        let none: Vec<_> = s.filter_keywords(&avatar_kw).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn window_filter_bounds_timestamps() {
        let s = stream();
        let mid: Vec<_> = s.window(100.0, 500.0).collect();
        assert!(mid
            .iter()
            .all(|t| t.posted_at >= 100.0 && t.posted_at < 500.0));
        let all: usize = s.window(0.0, f64::INFINITY).count();
        assert_eq!(all, 50);
    }

    #[test]
    fn batches_cover_the_stream() {
        let s = stream();
        let total: usize = s.batches(7).map(|b| b.len()).sum();
        assert_eq!(total, 50);
        assert!(s.batches(7).all(|b| b.len() <= 7));
        // A zero batch size is clamped rather than panicking.
        assert_eq!(s.batches(0).next().unwrap().len(), 1);
    }
}
