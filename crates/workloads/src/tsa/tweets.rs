//! Synthetic tweet generation with ground-truth sentiment.

use cdas_core::types::{Label, QuestionId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::difficulty::DifficultyModel;
use crate::tsa::{lexicon, Sentiment};

/// One synthetic tweet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tweet {
    /// Question identifier (used when the tweet becomes a crowd question).
    pub id: QuestionId,
    /// The movie the tweet is about.
    pub movie: String,
    /// The tweet text.
    pub text: String,
    /// The true sentiment of the tweet (ground truth).
    pub sentiment: Sentiment,
    /// Difficulty in `[0, 1]`: how much the surface wording obscures the true sentiment.
    pub difficulty: f64,
    /// Minutes since the start of the query window at which the tweet was posted.
    pub posted_at: f64,
    /// Keywords a worker choosing the correct sentiment would plausibly cite as reasons.
    pub reason_keywords: Vec<String>,
}

impl Tweet {
    /// The ground-truth label of the tweet.
    pub fn truth_label(&self) -> Label {
        self.sentiment.label()
    }

    /// Whether the tweet mentions the given keyword (case-insensitive substring), the check
    /// the program executor performs when filtering the stream.
    pub fn mentions(&self, keyword: &str) -> bool {
        self.text.to_lowercase().contains(&keyword.to_lowercase())
    }
}

/// Configuration of the tweet generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TweetGeneratorConfig {
    /// Probability of each sentiment `(positive, neutral, negative)`; normalised on use.
    pub sentiment_mix: (f64, f64, f64),
    /// Difficulty model (hard tweets read like the opposite sentiment).
    pub difficulty: DifficultyModel,
    /// Length of the query window in minutes (timestamps are uniform inside it).
    pub window_minutes: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TweetGeneratorConfig {
    /// Movie chatter skews positive, with the default hard-tweet fraction and a one-day
    /// window (matching the paper's one-day queries).
    fn default() -> Self {
        TweetGeneratorConfig {
            sentiment_mix: (0.45, 0.25, 0.30),
            difficulty: DifficultyModel::default(),
            window_minutes: 24.0 * 60.0,
            seed: 7,
        }
    }
}

/// Deterministic tweet generator.
#[derive(Debug, Clone)]
pub struct TweetGenerator {
    config: TweetGeneratorConfig,
    rng: StdRng,
    next_id: u64,
}

impl TweetGenerator {
    /// Create a generator.
    pub fn new(config: TweetGeneratorConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        TweetGenerator {
            config,
            rng,
            next_id: 0,
        }
    }

    /// Generate `count` tweets about one movie.
    pub fn generate(&mut self, movie: &str, count: usize) -> Vec<Tweet> {
        (0..count).map(|_| self.generate_one(movie)).collect()
    }

    /// Generate one tweet about a movie.
    pub fn generate_one(&mut self, movie: &str) -> Tweet {
        let sentiment = self.sample_sentiment();
        let difficulty = self.config.difficulty.sample(&mut self.rng);
        let text = self.compose_text(movie, sentiment, difficulty);
        let posted_at = self
            .rng
            .random_range(0.0..self.config.window_minutes.max(1e-6));
        let reasons: Vec<String> = lexicon::reasons(sentiment)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let id = QuestionId(self.next_id);
        self.next_id += 1;
        Tweet {
            id,
            movie: movie.to_string(),
            text,
            sentiment,
            difficulty,
            posted_at,
            reason_keywords: reasons,
        }
    }

    fn sample_sentiment(&mut self) -> Sentiment {
        let (p, n, g) = self.config.sentiment_mix;
        let total = (p + n + g).max(f64::MIN_POSITIVE);
        let x = self.rng.random::<f64>() * total;
        if x < p {
            Sentiment::Positive
        } else if x < p + n {
            Sentiment::Neutral
        } else {
            Sentiment::Negative
        }
    }

    /// Compose tweet text: easy tweets use phrases matching the true sentiment; hard tweets
    /// are *sarcastic* — their surface words carry only the opposite polarity (mirroring
    /// the paper's "Avatar: The Last Airbender sucks... I'm disowning him" example), so
    /// bag-of-words classifiers are systematically misled and careless workers err too.
    fn compose_text(&mut self, movie: &str, sentiment: Sentiment, difficulty: f64) -> String {
        let own = lexicon::phrases(sentiment);
        let own_phrase = own[self.rng.random_range(0..own.len())];
        if difficulty >= 0.5 {
            let opp = lexicon::phrases(lexicon::opposite(sentiment));
            let opp_phrase = opp[self.rng.random_range(0..opp.len())];
            format!("my nephew keeps saying \"{movie}\" {opp_phrase}... i'm disowning him")
        } else {
            format!("{movie}: {own_phrase} #movies")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64) -> TweetGenerator {
        TweetGenerator::new(TweetGeneratorConfig {
            seed,
            ..TweetGeneratorConfig::default()
        })
    }

    #[test]
    fn generates_requested_count_with_unique_ids() {
        let mut g = generator(1);
        let tweets = g.generate("Thor", 50);
        assert_eq!(tweets.len(), 50);
        let mut ids: Vec<u64> = tweets.iter().map(|t| t.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50);
        // IDs keep growing across calls.
        let more = g.generate("Thor", 10);
        assert!(more.iter().all(|t| t.id.0 >= 50));
    }

    #[test]
    fn tweets_mention_their_movie_and_stay_in_window() {
        let mut g = generator(2);
        for t in g.generate("Green Lantern", 100) {
            assert!(t.mentions("green lantern"));
            assert!(t.posted_at >= 0.0 && t.posted_at <= 24.0 * 60.0);
            assert!(!t.reason_keywords.is_empty());
            assert_eq!(t.movie, "Green Lantern");
        }
    }

    #[test]
    fn sentiment_mix_is_respected() {
        let mut g = TweetGenerator::new(TweetGeneratorConfig {
            sentiment_mix: (0.7, 0.1, 0.2),
            seed: 3,
            ..TweetGeneratorConfig::default()
        });
        let tweets = g.generate("Thor", 20_000);
        let pos = tweets
            .iter()
            .filter(|t| t.sentiment == Sentiment::Positive)
            .count();
        let neu = tweets
            .iter()
            .filter(|t| t.sentiment == Sentiment::Neutral)
            .count();
        assert!((pos as f64 / 20_000.0 - 0.7).abs() < 0.02);
        assert!((neu as f64 / 20_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn hard_tweets_contain_contradictory_surface_text() {
        let mut g = TweetGenerator::new(TweetGeneratorConfig {
            difficulty: DifficultyModel {
                hard_fraction: 1.0,
                easy_difficulty: 0.0,
                hard_difficulty: 0.8,
            },
            seed: 4,
            ..TweetGeneratorConfig::default()
        });
        let tweet = g.generate_one("Thor");
        assert!(tweet.difficulty >= 0.5);
        assert!(
            tweet.text.contains("disowning"),
            "sarcastic marker missing: {}",
            tweet.text
        );
    }

    #[test]
    fn truth_label_matches_sentiment() {
        let mut g = generator(5);
        let t = g.generate_one("Thor");
        assert_eq!(Sentiment::from_label(&t.truth_label()), Some(t.sentiment));
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<String> = generator(9)
            .generate("Thor", 20)
            .iter()
            .map(|t| t.text.clone())
            .collect();
        let b: Vec<String> = generator(9)
            .generate("Thor", 20)
            .iter()
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(a, b);
    }
}
