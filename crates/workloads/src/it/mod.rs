//! The Image Tagging (IT) workload (§5.2).
//!
//! The paper uses 100 Flickr images grouped by search subject (apple, bride, flying, sun,
//! twilight); for each image the crowd picks the correct tag among candidates that mix the
//! true Flickr tags with injected noise tags. The synthetic generator produces image
//! *descriptors* (a subject, a true tag, distractor tags, a difficulty) with the same
//! observable structure — the pixels themselves are irrelevant to the answering model.

pub mod images;
pub mod tags;

pub use images::{ImageGenerator, ImageGeneratorConfig, SyntheticImage};
pub use tags::TagVocabulary;

/// The five subjects of the paper's Figure 17.
pub const FIGURE17_SUBJECTS: [&str; 5] = ["apple", "bride", "flying", "sun", "twilight"];
