//! Synthetic image descriptors for the IT workload.

use cdas_core::types::{AnswerDomain, Label, QuestionId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::difficulty::DifficultyModel;
use crate::it::tags::TagVocabulary;

/// One synthetic image: a subject, a primary true tag, and the candidate tags shown to
/// workers (true tags plus injected noise tags, shuffled).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticImage {
    /// Question identifier for the crowd task built from this image.
    pub id: QuestionId,
    /// The Flickr-style search subject the image belongs to (e.g. "apple").
    pub subject: String,
    /// The primary correct tag workers are asked to identify.
    pub true_tag: String,
    /// The candidate tags presented to the worker (contains `true_tag`).
    pub candidates: Vec<String>,
    /// Visual difficulty in `[0, 1]` (cluttered or ambiguous images).
    pub difficulty: f64,
    /// A crude "visual feature" vector over the tag vocabulary, used only by the automatic
    /// tagger baseline (ALIPR substitute): noisy affinities between the image and each
    /// candidate tag.
    pub feature_affinity: Vec<(String, f64)>,
}

impl SyntheticImage {
    /// The ground-truth label.
    pub fn truth_label(&self) -> Label {
        Label::from(self.true_tag.as_str())
    }

    /// The answer domain shown to workers.
    pub fn domain(&self) -> AnswerDomain {
        AnswerDomain::new(self.candidates.iter().map(|c| Label::from(c.as_str())))
    }
}

/// Configuration of the image generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageGeneratorConfig {
    /// Number of candidate tags per image (true tag + distractors + noise).
    pub candidates_per_image: usize,
    /// How many of the candidates are pure noise tags.
    pub noise_tags_per_image: usize,
    /// Difficulty model.
    pub difficulty: DifficultyModel,
    /// How well the automatic tagger's features correlate with the truth, in `[0, 1]`;
    /// the paper's ALIPR comparison needs this to be low (≈ 0.2) so the machine baseline
    /// lands in the 10–30 % accuracy band of Figure 17.
    pub feature_quality: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImageGeneratorConfig {
    fn default() -> Self {
        ImageGeneratorConfig {
            candidates_per_image: 8,
            noise_tags_per_image: 3,
            difficulty: DifficultyModel {
                hard_fraction: 0.1,
                easy_difficulty: 0.05,
                hard_difficulty: 0.4,
            },
            feature_quality: 0.2,
            seed: 13,
        }
    }
}

/// Deterministic image-descriptor generator.
#[derive(Debug, Clone)]
pub struct ImageGenerator {
    config: ImageGeneratorConfig,
    rng: StdRng,
    next_id: u64,
}

impl ImageGenerator {
    /// Create a generator.
    pub fn new(config: ImageGeneratorConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        ImageGenerator {
            config,
            rng,
            next_id: 0,
        }
    }

    /// Generate `count` images of one subject.
    pub fn generate(&mut self, subject: &str, count: usize) -> Vec<SyntheticImage> {
        (0..count).map(|_| self.generate_one(subject)).collect()
    }

    /// Generate one image of a subject.
    pub fn generate_one(&mut self, subject: &str) -> SyntheticImage {
        let true_tags = TagVocabulary::true_tags(subject);
        let true_tag = if true_tags.is_empty() {
            subject.to_string()
        } else {
            true_tags[self.rng.random_range(0..true_tags.len())].to_string()
        };

        // Candidates: the true tag, other tags of the same subject (plausible distractors),
        // tags of other subjects, and pure noise tags.
        let mut candidates: Vec<String> = vec![true_tag.clone()];
        for t in true_tags.iter().filter(|t| **t != true_tag).take(2) {
            candidates.push(t.to_string());
        }
        let other_subjects: Vec<&str> = TagVocabulary::subjects()
            .into_iter()
            .filter(|s| *s != subject)
            .collect();
        while candidates.len()
            < self
                .config
                .candidates_per_image
                .saturating_sub(self.config.noise_tags_per_image)
        {
            let s = other_subjects[self.rng.random_range(0..other_subjects.len())];
            let tags = TagVocabulary::true_tags(s);
            let tag = tags[self.rng.random_range(0..tags.len())].to_string();
            if !candidates.contains(&tag) {
                candidates.push(tag);
            }
        }
        let noise = TagVocabulary::noise_tags();
        while candidates.len() < self.config.candidates_per_image {
            let tag = noise[self.rng.random_range(0..noise.len())].to_string();
            if !candidates.contains(&tag) {
                candidates.push(tag);
            }
        }
        candidates.shuffle(&mut self.rng);

        let difficulty = self.config.difficulty.sample(&mut self.rng);
        // Noisy feature affinities: mostly random, with a small bump towards the truth
        // scaled by feature_quality.
        let feature_affinity: Vec<(String, f64)> = candidates
            .iter()
            .map(|c| {
                let base: f64 = self.rng.random::<f64>();
                let bonus = if *c == true_tag {
                    self.config.feature_quality
                } else {
                    0.0
                };
                (
                    c.clone(),
                    (base * (1.0 - self.config.feature_quality) + bonus).clamp(0.0, 1.0),
                )
            })
            .collect();

        let id = QuestionId(self.next_id);
        self.next_id += 1;
        SyntheticImage {
            id,
            subject: subject.to_string(),
            true_tag,
            candidates,
            difficulty,
            feature_affinity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::it::FIGURE17_SUBJECTS;

    fn generator(seed: u64) -> ImageGenerator {
        ImageGenerator::new(ImageGeneratorConfig {
            seed,
            ..ImageGeneratorConfig::default()
        })
    }

    #[test]
    fn candidates_contain_truth_and_requested_count() {
        let mut g = generator(1);
        for subject in FIGURE17_SUBJECTS {
            for img in g.generate(subject, 20) {
                assert_eq!(img.candidates.len(), 8);
                assert!(img.candidates.contains(&img.true_tag));
                assert_eq!(img.subject, subject);
                assert!(TagVocabulary::is_true_tag(subject, &img.true_tag));
                // Domain matches candidates, truth label is in the domain.
                assert_eq!(img.domain().size(), 8);
                assert!(img.domain().contains(&img.truth_label()));
                // Feature affinities cover every candidate.
                assert_eq!(img.feature_affinity.len(), 8);
            }
        }
    }

    #[test]
    fn candidates_include_noise_tags() {
        let mut g = generator(2);
        let img = g.generate_one("sun");
        let noise_count = img
            .candidates
            .iter()
            .filter(|c| TagVocabulary::noise_tags().contains(&c.as_str()))
            .count();
        assert_eq!(noise_count, 3);
    }

    #[test]
    fn ids_are_unique_across_subjects() {
        let mut g = generator(3);
        let mut ids = Vec::new();
        for s in FIGURE17_SUBJECTS {
            ids.extend(g.generate(s, 20).iter().map(|i| i.id.0));
        }
        let total = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total);
    }

    #[test]
    fn unknown_subject_still_produces_an_image() {
        let mut g = generator(4);
        let img = g.generate_one("submarine");
        assert_eq!(img.true_tag, "submarine");
        assert!(img.candidates.contains(&"submarine".to_string()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<String> = generator(9)
            .generate("apple", 10)
            .iter()
            .map(|i| i.true_tag.clone())
            .collect();
        let b: Vec<String> = generator(9)
            .generate("apple", 10)
            .iter()
            .map(|i| i.true_tag.clone())
            .collect();
        assert_eq!(a, b);
    }
}
