//! Tag vocabulary for the image-tagging workload: true tags per subject plus a pool of
//! noise tags injected among the candidates ("the candidate tags include Flickr tags and
//! some embedded noise tags", §5.2).

use serde::{Deserialize, Serialize};

/// Tags that genuinely describe images of each subject.
const SUBJECT_TAGS: &[(&str, &[&str])] = &[
    ("apple", &["apple", "fruit", "orchard", "red", "harvest"]),
    (
        "bride",
        &["bride", "wedding", "dress", "bouquet", "ceremony"],
    ),
    ("flying", &["flying", "bird", "sky", "wings", "airplane"]),
    ("sun", &["sun", "sunset", "sunrise", "sky", "clouds"]),
    (
        "twilight",
        &["twilight", "dusk", "evening", "horizon", "stars"],
    ),
    (
        "mountain",
        &["mountain", "peak", "snow", "hiking", "summit"],
    ),
    ("ocean", &["ocean", "waves", "beach", "surf", "tide"]),
    ("city", &["city", "skyline", "street", "night", "lights"]),
];

/// Noise tags that describe none of the subjects.
const NOISE_TAGS: &[&str] = &[
    "keyboard",
    "spreadsheet",
    "radiator",
    "stapler",
    "parking",
    "invoice",
    "cardboard",
    "tarmac",
    "plumbing",
    "modem",
    "lawnmower",
    "fax",
];

/// The tag vocabulary: true tags per subject and the shared noise pool.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagVocabulary;

impl TagVocabulary {
    /// The subjects with a known tag set.
    pub fn subjects() -> Vec<&'static str> {
        SUBJECT_TAGS.iter().map(|(s, _)| *s).collect()
    }

    /// The true tags for a subject (empty for unknown subjects).
    pub fn true_tags(subject: &str) -> &'static [&'static str] {
        SUBJECT_TAGS
            .iter()
            .find(|(s, _)| *s == subject)
            .map(|(_, tags)| *tags)
            .unwrap_or(&[])
    }

    /// The shared noise-tag pool.
    pub fn noise_tags() -> &'static [&'static str] {
        NOISE_TAGS
    }

    /// Whether a tag is a true tag of the subject.
    pub fn is_true_tag(subject: &str, tag: &str) -> bool {
        Self::true_tags(subject).contains(&tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::it::FIGURE17_SUBJECTS;

    #[test]
    fn all_figure17_subjects_have_tags() {
        for s in FIGURE17_SUBJECTS {
            assert!(!TagVocabulary::true_tags(s).is_empty(), "no tags for {s}");
        }
        assert!(TagVocabulary::subjects().len() >= 5);
    }

    #[test]
    fn noise_tags_never_overlap_true_tags() {
        for subject in TagVocabulary::subjects() {
            for noise in TagVocabulary::noise_tags() {
                assert!(
                    !TagVocabulary::is_true_tag(subject, noise),
                    "{noise} is both noise and a true tag of {subject}"
                );
            }
        }
    }

    #[test]
    fn unknown_subject_has_no_tags() {
        assert!(TagVocabulary::true_tags("submarine").is_empty());
        assert!(!TagVocabulary::is_true_tag("submarine", "apple"));
    }

    #[test]
    fn membership_checks() {
        assert!(TagVocabulary::is_true_tag("apple", "fruit"));
        assert!(!TagVocabulary::is_true_tag("apple", "wedding"));
    }
}
