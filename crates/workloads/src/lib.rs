//! # cdas-workloads — synthetic evaluation workloads for CDAS
//!
//! The paper evaluates CDAS on two applications:
//!
//! * **TSA** (Twitter Sentiment Analytics): one-day tweet streams about 200 recent movies,
//!   manually labelled Positive / Neutral / Negative ([`tsa`]), and
//! * **IT** (Image Tagging): 100 Flickr images with candidate tags that mix the true Flickr
//!   tags with injected noise tags ([`it`]).
//!
//! Real Twitter and Flickr data cannot ship with a reproduction, so this crate generates
//! *synthetic* workloads with the same observable structure: labelled short texts whose
//! difficulty varies (some tweets are hard even for humans — sarcasm, slang), candidate tag
//! sets with plausible distractors, timestamps, keyword reasons, and ground truth for
//! accuracy measurement. Generation is fully deterministic given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod difficulty;
pub mod ground_truth;
pub mod it;
pub mod tsa;

pub use ground_truth::GroundTruthStore;
