//! Ground-truth bookkeeping shared by both workloads.
//!
//! The paper's authors manually labelled every tweet and image to measure "real accuracy";
//! the synthetic generators know the truth by construction and record it here so the
//! experiment harness can score any verification strategy against it.

use std::collections::BTreeMap;

use cdas_core::types::{Label, QuestionId};
use serde::{Deserialize, Serialize};

/// A store mapping questions to their correct answers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthStore {
    truths: BTreeMap<QuestionId, Label>,
}

impl GroundTruthStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the correct answer for a question.
    pub fn insert(&mut self, question: QuestionId, truth: Label) {
        self.truths.insert(question, truth);
    }

    /// The correct answer for a question, if known.
    pub fn get(&self, question: QuestionId) -> Option<&Label> {
        self.truths.get(&question)
    }

    /// Whether an answer is correct for a question (unknown questions count as incorrect).
    pub fn is_correct(&self, question: QuestionId, answer: &Label) -> bool {
        self.get(question).is_some_and(|t| t == answer)
    }

    /// Number of questions with known truth.
    pub fn len(&self) -> usize {
        self.truths.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.truths.is_empty()
    }

    /// Iterate over `(question, truth)` pairs in question order.
    pub fn iter(&self) -> impl Iterator<Item = (&QuestionId, &Label)> {
        self.truths.iter()
    }

    /// Fraction of the given `(question, answer)` pairs that are correct — the "real
    /// accuracy" measure used by every evaluation figure. Returns `None` for an empty
    /// input.
    pub fn accuracy_of<'a>(
        &self,
        answers: impl IntoIterator<Item = (QuestionId, &'a Label)>,
    ) -> Option<f64> {
        let mut total = 0usize;
        let mut correct = 0usize;
        for (q, a) in answers {
            total += 1;
            if self.is_correct(q, a) {
                correct += 1;
            }
        }
        if total == 0 {
            None
        } else {
            Some(correct as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut store = GroundTruthStore::new();
        assert!(store.is_empty());
        store.insert(QuestionId(1), Label::from("pos"));
        store.insert(QuestionId(2), Label::from("neg"));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(QuestionId(1)).unwrap().as_str(), "pos");
        assert!(store.get(QuestionId(3)).is_none());
        assert!(store.is_correct(QuestionId(2), &Label::from("neg")));
        assert!(!store.is_correct(QuestionId(2), &Label::from("pos")));
        assert!(!store.is_correct(QuestionId(99), &Label::from("pos")));
        assert_eq!(store.iter().count(), 2);
    }

    #[test]
    fn accuracy_over_answers() {
        let mut store = GroundTruthStore::new();
        store.insert(QuestionId(1), Label::from("a"));
        store.insert(QuestionId(2), Label::from("b"));
        store.insert(QuestionId(3), Label::from("c"));
        let a = Label::from("a");
        let b = Label::from("b");
        let wrong = Label::from("z");
        let answers = vec![
            (QuestionId(1), &a),
            (QuestionId(2), &b),
            (QuestionId(3), &wrong),
        ];
        assert!((store.accuracy_of(answers).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(store.accuracy_of(Vec::new()), None);
    }
}
