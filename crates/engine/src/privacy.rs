//! The privacy manager (§2.1): adapt question formats so sensitive data is not exposed to
//! the crowd, and reject specific workers from specific tasks.

use cdas_core::types::WorkerId;
use serde::{Deserialize, Serialize};

/// Policy applied to outgoing HIT content and incoming worker assignments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrivacyManager {
    /// Terms that must never appear verbatim in a published question.
    sensitive_terms: Vec<String>,
    /// Workers that must not receive tasks from this requester.
    blocked_workers: Vec<WorkerId>,
    /// The replacement used for redacted terms.
    mask: String,
}

impl PrivacyManager {
    /// A manager with no restrictions.
    pub fn permissive() -> Self {
        PrivacyManager {
            sensitive_terms: Vec::new(),
            blocked_workers: Vec::new(),
            mask: "█".to_string(),
        }
    }

    /// Add a sensitive term to redact from published questions.
    pub fn redact_term(mut self, term: impl Into<String>) -> Self {
        self.sensitive_terms.push(term.into());
        self
    }

    /// Block a worker from receiving tasks.
    pub fn block_worker(mut self, worker: WorkerId) -> Self {
        self.blocked_workers.push(worker);
        self
    }

    /// Change the mask string.
    pub fn with_mask(mut self, mask: impl Into<String>) -> Self {
        self.mask = mask.into();
        self
    }

    /// Redact sensitive terms from a question text (case-insensitive).
    pub fn sanitize(&self, text: &str) -> String {
        let mut out = text.to_string();
        for term in &self.sensitive_terms {
            if term.is_empty() {
                continue;
            }
            let lower_out = out.to_lowercase();
            let lower_term = term.to_lowercase();
            let mut result = String::with_capacity(out.len());
            let mut cursor = 0usize;
            // Checked slicing throughout: lowercasing is not length-preserving
            // for every scalar (e.g. `İ`), so byte offsets found in
            // `lower_out` are not guaranteed to be boundaries of `out`.
            while let Some(pos) = lower_out
                .get(cursor..)
                .and_then(|tail| tail.find(&lower_term))
            {
                let absolute = cursor + pos;
                result.push_str(out.get(cursor..absolute).unwrap_or(""));
                result.push_str(&self.mask);
                cursor = absolute + term.len();
            }
            result.push_str(out.get(cursor..).unwrap_or(""));
            out = result;
        }
        out
    }

    /// Whether a worker may receive tasks.
    pub fn allows_worker(&self, worker: WorkerId) -> bool {
        !self.blocked_workers.contains(&worker)
    }

    /// Number of blocked workers.
    pub fn blocked_count(&self) -> usize {
        self.blocked_workers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissive_manager_changes_nothing() {
        let p = PrivacyManager::permissive();
        assert_eq!(
            p.sanitize("patient John Smith, MRN 12345"),
            "patient John Smith, MRN 12345"
        );
        assert!(p.allows_worker(WorkerId(1)));
        assert_eq!(p.blocked_count(), 0);
    }

    #[test]
    fn sensitive_terms_are_masked_case_insensitively() {
        let p = PrivacyManager::permissive()
            .redact_term("John Smith")
            .with_mask("[REDACTED]");
        let out = p.sanitize("Report for JOHN SMITH: john smith is doing fine.");
        assert!(!out.to_lowercase().contains("john smith"));
        assert_eq!(out.matches("[REDACTED]").count(), 2);
        assert!(out.contains("is doing fine"));
    }

    #[test]
    fn multiple_terms_are_all_masked() {
        let p = PrivacyManager::permissive()
            .redact_term("acme corp")
            .redact_term("project falcon");
        let out = p.sanitize("Acme Corp launches Project Falcon next week");
        assert!(!out.to_lowercase().contains("acme corp"));
        assert!(!out.to_lowercase().contains("project falcon"));
    }

    #[test]
    fn blocked_workers_are_rejected() {
        let p = PrivacyManager::permissive()
            .block_worker(WorkerId(3))
            .block_worker(WorkerId(5));
        assert!(!p.allows_worker(WorkerId(3)));
        assert!(!p.allows_worker(WorkerId(5)));
        assert!(p.allows_worker(WorkerId(4)));
        assert_eq!(p.blocked_count(), 2);
    }

    #[test]
    fn empty_term_is_ignored() {
        let p = PrivacyManager::permissive().redact_term("");
        assert_eq!(p.sanitize("unchanged"), "unchanged");
    }
}
