//! Deterministic question fixtures for examples, benches and tests.
//!
//! These helpers are *not* part of the production pipeline — real questions come from the
//! workload generators (`cdas-workloads`) via the apps' `build_questions` — but nearly
//! every example, bench and doc-test needs a tiny deterministic batch to feed the
//! scheduler, and before this module existed that helper lived inside the production
//! `scheduler` module. It is re-exported at the umbrella crate as `cdas::fixtures`.

use cdas_core::types::{AnswerDomain, Label, QuestionId};
use cdas_crowd::question::CrowdQuestion;

/// Tiny deterministic sentiment batch: `real + gold` three-way questions whose ground
/// truth is always `"Positive"`, the first `gold` of which are gold questions.
pub fn demo_questions(real: u64, gold: u64) -> Vec<CrowdQuestion> {
    (0..gold + real)
        .map(|i| {
            let q = CrowdQuestion::new(
                QuestionId(i),
                AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
                Label::from("Positive"),
            );
            if i < gold {
                q.as_gold()
            } else {
                q
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_questions_flag_the_gold_prefix() {
        let qs = demo_questions(4, 2);
        assert_eq!(qs.len(), 6);
        assert!(qs[..2].iter().all(|q| q.is_gold));
        assert!(qs[2..].iter().all(|q| !q.is_gold));
        assert!(qs.iter().all(|q| q.ground_truth == Label::from("Positive")));
        assert!(qs.iter().all(|q| q.domain.size() == 3));
    }
}
