//! The program executor (§2.1): the computer half of a CDAS job.
//!
//! For TSA it retrieves the tweet stream, keeps the tweets that match the query keywords
//! inside the query window, and buffers them for the crowdsourcing engine; it can also run
//! the machine baseline on the same tweets so the Figure 5 comparison is produced from
//! identical inputs.

use cdas_baselines::text::NaiveBayesClassifier;
use cdas_core::types::Label;
use cdas_workloads::tsa::stream::TweetStream;
use cdas_workloads::tsa::tweets::Tweet;

use crate::query::Query;

/// The program executor for the TSA pipeline.
#[derive(Debug, Clone, Default)]
pub struct ProgramExecutor {
    baseline: Option<NaiveBayesClassifier>,
}

impl ProgramExecutor {
    /// An executor without a machine baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a trained machine baseline so candidate tweets are also auto-classified.
    pub fn with_baseline(mut self, baseline: NaiveBayesClassifier) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Whether a machine baseline is attached.
    pub fn has_baseline(&self) -> bool {
        self.baseline.is_some()
    }

    /// Filter the stream down to the query's candidate tweets: keyword match inside the
    /// time window, in arrival order.
    pub fn candidate_tweets<'a>(&self, stream: &'a TweetStream, query: &Query) -> Vec<&'a Tweet> {
        stream
            .tweets()
            .iter()
            .filter(|t| query.covers(t.posted_at) && query.matches(&t.text))
            .collect()
    }

    /// Run the machine baseline over tweets, returning `(question, predicted label)` pairs.
    /// Returns an empty vector when no baseline is attached.
    pub fn machine_predictions<'a>(
        &self,
        tweets: impl IntoIterator<Item = &'a Tweet>,
    ) -> Vec<(cdas_core::types::QuestionId, Label)> {
        let Some(baseline) = &self.baseline else {
            return Vec::new();
        };
        tweets
            .into_iter()
            .map(|t| (t.id, baseline.classify_label(&t.text)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_core::types::AnswerDomain;
    use cdas_workloads::tsa::tweets::{TweetGenerator, TweetGeneratorConfig};

    fn stream() -> TweetStream {
        let mut g = TweetGenerator::new(TweetGeneratorConfig::default());
        let mut tweets = g.generate("Thor", 40);
        tweets.extend(g.generate("Green Lantern", 30));
        TweetStream::new(tweets)
    }

    fn thor_query(start: f64, window: f64) -> Query {
        Query::new(
            vec!["Thor".to_string()],
            0.9,
            AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
            start,
            window,
        )
    }

    #[test]
    fn candidates_are_filtered_by_keyword_and_window() {
        let executor = ProgramExecutor::new();
        let s = stream();
        let all = executor.candidate_tweets(&s, &thor_query(0.0, 24.0 * 60.0));
        assert_eq!(all.len(), 40);
        assert!(all.iter().all(|t| t.movie == "Thor"));
        let half = executor.candidate_tweets(&s, &thor_query(0.0, 12.0 * 60.0));
        assert!(half.len() < all.len());
        assert!(half.iter().all(|t| t.posted_at < 12.0 * 60.0));
    }

    #[test]
    fn baseline_predictions_cover_every_candidate() {
        let mut g = TweetGenerator::new(TweetGeneratorConfig {
            seed: 11,
            ..TweetGeneratorConfig::default()
        });
        let train = g.generate("Midnight Horizon", 100);
        let mut nb = NaiveBayesClassifier::new();
        nb.train(&train);
        let executor = ProgramExecutor::new().with_baseline(nb);
        assert!(executor.has_baseline());
        let s = stream();
        let candidates = executor.candidate_tweets(&s, &thor_query(0.0, 24.0 * 60.0));
        let predictions = executor.machine_predictions(candidates.iter().copied());
        assert_eq!(predictions.len(), candidates.len());
        for (_, label) in predictions {
            assert!(["Positive", "Neutral", "Negative"].contains(&label.as_str()));
        }
    }

    #[test]
    fn no_baseline_means_no_predictions() {
        let executor = ProgramExecutor::new();
        assert!(!executor.has_baseline());
        let s = stream();
        let candidates = executor.candidate_tweets(&s, &thor_query(0.0, 100.0));
        assert!(executor
            .machine_predictions(candidates.iter().copied())
            .is_empty());
    }
}
