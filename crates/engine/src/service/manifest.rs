//! The service-level durability layer: one *manifest* journal per service directory,
//! written with the same segmented/CRC-framed [`crate::journal::Journal`] machinery a
//! run journal uses, recording the service's configuration, every admission decision,
//! and every epoch boundary. Each epoch's actual run is journaled separately in its
//! own `epoch-NNNN/` run journal; the manifest is the index over them:
//!
//! ```text
//! service-dir/
//! ├── manifest/segment-000000.wal   ServiceOpened · ServiceSubmitted* ·
//! │                                 (ServiceEpochStarted · ServiceEpochCompleted)* ·
//! │                                 ServiceClosed?
//! ├── epoch-000000/segment-*.wal    an ordinary run journal (Fleet::recover territory)
//! └── epoch-000001/segment-*.wal
//! ```
//!
//! [`super::FleetService::recover`] reassembles the service from the manifest alone:
//! submissions journaled but not yet scheduled come back as *journaled-pending*
//! tickets, started epochs are handed to [`crate::fleet::Fleet::recover`], and a torn
//! manifest tail (a submission cut mid-frame by a crash) is dropped exactly like a run
//! journal's.

use std::path::{Path, PathBuf};

use cdas_core::{CdasError, Result};
use cdas_crowd::spec::CrowdSpec;

use crate::fleet::ExecutionMode;
use crate::journal::{JournalConfig, JournalContents, JournalRecord};
use crate::scheduler::{ScheduledJob, SchedulerConfig};

use super::admission::{AdmissionDecision, AdmissionForecast};

/// Everything a [`super::FleetService`] is configured by — journaled as the manifest's
/// head record so [`super::FleetService::recover`] needs nothing but the directory.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// The long-lived crowd the service runs every epoch against.
    pub crowd: CrowdSpec,
    /// Scheduler configuration shared by every epoch.
    pub scheduler: SchedulerConfig,
    /// Service-wide budget in dollars; admission rejects work whose predicted cost
    /// would breach it. `None` = unmetered.
    pub budget: Option<f64>,
    /// Upper bound on the auto-picked per-epoch shard count.
    pub max_shards: usize,
    /// Journal configuration for each epoch's *run* journal (the manifest's own
    /// journal is configured at [`super::FleetService::open`] time). Group commit
    /// ([`crate::journal::SyncPolicy::GroupCommit`]) is the service default: a
    /// resident process amortizes fsyncs across the batch.
    pub run_journal: JournalConfig,
}

impl ServiceConfig {
    /// A service over the given crowd with defaults: no budget cap, up to 4 shards
    /// per epoch, and group-commit run journals (batches of 8, 50 ms delay bound).
    pub fn new(crowd: CrowdSpec) -> Self {
        ServiceConfig {
            crowd,
            scheduler: SchedulerConfig::default(),
            budget: None,
            max_shards: 4,
            run_journal: JournalConfig {
                sync: crate::journal::SyncPolicy::GroupCommit {
                    max_batch: 8,
                    max_delay_ms: 50,
                },
                ..JournalConfig::default()
            },
        }
    }

    /// Cap total service spending.
    pub fn budget(mut self, dollars: f64) -> Self {
        self.budget = Some(dollars);
        self
    }

    /// Bound the auto-picked per-epoch shard count.
    pub fn max_shards(mut self, shards: usize) -> Self {
        self.max_shards = shards.max(1);
        self
    }

    /// Override the scheduler configuration epochs run under.
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Override the epoch run-journal configuration.
    pub fn run_journal(mut self, config: JournalConfig) -> Self {
        self.run_journal = config;
        self
    }
}

/// One journaled admission decision: the resolved job, its service-level deadline,
/// and the verdict + forecast the model produced — enough to rebuild the ticket (and
/// re-run the job) without the submitting process.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSubmission {
    /// The ticket minted for this submission (dense, 0-based).
    pub ticket: u64,
    /// The fully resolved job (lifts back into a [`crate::fleet::JobSpec`] exactly).
    pub job: ScheduledJob,
    /// The submission's deadline in simulated minutes, if any.
    pub deadline_minutes: Option<f64>,
    /// The admission verdict.
    pub decision: AdmissionDecision,
    /// The live-mix forecast the verdict was based on.
    pub forecast: AdmissionForecast,
}

/// One epoch's manifest trace: its ticket list and mode from `ServiceEpochStarted`,
/// and its completion totals once a `ServiceEpochCompleted` landed.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// The epoch's 0-based index (also its `epoch-NNNNNN` directory name).
    pub epoch: u64,
    /// Tickets scheduled into the epoch, in the order they became the epoch fleet's
    /// local [`crate::scheduler::JobId`]s.
    pub tickets: Vec<u64>,
    /// The execution mode the epoch ran under.
    pub mode: ExecutionMode,
    /// `(cost, questions, makespan)` once the epoch completed.
    pub completed: Option<(f64, usize, f64)>,
}

/// The manifest journal's records, assembled into service-replay state.
#[derive(Debug, Clone)]
pub struct ManifestReplay {
    /// The service configuration from the head record.
    pub config: ServiceConfig,
    /// Every journaled submission, in ticket order.
    pub submissions: Vec<ServiceSubmission>,
    /// Every journaled epoch, in start order.
    pub epochs: Vec<EpochRecord>,
    /// The `ServiceClosed` trailer's total cost, if the service shut down cleanly.
    pub closed: Option<f64>,
    /// Whether the manifest's tail was torn (crash signature).
    pub torn_tail: bool,
}

fn diverged(detail: impl Into<String>) -> CdasError {
    CdasError::JournalDiverged {
        detail: detail.into(),
    }
}

impl ManifestReplay {
    /// Assemble a manifest journal's records, validating structure: exactly one head
    /// record, dense ticket numbering, epochs that only reference journaled tickets,
    /// and completions that match a started epoch. Run-journal records inside a
    /// manifest are a divergence (the directories were mixed up).
    pub fn assemble(contents: &JournalContents) -> Result<Self> {
        let mut replay: Option<ManifestReplay> = None;
        for record in &contents.records {
            match record {
                JournalRecord::ServiceOpened(config) => {
                    if replay.is_some() {
                        return Err(diverged("second ServiceOpened record"));
                    }
                    replay = Some(ManifestReplay {
                        config: config.clone(),
                        submissions: Vec::new(),
                        epochs: Vec::new(),
                        closed: None,
                        torn_tail: contents.torn_tail,
                    });
                }
                JournalRecord::ServiceSubmitted(submission) => {
                    let replay = replay
                        .as_mut()
                        .ok_or_else(|| diverged("ServiceSubmitted before ServiceOpened"))?;
                    if submission.ticket != replay.submissions.len() as u64 {
                        return Err(diverged(format!(
                            "submission ticket {} breaks dense numbering at {}",
                            submission.ticket,
                            replay.submissions.len()
                        )));
                    }
                    replay.submissions.push(submission.clone());
                }
                JournalRecord::ServiceEpochStarted {
                    epoch,
                    tickets,
                    mode,
                } => {
                    let replay = replay
                        .as_mut()
                        .ok_or_else(|| diverged("ServiceEpochStarted before ServiceOpened"))?;
                    if *epoch != replay.epochs.len() as u64 {
                        return Err(diverged(format!(
                            "epoch {} breaks dense numbering at {}",
                            epoch,
                            replay.epochs.len()
                        )));
                    }
                    for ticket in tickets {
                        if *ticket >= replay.submissions.len() as u64 {
                            return Err(diverged(format!(
                                "epoch {epoch} schedules unknown ticket {ticket}"
                            )));
                        }
                    }
                    replay.epochs.push(EpochRecord {
                        epoch: *epoch,
                        tickets: tickets.clone(),
                        mode: *mode,
                        completed: None,
                    });
                }
                JournalRecord::ServiceEpochCompleted {
                    epoch,
                    cost,
                    questions,
                    makespan,
                } => {
                    let replay = replay
                        .as_mut()
                        .ok_or_else(|| diverged("ServiceEpochCompleted before ServiceOpened"))?;
                    let record = replay
                        .epochs
                        .iter_mut()
                        .find(|e| e.epoch == *epoch)
                        .ok_or_else(|| diverged(format!("completion for unknown epoch {epoch}")))?;
                    if record.completed.is_some() {
                        return Err(diverged(format!("duplicate completion for epoch {epoch}")));
                    }
                    record.completed = Some((*cost, *questions, *makespan));
                }
                JournalRecord::ServiceClosed { total_cost } => {
                    let replay = replay
                        .as_mut()
                        .ok_or_else(|| diverged("ServiceClosed before ServiceOpened"))?;
                    replay.closed = Some(*total_cost);
                }
                other => {
                    return Err(diverged(format!(
                        "run-journal record {other:?} inside a service manifest"
                    )));
                }
            }
        }
        replay.ok_or(CdasError::JournalEmpty)
    }
}

/// The manifest journal's directory under a service directory.
pub fn manifest_dir(service_dir: &Path) -> PathBuf {
    service_dir.join("manifest")
}

/// Epoch `index`'s run-journal directory under a service directory.
pub fn epoch_dir(service_dir: &Path, epoch: u64) -> PathBuf {
    service_dir.join(format!("epoch-{epoch:06}"))
}
