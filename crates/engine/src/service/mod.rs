//! The resident service layer: a [`FleetService`] that stays up across many jobs.
//!
//! A [`crate::fleet::Fleet`] is batch-shaped: submit, run, read the report, drop.
//! CDAS as the paper pitches it is a *service* — analysts hand jobs to a long-lived
//! system that is already running other people's jobs against the same crowd. This
//! module adds that resident layer without duplicating the engine room underneath:
//!
//! * **Admission control** ([`admission`]): every [`submit`](FleetService::submit) is
//!   forecast by a white-box [`AdmissionModel`] (workers per HIT, batches, dollars,
//!   makespan under the *live mix*) and answered with an [`AdmissionDecision`] —
//!   `Accept` into the next epoch, `Queue` until capacity frees, or `Reject` when no
//!   idle crowd could serve the job, its deadline is unmeetable, or the service
//!   budget would be breached. The decision and its forecast ride back on the
//!   [`JobTicket`]'s event stream.
//! * **Service-level durability** ([`manifest`]): the service journals its
//!   configuration, every admission decision, and every epoch boundary into a
//!   *manifest* journal (same segmented CRC framing as a run journal), while each
//!   epoch's actual run is write-ahead journaled by the fleet exactly as before.
//!   [`FleetService::recover`] rebuilds a killed service from its directory alone:
//!   finished epochs are recovered without re-paying journaled work, a half-run
//!   epoch is resumed through [`crate::fleet::Fleet::recover`], and submissions that
//!   never reached an epoch come back as *journaled-pending* tickets.
//! * **Group commit** ([`crate::journal::SyncPolicy::GroupCommit`]): a resident
//!   process lives long enough to amortize fsyncs, so epoch run journals default to
//!   group commit — batches of commit-class records share one fsync, bounded by a
//!   delay so durability lag never exceeds `max_delay_ms`.
//!
//! Work arrives over time, so execution is **epoch-based**: accepted jobs pool up,
//! [`run_epoch`](FleetService::run_epoch) drains them into one fleet run (shard
//! count auto-picked from the epoch's job mix), and queued jobs are re-evaluated —
//! and promoted — as capacity frees. [`shutdown`](FleetService::shutdown) drains
//! every remaining epoch and seals the manifest.
//!
//! ```
//! use cdas_crowd::spec::CrowdSpec;
//! use cdas_engine::fixtures::demo_questions;
//! use cdas_engine::fleet::JobSpec;
//! use cdas_engine::service::{FleetService, ServiceConfig};
//!
//! let dir = std::env::temp_dir().join("cdas-service-doc");
//! let config = ServiceConfig::new(CrowdSpec::clean(16, 0.85).seed(7));
//! let mut service = FleetService::open(&dir, config).unwrap();
//! let ticket = service
//!     .submit(JobSpec::sentiment("doc", demo_questions(8, 2)).workers(5).domain_size(3))
//!     .unwrap();
//! let report = service.shutdown().unwrap();
//! assert_eq!(report.submitted, 1);
//! assert!(report.events.iter().any(|e| e.concerns(ticket)));
//! ```

pub mod admission;
pub mod manifest;

use std::collections::BTreeMap;
use std::path::PathBuf;

use cdas_core::{CdasError, Result};

use crate::fleet::{ExecutionMode, Fleet, FleetEvent, FleetFailpoints, JobSpec};
use crate::journal::{Journal, JournalConfig, JournalRecord, RecoveryReport};
use crate::metrics::FleetReport;

pub use admission::{AdmissionDecision, AdmissionForecast, AdmissionModel};
pub use manifest::{ManifestReplay, ServiceConfig, ServiceSubmission};

use manifest::{epoch_dir, manifest_dir};

/// A handle to one submitted job, minted by [`FleetService::submit`]. Tickets are
/// dense (`0, 1, 2, …` in submission order) and stable across crash recovery — the
/// manifest journals the submission before the ticket is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[must_use = "a JobTicket is the only handle to the submitted job's events and outcome; dropping it orphans the submission"]
pub struct JobTicket(pub u64);

impl JobTicket {
    /// The ticket's dense submission index.
    pub fn index(&self) -> u64 {
        self.0
    }
}

/// Why [`FleetService::submit`] did not return a usable ticket.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejected {
    /// Admission control said no. The submission *was* journaled (with its verdict),
    /// so recovery and the event stream still account for it.
    Policy {
        /// The ticket the rejected submission was journaled under.
        ticket: JobTicket,
        /// The human-readable reason the policy gave.
        reason: &'static str,
        /// The live-mix forecast the verdict was based on.
        forecast: AdmissionForecast,
    },
    /// The job never reached the policy: it is malformed (empty question list,
    /// zero batch size, unservable worker policy) or the manifest append failed.
    Invalid(CdasError),
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Policy { ticket, reason, .. } => {
                write!(f, "submission {} rejected: {reason}", ticket.0)
            }
            Rejected::Invalid(e) => write!(f, "submission invalid: {e}"),
        }
    }
}

impl std::error::Error for Rejected {}

/// One entry of the service's event stream, in emission order. Fleet-level events
/// from epoch runs are wrapped as [`ServiceEvent::Job`] with the owning ticket, so a
/// subscriber never has to map epoch-local [`crate::scheduler::JobId`]s itself.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceEvent {
    /// A job was submitted and judged by admission control.
    Submitted {
        /// The minted ticket.
        ticket: JobTicket,
        /// The job's name.
        name: String,
        /// The admission verdict.
        decision: AdmissionDecision,
        /// The live-mix forecast behind the verdict.
        forecast: AdmissionForecast,
    },
    /// A queued ticket was promoted into an epoch after capacity freed.
    Promoted {
        /// The promoted ticket.
        ticket: JobTicket,
        /// The epoch the ticket joins.
        epoch: u64,
    },
    /// An epoch began executing the listed tickets.
    EpochStarted {
        /// The epoch's dense index.
        epoch: u64,
        /// Tickets scheduled into the epoch, in epoch-local [`crate::scheduler::JobId`] order.
        tickets: Vec<JobTicket>,
        /// The execution mode the auto-picker chose.
        mode: ExecutionMode,
    },
    /// A fleet event from an epoch run, attributed to its owning ticket.
    Job {
        /// The owning ticket.
        ticket: JobTicket,
        /// The epoch the event happened in.
        epoch: u64,
        /// The underlying fleet event.
        event: FleetEvent,
    },
    /// An epoch ran to completion.
    EpochCompleted {
        /// The epoch's dense index.
        epoch: u64,
        /// The tickets the epoch served.
        tickets: Vec<JobTicket>,
        /// Dollars the epoch cost.
        cost: f64,
        /// Real questions the epoch resolved.
        questions: usize,
        /// The epoch's simulated-minutes makespan.
        makespan: f64,
    },
}

impl ServiceEvent {
    /// Whether this event concerns the given ticket (its submission, promotion, an
    /// epoch it ran in, or one of its own fleet events).
    pub fn concerns(&self, ticket: JobTicket) -> bool {
        match self {
            ServiceEvent::Submitted { ticket: t, .. }
            | ServiceEvent::Promoted { ticket: t, .. }
            | ServiceEvent::Job { ticket: t, .. } => *t == ticket,
            ServiceEvent::EpochStarted { tickets, .. }
            | ServiceEvent::EpochCompleted { tickets, .. } => tickets.contains(&ticket),
        }
    }
}

/// What one [`FleetService::run_epoch`] call executed.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSummary {
    /// The epoch's dense index.
    pub epoch: u64,
    /// The tickets the epoch served.
    pub tickets: Vec<JobTicket>,
    /// The execution mode the auto-picker chose.
    pub mode: ExecutionMode,
    /// Dollars the epoch cost.
    pub cost: f64,
    /// Real questions the epoch resolved.
    pub questions: usize,
    /// The epoch's simulated-minutes makespan.
    pub makespan: f64,
}

/// The final accounting a [`FleetService::shutdown`] returns.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// One [`FleetReport`] per completed epoch, in epoch order.
    pub epochs: Vec<FleetReport>,
    /// The full service event stream, in emission order.
    pub events: Vec<ServiceEvent>,
    /// Total submissions (accepted, queued and rejected alike).
    pub submitted: usize,
    /// Submissions admission control rejected.
    pub rejected: usize,
    /// Tickets that were still queued when the service shut down (their budget or
    /// deadline constraints never cleared).
    pub unserved: Vec<JobTicket>,
    /// Dollars spent across every epoch.
    pub total_cost: f64,
}

impl ServiceReport {
    /// The report with host-wall-clock noise normalized away — compare two service
    /// lifetimes (e.g. crashed-and-recovered vs. never-crashed) through this.
    pub fn ignoring_wall_clock(&self) -> ServiceReport {
        let mut copy = self.clone();
        copy.epochs = copy
            .epochs
            .iter()
            .map(FleetReport::ignoring_wall_clock)
            .collect();
        copy
    }
}

/// What [`FleetService::recover`] found in the service directory.
#[derive(Debug, Clone)]
#[must_use = "a ServiceRecovery says which tickets are still pending and how much journaled work was reused; dropping it discards that accounting"]
pub struct ServiceRecovery {
    /// The manifest held a `ServiceClosed` trailer (the service shut down cleanly).
    pub was_closed: bool,
    /// The manifest's tail was torn (the crash hit a manifest append mid-frame).
    pub torn_tail: bool,
    /// Tickets journaled as admitted or queued but not yet served by any epoch —
    /// the next [`run_epoch`](FleetService::run_epoch) picks them up.
    pub pending: Vec<JobTicket>,
    /// Per journaled epoch: the run-journal [`RecoveryReport`], or `None` when the
    /// crash predates the epoch's run journal and the epoch was re-run from scratch.
    pub epoch_recoveries: Vec<Option<RecoveryReport>>,
}

/// Where a ticket currently stands inside the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TicketStatus {
    /// Accepted; will join the next epoch.
    Admitted,
    /// Waiting for capacity or budget headroom.
    Queued,
    /// Rejected by admission control; terminal.
    Rejected,
    /// Running (or crashed mid-run) in the given epoch.
    Scheduled(u64),
    /// Served by the given epoch; terminal.
    Completed(u64),
}

/// The resident service. See the [module docs](self) for the tour.
pub struct FleetService {
    dir: PathBuf,
    config: ServiceConfig,
    manifest: Journal,
    model: AdmissionModel,
    submissions: Vec<ServiceSubmission>,
    statuses: Vec<TicketStatus>,
    events: Vec<ServiceEvent>,
    cursors: BTreeMap<u64, usize>,
    epoch_reports: Vec<FleetReport>,
    spent: f64,
}

impl FleetService {
    /// Open a **fresh** service in `dir`: creates the manifest journal (wiping any
    /// previous service's manifest segments — one directory holds one service
    /// lifetime) and journals the configuration as the head record. To resume an
    /// existing service directory after a crash, use [`recover`](Self::recover).
    pub fn open(dir: impl Into<PathBuf>, config: ServiceConfig) -> Result<Self> {
        let dir = dir.into();
        if config.crowd.worker_count() == 0 {
            return Err(CdasError::EmptyFleet);
        }
        let mut manifest = Journal::create(manifest_dir(&dir), JournalConfig::default())?;
        manifest.append(&JournalRecord::ServiceOpened(config.clone()))?;
        let model = AdmissionModel::new(&config.crowd);
        Ok(FleetService {
            dir,
            config,
            manifest,
            model,
            submissions: Vec::new(),
            statuses: Vec::new(),
            events: Vec::new(),
            cursors: BTreeMap::new(),
            epoch_reports: Vec::new(),
            spent: 0.0,
        })
    }

    /// The configuration the service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Dollars spent across completed epochs so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Completed epochs so far.
    pub fn epochs_completed(&self) -> usize {
        self.epoch_reports.len()
    }

    /// Tickets journaled but not yet served or rejected (admitted or queued), in
    /// ticket order.
    #[must_use]
    pub fn pending(&self) -> Vec<JobTicket> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, TicketStatus::Admitted | TicketStatus::Queued))
            .map(|(t, _)| JobTicket(t as u64))
            .collect()
    }

    /// The full event stream emitted so far, in emission order.
    pub fn events(&self) -> &[ServiceEvent] {
        &self.events
    }

    /// Workers the currently admitted (not yet run) jobs are predicted to hold —
    /// the "live mix" reservation new forecasts are taken against.
    fn reserved_workers(&self) -> usize {
        self.statuses
            .iter()
            .zip(&self.submissions)
            .filter(|(s, _)| **s == TicketStatus::Admitted)
            .map(|(_, sub)| sub.forecast.workers_per_hit)
            .sum()
    }

    /// Dollars the currently admitted jobs are predicted to cost — already spoken
    /// for when checking a new submission against the budget.
    fn committed_cost(&self) -> f64 {
        self.statuses
            .iter()
            .zip(&self.submissions)
            .filter(|(s, _)| **s == TicketStatus::Admitted)
            .map(|(_, sub)| sub.forecast.cost)
            .sum()
    }

    fn budget_remaining(&self) -> Option<f64> {
        self.config
            .budget
            .map(|budget| budget - self.spent - self.committed_cost())
    }

    /// Submit a job. The submission is resolved and forecast *now*, journaled with
    /// its verdict (append-before-mutate: the manifest record lands before any state
    /// changes), and the verdict streams back as [`ServiceEvent::Submitted`]. A
    /// policy rejection still mints (and journals) a ticket — [`Rejected::Policy`]
    /// carries it — so the accounting survives recovery.
    pub fn submit(&mut self, spec: JobSpec) -> std::result::Result<JobTicket, Rejected> {
        let scheduled = spec.resolve_default().map_err(Rejected::Invalid)?;
        let deadline = spec.deadline();
        let idle = self
            .model
            .forecast(&scheduled, 0)
            .map_err(Rejected::Invalid)?;
        let mix = self
            .model
            .forecast(&scheduled, self.reserved_workers())
            .map_err(Rejected::Invalid)?;
        let (decision, reason) = admission::decide(&idle, &mix, deadline, self.budget_remaining());
        let ticket = self.submissions.len() as u64;
        let submission = ServiceSubmission {
            ticket,
            job: scheduled,
            deadline_minutes: deadline,
            decision,
            forecast: mix,
        };
        self.manifest
            .append(&JournalRecord::ServiceSubmitted(submission.clone()))
            .map_err(Rejected::Invalid)?;
        self.apply_submission(submission);
        match decision {
            AdmissionDecision::Reject => Err(Rejected::Policy {
                ticket: JobTicket(ticket),
                reason,
                forecast: mix,
            }),
            _ => Ok(JobTicket(ticket)),
        }
    }

    /// Fold one (journaled) submission into service state — shared by the live
    /// [`submit`](Self::submit) path and manifest replay, so both produce the same
    /// state and the same [`ServiceEvent::Submitted`].
    fn apply_submission(&mut self, submission: ServiceSubmission) {
        let status = match submission.decision {
            AdmissionDecision::Accept => TicketStatus::Admitted,
            AdmissionDecision::Queue => TicketStatus::Queued,
            AdmissionDecision::Reject => TicketStatus::Rejected,
        };
        self.events.push(ServiceEvent::Submitted {
            ticket: JobTicket(submission.ticket),
            name: submission.job.job.name.clone(),
            decision: submission.decision,
            forecast: submission.forecast,
        });
        self.statuses.push(status);
        self.submissions.push(submission);
    }

    /// Re-evaluate queued tickets against the current mix and promote the ones that
    /// now fit. Runs at the top of every epoch; promotions are deterministic (model
    /// state and reservations are pure functions of the journaled history), so they
    /// are *not* journaled — the epoch's ticket list captures them.
    fn promote_queued(&mut self) -> Result<()> {
        let epoch = self.epoch_reports.len() as u64;
        let queued: Vec<usize> = self
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TicketStatus::Queued)
            .map(|(t, _)| t)
            .collect();
        for t in queued {
            let Some(submission) = self.submissions.get(t) else {
                continue;
            };
            let job = submission.job.clone();
            let deadline = submission.deadline_minutes;
            let idle = self.model.forecast(&job, 0)?;
            let mix = self.model.forecast(&job, self.reserved_workers())?;
            let (decision, _) = admission::decide(&idle, &mix, deadline, self.budget_remaining());
            if decision == AdmissionDecision::Accept {
                if let Some(status) = self.statuses.get_mut(t) {
                    *status = TicketStatus::Admitted;
                }
                self.events.push(ServiceEvent::Promoted {
                    ticket: JobTicket(t as u64),
                    epoch,
                });
            }
        }
        Ok(())
    }

    /// Auto-pick the epoch's shard count: the widest count `1 ..= max_shards`
    /// (bounded by the job and worker counts) under which every job still fits the
    /// shard the fleet's striping would put it on. One shard always fits — admission
    /// rejected anything an idle crowd cannot hold.
    fn pick_shards(&self, tickets: &[u64]) -> usize {
        let workers = self.config.crowd.worker_count();
        let cap = self
            .config
            .max_shards
            .min(tickets.len())
            .min(workers)
            .max(1);
        (2..=cap)
            .rev()
            .find(|&shards| {
                tickets.iter().enumerate().all(|(i, &t)| {
                    // An unknown ticket fits nowhere, so the fold stays at 1 shard.
                    let needed = self
                        .submissions
                        .get(t as usize)
                        .map_or(usize::MAX, |s| s.forecast.workers_per_hit);
                    let shard = i % shards;
                    let roster = workers / shards + usize::from(shard < workers % shards);
                    needed <= roster
                })
            })
            .unwrap_or(1)
    }

    /// Build the fleet one epoch runs: the service crowd and scheduler config, the
    /// epoch's jobs in ticket order, and a write-ahead run journal in the epoch's
    /// own directory.
    fn build_epoch_fleet(&self, tickets: &[u64], shards: usize, epoch: u64) -> Result<Fleet> {
        let mut builder = Fleet::builder()
            .crowd(self.config.crowd.clone())
            .policy(self.config.scheduler.policy)
            .scheduler_seed(self.config.scheduler.seed)
            .max_ticks(self.config.scheduler.max_ticks)
            .arrival_discovery(self.config.scheduler.discovery)
            .shards(shards)
            .journal(epoch_dir(&self.dir, epoch))
            .journal_config(self.config.run_journal.clone());
        for &t in tickets {
            if let Some(submission) = self.submissions.get(t as usize) {
                builder = builder.job(JobSpec::from(submission.job.clone()));
            }
        }
        builder.build()
    }

    /// Drain every admitted job (promoting newly-fitting queued ones first) into one
    /// epoch and run it. Returns `None` — and runs nothing — when no job is ready.
    ///
    /// The epoch boundary is journaled around the run: `ServiceEpochStarted` lands
    /// *before* the fleet is built (so a crash mid-epoch is recoverable) and
    /// `ServiceEpochCompleted` after it, closing the epoch's accounting.
    pub fn run_epoch(&mut self) -> Result<Option<EpochSummary>> {
        self.run_epoch_with_failpoints(FleetFailpoints::none())
    }

    /// [`run_epoch`](Self::run_epoch) with fault injection on the epoch's platform
    /// ([`FleetFailpoints`]): the service-level arm of the kill -9 drill. An armed
    /// failpoint panics mid-epoch, *after* `ServiceEpochStarted` was journaled —
    /// exactly the wreckage [`recover`](Self::recover) is specified against.
    pub fn run_epoch_with_failpoints(
        &mut self,
        failpoints: FleetFailpoints,
    ) -> Result<Option<EpochSummary>> {
        self.promote_queued()?;
        let tickets: Vec<u64> = self
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TicketStatus::Admitted)
            .map(|(t, _)| t as u64)
            .collect();
        if tickets.is_empty() {
            return Ok(None);
        }
        let epoch = self.epoch_reports.len() as u64;
        let shards = self.pick_shards(&tickets);
        let mode = if shards == 1 {
            ExecutionMode::Clocked
        } else {
            ExecutionMode::Parallel { shards }
        };
        self.manifest.append(&JournalRecord::ServiceEpochStarted {
            epoch,
            tickets: tickets.clone(),
            mode,
        })?;
        self.begin_epoch(epoch, &tickets, mode);
        let run = self
            .build_epoch_fleet(&tickets, shards, epoch)?
            .run_with_failpoints(mode, failpoints)?;
        let report = run.report().clone();
        let events = run.events().to_vec();
        self.finish_epoch(epoch, &tickets, report, &events, true)
            .map(Some)
    }

    /// Mark the epoch's tickets scheduled and emit its `EpochStarted` event — shared
    /// by the live path and recovery so the event stream comes out identical.
    fn begin_epoch(&mut self, epoch: u64, tickets: &[u64], mode: ExecutionMode) {
        for &t in tickets {
            if let Some(status) = self.statuses.get_mut(t as usize) {
                *status = TicketStatus::Scheduled(epoch);
            }
        }
        self.events.push(ServiceEvent::EpochStarted {
            epoch,
            tickets: tickets.iter().map(|&t| JobTicket(t)).collect(),
            mode,
        });
    }

    /// Fold a finished epoch run into service state: wrap its fleet events with
    /// their owning tickets, journal the completion (unless the manifest already
    /// holds it, during recovery), calibrate the admission model, and account the
    /// spend. Shared by the live path and recovery.
    fn finish_epoch(
        &mut self,
        epoch: u64,
        tickets: &[u64],
        report: FleetReport,
        run_events: &[FleetEvent],
        append_completion: bool,
    ) -> Result<EpochSummary> {
        for event in run_events {
            let local = event.job().0;
            let ticket = tickets
                .get(local)
                .copied()
                .ok_or_else(|| CdasError::JournalDiverged {
                    detail: format!(
                        "epoch {epoch} produced an event for unknown local job {local}"
                    ),
                })?;
            self.events.push(ServiceEvent::Job {
                ticket: JobTicket(ticket),
                epoch,
                event: event.clone(),
            });
        }
        if append_completion {
            self.manifest
                .append(&JournalRecord::ServiceEpochCompleted {
                    epoch,
                    cost: report.fleet.cost,
                    questions: report.fleet.questions,
                    makespan: report.makespan,
                })?;
        }
        self.events.push(ServiceEvent::EpochCompleted {
            epoch,
            tickets: tickets.iter().map(|&t| JobTicket(t)).collect(),
            cost: report.fleet.cost,
            questions: report.fleet.questions,
            makespan: report.makespan,
        });
        for &t in tickets {
            if let Some(status) = self.statuses.get_mut(t as usize) {
                *status = TicketStatus::Completed(epoch);
            }
        }
        self.model.observe_epoch(&report);
        self.spent += report.fleet.cost;
        let summary = EpochSummary {
            epoch,
            tickets: tickets.iter().map(|&t| JobTicket(t)).collect(),
            mode: match report.shards.len() {
                0 | 1 => ExecutionMode::Clocked,
                shards => ExecutionMode::Parallel { shards },
            },
            cost: report.fleet.cost,
            questions: report.fleet.questions,
            makespan: report.makespan,
        };
        self.epoch_reports.push(report);
        Ok(summary)
    }

    /// Drain the events concerning `ticket` that arrived since the last `poll` for
    /// it. Each ticket has its own cursor, so interleaved polls for different
    /// tickets never steal each other's events.
    pub fn poll(&mut self, ticket: JobTicket) -> Vec<ServiceEvent> {
        let cursor = self.cursors.entry(ticket.0).or_insert(0);
        let mut out = Vec::new();
        while let Some(event) = self.events.get(*cursor) {
            *cursor += 1;
            if event.concerns(ticket) {
                out.push(event.clone());
            }
        }
        out
    }

    /// Every event concerning `ticket` from the beginning of the stream —
    /// cursor-free, so it never interferes with [`poll`](Self::poll).
    pub fn subscribe(&self, ticket: JobTicket) -> impl Iterator<Item = &ServiceEvent> + '_ {
        self.events.iter().filter(move |e| e.concerns(ticket))
    }

    /// Run every remaining epoch (promoting queued work as capacity frees), seal
    /// the manifest with `ServiceClosed`, and return the lifetime's accounting.
    /// Tickets whose constraints never cleared are reported as `unserved`.
    pub fn shutdown(mut self) -> Result<ServiceReport> {
        while self.run_epoch()?.is_some() {}
        self.manifest.append(&JournalRecord::ServiceClosed {
            total_cost: self.spent,
        })?;
        self.manifest.sync()?;
        let rejected = self
            .statuses
            .iter()
            .filter(|s| **s == TicketStatus::Rejected)
            .count();
        let unserved = self.pending();
        Ok(ServiceReport {
            epochs: self.epoch_reports,
            events: self.events,
            submitted: self.submissions.len(),
            rejected,
            unserved,
            total_cost: self.spent,
        })
    }

    /// Rebuild a killed (or cleanly closed) service from its directory alone.
    ///
    /// The manifest is replayed in journal order, so the rebuilt event stream is
    /// identical to the one the live service emitted: journaled submissions are
    /// folded back with their *journaled* verdicts and forecasts (never re-derived),
    /// and each journaled epoch is recovered through
    /// [`Fleet::recover`] — journaled work is reused, not re-paid; a half-run epoch
    /// is resumed to completion; an epoch whose run journal never got its head
    /// record (the crash landed between `ServiceEpochStarted` and the fleet's
    /// `RunStarted`) is re-run from scratch, which is safe because nothing of it was
    /// ever dispatched or paid. Submissions that reached no epoch come back as
    /// [`ServiceRecovery::pending`] and the returned service is live: keep
    /// submitting, keep running epochs, then [`shutdown`](Self::shutdown).
    pub fn recover(dir: impl Into<PathBuf>) -> Result<(Self, ServiceRecovery)> {
        let dir = dir.into();
        let (manifest, contents) =
            Journal::open_append(manifest_dir(&dir), JournalConfig::default())?;
        let replay = ManifestReplay::assemble(&contents)?;
        let mut service = FleetService {
            dir,
            model: AdmissionModel::new(&replay.config.crowd),
            config: replay.config.clone(),
            manifest,
            submissions: Vec::new(),
            statuses: Vec::new(),
            events: Vec::new(),
            cursors: BTreeMap::new(),
            epoch_reports: Vec::new(),
            spent: 0.0,
        };
        let mut epoch_recoveries = Vec::new();
        for record in &contents.records {
            match record {
                JournalRecord::ServiceSubmitted(submission) => {
                    service.apply_submission(submission.clone());
                }
                JournalRecord::ServiceEpochStarted {
                    epoch,
                    tickets,
                    mode,
                } => {
                    // Queued tickets entering this epoch were promoted by the live
                    // service just before it journaled the start — re-emit that.
                    for &t in tickets {
                        if service.statuses.get(t as usize) == Some(&TicketStatus::Queued) {
                            service.events.push(ServiceEvent::Promoted {
                                ticket: JobTicket(t),
                                epoch: *epoch,
                            });
                        }
                    }
                    service.begin_epoch(*epoch, tickets, *mode);
                    let journaled_completion =
                        replay.epochs.get(*epoch as usize).and_then(|e| e.completed);
                    let recovery =
                        service.recover_epoch(*epoch, tickets, *mode, journaled_completion)?;
                    epoch_recoveries.push(recovery);
                }
                // Completions were folded in alongside their epoch; the head and
                // trailer carry no replayable state beyond what `replay` holds.
                _ => {}
            }
        }
        let recovery = ServiceRecovery {
            was_closed: replay.closed.is_some(),
            torn_tail: replay.torn_tail,
            pending: service.pending(),
            epoch_recoveries,
        };
        Ok((service, recovery))
    }

    /// Recover one journaled epoch: resume its run journal if it has one, re-run it
    /// from scratch if the crash predates the journal's head record, and cross-check
    /// the result against the manifest's completion record if one landed.
    fn recover_epoch(
        &mut self,
        epoch: u64,
        tickets: &[u64],
        mode: ExecutionMode,
        journaled_completion: Option<(f64, usize, f64)>,
    ) -> Result<Option<RecoveryReport>> {
        let dir = epoch_dir(&self.dir, epoch);
        let (run, run_recovery) =
            match Fleet::recover_with_config(&dir, self.config.run_journal.clone()) {
                Ok((run, recovery)) => (run, Some(recovery)),
                Err(CdasError::JournalEmpty) | Err(CdasError::JournalIo { .. }) => {
                    let shards = match mode {
                        ExecutionMode::Parallel { shards } => shards,
                        _ => 1,
                    };
                    let fleet = self.build_epoch_fleet(tickets, shards, epoch)?;
                    (fleet.run(mode)?, None)
                }
                Err(e) => return Err(e),
            };
        let report = run.report().clone();
        if let Some((cost, questions, makespan)) = journaled_completion {
            if cost.to_bits() != report.fleet.cost.to_bits()
                || questions != report.fleet.questions
                || makespan.to_bits() != report.makespan.to_bits()
            {
                return Err(CdasError::JournalDiverged {
                    detail: format!(
                        "epoch {epoch} completion mismatch: manifest says cost {cost} / \
                         {questions} questions / makespan {makespan}, recovery got {} / {} / {}",
                        report.fleet.cost, report.fleet.questions, report.makespan
                    ),
                });
            }
        }
        let events = run.events().to_vec();
        self.finish_epoch(
            epoch,
            tickets,
            report,
            &events,
            journaled_completion.is_none(),
        )?;
        Ok(run_recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::demo_questions;
    use cdas_crowd::arrival::LatencyModel;
    use cdas_crowd::spec::CrowdSpec;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cdas-service-unit-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> ServiceConfig {
        ServiceConfig::new(
            CrowdSpec::clean(16, 0.85)
                .seed(7)
                .latency(LatencyModel::Exponential { mean: 5.0 }),
        )
    }

    fn job(name: &str, workers: usize) -> JobSpec {
        JobSpec::sentiment(name, demo_questions(8, 2))
            .workers(workers)
            .domain_size(3)
            .batch_size(4)
    }

    #[test]
    fn submit_run_shutdown_round_trip() {
        let dir = temp_dir("round-trip");
        let mut service = FleetService::open(&dir, config()).unwrap();
        let a = service.submit(job("a", 5)).unwrap();
        let b = service.submit(job("b", 5)).unwrap();
        assert_eq!((a, b), (JobTicket(0), JobTicket(1)));
        let summary = service.run_epoch().unwrap().expect("two admitted jobs");
        assert_eq!(summary.tickets, vec![a, b]);
        assert!(summary.questions > 0);
        assert!(
            service.run_epoch().unwrap().is_none(),
            "nothing left to run"
        );
        let report = service.shutdown().unwrap();
        assert_eq!(report.submitted, 2);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.epochs.len(), 1);
        assert!(report.unserved.is_empty());
        assert!(report.total_cost > 0.0);
    }

    #[test]
    fn an_unservable_job_is_rejected_not_queued() {
        let dir = temp_dir("unservable");
        let mut service = FleetService::open(&dir, config()).unwrap();
        match service.submit(job("wide", 40)) {
            Err(Rejected::Policy {
                ticket, forecast, ..
            }) => {
                assert_eq!(ticket, JobTicket(0));
                assert!(forecast.makespan_minutes.is_infinite());
            }
            other => panic!("expected a policy rejection, got {other:?}"),
        }
        let report = service.shutdown().unwrap();
        assert_eq!(report.submitted, 1);
        assert_eq!(report.rejected, 1);
        assert!(report.epochs.is_empty());
    }

    #[test]
    fn saturating_submissions_queue_and_later_promote() {
        let dir = temp_dir("queue-promote");
        let mut service = FleetService::open(&dir, config()).unwrap();
        // Three 7-worker jobs against 16 workers: the third sees 14 reserved and
        // has no free workers left under the mix.
        let a = service.submit(job("a", 7)).unwrap();
        let b = service.submit(job("b", 7)).unwrap();
        let c = service.submit(job("c", 7)).unwrap();
        assert!(matches!(
            service.events().last(),
            Some(ServiceEvent::Submitted {
                decision: AdmissionDecision::Queue,
                ..
            })
        ));
        let first = service.run_epoch().unwrap().expect("admitted jobs run");
        assert_eq!(first.tickets, vec![a, b]);
        // Capacity freed: the queued job promotes into the second epoch.
        let second = service.run_epoch().unwrap().expect("queued job promotes");
        assert_eq!(second.tickets, vec![c]);
        assert!(service
            .subscribe(c)
            .any(|e| matches!(e, ServiceEvent::Promoted { .. })));
        let report = service.shutdown().unwrap();
        assert!(report.unserved.is_empty(), "no starvation");
    }

    #[test]
    fn poll_cursors_are_per_ticket_and_drain() {
        let dir = temp_dir("poll");
        let mut service = FleetService::open(&dir, config()).unwrap();
        let a = service.submit(job("a", 5)).unwrap();
        let b = service.submit(job("b", 5)).unwrap();
        let first_a = service.poll(a);
        assert_eq!(first_a.len(), 1, "just a's Submitted so far");
        assert!(service.poll(a).is_empty(), "drained");
        service.run_epoch().unwrap().expect("runs");
        let after_a = service.poll(a);
        assert!(!after_a.is_empty());
        assert!(
            after_a.iter().all(|e| e.concerns(a)),
            "a's poll only sees a's events"
        );
        // b's cursor was never advanced: it still sees its Submitted plus the epoch.
        let all_b = service.poll(b);
        assert!(matches!(
            all_b.first(),
            Some(ServiceEvent::Submitted { .. })
        ));
        assert_eq!(
            service.subscribe(b).count(),
            all_b.len(),
            "subscribe sees exactly what a fresh poll drains"
        );
    }

    #[test]
    fn budget_breaches_are_rejected() {
        let dir = temp_dir("budget");
        let mut service = FleetService::open(&dir, config().budget(0.0)).unwrap();
        match service.submit(job("a", 5)) {
            Err(Rejected::Policy { reason, .. }) => {
                assert!(reason.contains("budget"), "{reason}");
            }
            other => panic!("expected a budget rejection, got {other:?}"),
        }
    }

    #[test]
    fn epoch_shard_count_is_auto_picked_and_journaled() {
        let dir = temp_dir("shards");
        let mut service = FleetService::open(&dir, config()).unwrap();
        // Two 5-worker jobs: two 8-worker shards fit one each → Parallel { 2 }.
        let _ = service.submit(job("a", 5)).unwrap();
        let _ = service.submit(job("b", 5)).unwrap();
        let summary = service.run_epoch().unwrap().expect("runs");
        assert_eq!(summary.mode, ExecutionMode::Parallel { shards: 2 });
        // A lone 5-worker job cannot be split: one shard → Clocked.
        let _ = service.submit(job("c", 5)).unwrap();
        let summary = service.run_epoch().unwrap().expect("runs");
        assert_eq!(summary.mode, ExecutionMode::Clocked);
    }

    #[test]
    fn recover_after_clean_shutdown_reproduces_the_event_stream() {
        let dir = temp_dir("recover-clean");
        let mut service = FleetService::open(&dir, config()).unwrap();
        let a = service.submit(job("a", 5)).unwrap();
        service.run_epoch().unwrap().expect("runs");
        let _ = a;
        let live = service.shutdown().unwrap();
        let (recovered, recovery) = FleetService::recover(&dir).unwrap();
        assert!(recovery.was_closed);
        assert!(!recovery.torn_tail);
        assert!(recovery.pending.is_empty());
        assert_eq!(recovery.epoch_recoveries.len(), 1);
        assert!(
            recovery.epoch_recoveries[0]
                .as_ref()
                .expect("epoch had a journal")
                .was_complete
        );
        assert_eq!(recovered.events(), &live.events[..]);
    }
}
