//! White-box admission control in the DBSeer mold: instead of fitting a black-box
//! curve to observed throughput, the model predicts a candidate job's resource
//! demands from the system's own mechanics — workers per HIT from the prediction
//! model ([`CrowdsourcingEngine::decide_workers`]), batch count from the job's
//! question list, round time from the crowd's latency distribution, dollars from the
//! [`CostModel`](cdas_core::economics::CostModel) — and only *calibrates* the
//! round-time constant against the
//! makespans of completed epochs. White-box structure is what gives the model
//! extrapolation power: a job mix the service has never seen still decomposes into
//! the same per-HIT quantities.
//!
//! The policy verdict is [`AdmissionDecision`]: `Accept` when the job fits the live
//! mix, `Queue` when it fits an emptier crowd than today's (capacity will free as
//! epochs complete), `Reject` when even an idle crowd could not meet its deadline,
//! the service budget would be breached, or the job is structurally unservable.

use cdas_core::Result;
use cdas_crowd::arrival::LatencyModel;
use cdas_crowd::spec::CrowdSpec;

use crate::engine::CrowdsourcingEngine;
use crate::metrics::FleetReport;
use crate::scheduler::ScheduledJob;

/// The admission verdict for one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The job fits the live mix: it joins the next epoch.
    Accept,
    /// The job fits an idle crowd but not today's mix: it waits for capacity.
    Queue,
    /// The job can never be served acceptably: unservable demand, a deadline no idle
    /// crowd meets, or a breach of the service-wide budget.
    Reject,
}

/// The model's prediction for one candidate job — the quantities the admission
/// policy (and the caller, via [`super::ServiceEvent::Submitted`]) reasons over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionForecast {
    /// Workers each of the job's HITs consumes while in flight.
    pub workers_per_hit: usize,
    /// HIT batches the job publishes (`ceil(questions / batch_size)`).
    pub batches: usize,
    /// Predicted worker-minutes: every batch holds `workers_per_hit` workers for one
    /// round.
    pub worker_minutes: f64,
    /// Predicted requester cost in dollars (assignments × per-assignment fee).
    pub cost: f64,
    /// Predicted simulated-minutes makespan under the mix the forecast was taken
    /// against. [`f64::INFINITY`] when that mix leaves the job no workers at all.
    pub makespan_minutes: f64,
}

/// The white-box model itself: crowd constants plus one calibrated round time.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionModel {
    /// Workers in the crowd.
    pool_workers: usize,
    /// Dollars per collected assignment (worker fee + platform fee).
    per_assignment: f64,
    /// The crowd's a-priori mean round time (latency-model mean), in simulated
    /// minutes.
    prior_round_minutes: f64,
    /// Observed `(makespan, dispatch rounds)` totals from completed epochs; their
    /// ratio replaces the prior once real data exists.
    observed_makespan: f64,
    /// Dispatch rounds observed alongside `observed_makespan`.
    observed_rounds: f64,
}

/// Mean of a latency distribution in simulated minutes.
fn latency_mean(model: &LatencyModel) -> f64 {
    match model {
        LatencyModel::Constant(v) => *v,
        LatencyModel::Uniform { lo, hi } => (lo + hi) / 2.0,
        LatencyModel::Exponential { mean } => *mean,
        LatencyModel::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
    }
}

impl AdmissionModel {
    /// Build the model from the crowd the service runs against.
    pub fn new(crowd: &CrowdSpec) -> Self {
        AdmissionModel {
            pool_workers: crowd.worker_count(),
            per_assignment: crowd.cost().per_assignment(),
            prior_round_minutes: latency_mean(&crowd.config().latency).max(f64::MIN_POSITIVE),
            observed_makespan: 0.0,
            observed_rounds: 0.0,
        }
    }

    /// The calibrated round time: observed minutes-per-dispatch once epochs have
    /// completed, the latency prior before then.
    pub fn round_minutes(&self) -> f64 {
        if self.observed_rounds > 0.0 && self.observed_makespan > 0.0 {
            self.observed_makespan / self.observed_rounds
        } else {
            self.prior_round_minutes
        }
    }

    /// Fold a completed epoch's report into the calibration: its makespan over its
    /// dispatch count refines the minutes-per-round estimate every later forecast
    /// uses. Deterministic — recovery replays epochs in order and lands on the same
    /// calibration.
    pub fn observe_epoch(&mut self, report: &FleetReport) {
        self.observe(report.makespan, report.dispatches.len());
    }

    /// The raw calibration update behind [`observe_epoch`](Self::observe_epoch).
    pub fn observe(&mut self, makespan: f64, dispatch_rounds: usize) {
        if dispatch_rounds == 0 {
            return;
        }
        self.observed_makespan += makespan;
        self.observed_rounds += dispatch_rounds as f64;
    }

    /// Predict the job's demands against a mix that already holds `reserved_workers`
    /// of the crowd. Fails only when the job itself is malformed (its worker-count
    /// policy resolves to an unservable demand).
    pub fn forecast(
        &self,
        job: &ScheduledJob,
        reserved_workers: usize,
    ) -> Result<AdmissionForecast> {
        let workers_per_hit = CrowdsourcingEngine::new(job.engine.clone()).decide_workers()?;
        let batches = job.questions.len().div_ceil(job.batch_size.max(1));
        let round = self.round_minutes();
        let worker_minutes = batches as f64 * workers_per_hit as f64 * round;
        let cost = batches as f64 * workers_per_hit as f64 * self.per_assignment;
        let free = self.pool_workers.saturating_sub(reserved_workers);
        let concurrent = (free / workers_per_hit.max(1)).min(batches);
        let makespan_minutes = if concurrent == 0 {
            f64::INFINITY
        } else {
            batches.div_ceil(concurrent) as f64 * round
        };
        Ok(AdmissionForecast {
            workers_per_hit,
            batches,
            worker_minutes,
            cost,
            makespan_minutes,
        })
    }

    /// Workers in the crowd.
    pub fn pool_workers(&self) -> usize {
        self.pool_workers
    }
}

/// The admission policy: fold the idle-crowd and live-mix forecasts, the job's
/// deadline, and the remaining budget into a verdict plus the forecast the decision
/// was made on (the live-mix one — what the job would experience if accepted now).
pub fn decide(
    idle: &AdmissionForecast,
    mix: &AdmissionForecast,
    deadline_minutes: Option<f64>,
    budget_remaining: Option<f64>,
) -> (AdmissionDecision, &'static str) {
    if let Some(budget) = budget_remaining {
        if mix.cost > budget {
            return (
                AdmissionDecision::Reject,
                "predicted cost exceeds the service budget",
            );
        }
    }
    if idle.makespan_minutes.is_infinite() {
        return (
            AdmissionDecision::Reject,
            "the job demands more workers per HIT than the crowd holds",
        );
    }
    if let Some(deadline) = deadline_minutes {
        if idle.makespan_minutes > deadline {
            return (
                AdmissionDecision::Reject,
                "even an idle crowd cannot meet the deadline",
            );
        }
        if mix.makespan_minutes > deadline {
            return (
                AdmissionDecision::Queue,
                "the live mix pushes the predicted makespan past the deadline",
            );
        }
    }
    if mix.makespan_minutes.is_infinite() {
        return (
            AdmissionDecision::Queue,
            "no free workers under the live mix",
        );
    }
    (AdmissionDecision::Accept, "fits the live mix")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::demo_questions;
    use crate::job_manager::JobKind;

    fn model() -> AdmissionModel {
        AdmissionModel::new(
            &CrowdSpec::clean(20, 0.85)
                .seed(1)
                .latency(LatencyModel::Exponential { mean: 5.0 }),
        )
    }

    fn job(questions: u64, batch: usize, workers: usize) -> ScheduledJob {
        let mut scheduled = ScheduledJob::named(
            JobKind::SentimentAnalytics,
            "t",
            demo_questions(questions, 1),
        );
        scheduled.engine.workers = crate::engine::WorkerCountPolicy::Fixed(workers);
        scheduled.batch_size = batch;
        scheduled
    }

    #[test]
    fn forecast_decomposes_into_white_box_quantities() {
        let m = model();
        let f = m.forecast(&job(10, 4, 5), 0).expect("well-formed job");
        assert_eq!(f.workers_per_hit, 5);
        assert_eq!(f.batches, 3);
        assert!((f.worker_minutes - 3.0 * 5.0 * 5.0).abs() < 1e-12);
        assert!((f.cost - 3.0 * 5.0 * m.per_assignment).abs() < 1e-12);
        // 20 workers / 5 per HIT = 4 concurrent, capped at 3 batches: one round.
        assert!((f.makespan_minutes - 5.0).abs() < 1e-12);
    }

    #[test]
    fn a_saturated_mix_predicts_infinite_makespan() {
        let m = model();
        let f = m.forecast(&job(10, 4, 5), 18).expect("well-formed job");
        assert!(f.makespan_minutes.is_infinite());
    }

    #[test]
    fn calibration_replaces_the_prior_round_time() {
        let mut m = model();
        assert!((m.round_minutes() - 5.0).abs() < 1e-12);
        m.observe(30.0, 10);
        assert!((m.round_minutes() - 3.0).abs() < 1e-12);
        m.observe(0.0, 0); // an empty epoch must not poison the calibration
        assert!((m.round_minutes() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn policy_orders_reject_queue_accept() {
        let idle = AdmissionForecast {
            workers_per_hit: 5,
            batches: 2,
            worker_minutes: 50.0,
            cost: 0.11,
            makespan_minutes: 5.0,
        };
        let tight = AdmissionForecast {
            makespan_minutes: 20.0,
            ..idle
        };
        let stuck = AdmissionForecast {
            makespan_minutes: f64::INFINITY,
            ..idle
        };
        assert_eq!(
            decide(&idle, &idle, Some(10.0), None).0,
            AdmissionDecision::Accept
        );
        assert_eq!(
            decide(&idle, &tight, Some(10.0), None).0,
            AdmissionDecision::Queue
        );
        assert_eq!(
            decide(&tight, &tight, Some(10.0), None).0,
            AdmissionDecision::Reject
        );
        assert_eq!(
            decide(&idle, &stuck, None, None).0,
            AdmissionDecision::Queue
        );
        assert_eq!(
            decide(&idle, &idle, None, Some(0.05)).0,
            AdmissionDecision::Reject
        );
        assert_eq!(
            decide(&idle, &idle, None, Some(1.0)).0,
            AdmissionDecision::Accept
        );
    }
}
