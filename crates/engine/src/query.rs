//! The CDAS query (Definition 1): `(S, C, R, t, w)`.

use cdas_core::types::AnswerDomain;
use serde::{Deserialize, Serialize};

/// A TSA-style analytics query.
///
/// * `S` — keywords selecting the relevant stream items,
/// * `C` — the required accuracy of the crowdsourced answers,
/// * `R` — the answer domain,
/// * `t` — the start timestamp (minutes, simulation time),
/// * `w` — the time window length in minutes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The keyword set `S`.
    pub keywords: Vec<String>,
    /// The required accuracy `C ∈ [0, 1)`.
    pub required_accuracy: f64,
    /// The answer domain `R`.
    pub domain: AnswerDomain,
    /// The start timestamp `t` (minutes).
    pub start: f64,
    /// The window length `w` (minutes).
    pub window: f64,
}

impl Query {
    /// Build a query.
    pub fn new(
        keywords: Vec<String>,
        required_accuracy: f64,
        domain: AnswerDomain,
        start: f64,
        window: f64,
    ) -> Self {
        Query {
            keywords,
            required_accuracy,
            domain,
            start,
            window,
        }
    }

    /// The paper's running example: `({iPhone4S, iPhone 4S}, 95%, {...}, t, 10)`.
    pub fn example_iphone() -> Self {
        Query::new(
            vec!["iPhone4S".to_string(), "iPhone 4S".to_string()],
            0.95,
            AnswerDomain::from_strs(&["Best Ever", "Good", "Not Satisfied"]),
            0.0,
            10.0,
        )
    }

    /// The end of the query window.
    pub fn end(&self) -> f64 {
        self.start + self.window
    }

    /// Whether a timestamp falls inside the query window.
    pub fn covers(&self, at: f64) -> bool {
        at >= self.start && at < self.end()
    }

    /// Whether a text matches any of the query keywords (case-insensitive).
    pub fn matches(&self, text: &str) -> bool {
        let lower = text.to_lowercase();
        self.keywords
            .iter()
            .any(|k| lower.contains(&k.to_lowercase()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_query_matches_the_paper() {
        let q = Query::example_iphone();
        assert_eq!(q.keywords.len(), 2);
        assert_eq!(q.required_accuracy, 0.95);
        assert_eq!(q.domain.size(), 3);
        assert_eq!(q.window, 10.0);
    }

    #[test]
    fn window_and_keyword_matching() {
        let q = Query::new(
            vec!["Thor".to_string()],
            0.9,
            AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
            100.0,
            50.0,
        );
        assert_eq!(q.end(), 150.0);
        assert!(q.covers(100.0));
        assert!(q.covers(149.9));
        assert!(!q.covers(150.0));
        assert!(!q.covers(99.9));
        assert!(q.matches("just watched THOR, loved it"));
        assert!(!q.matches("watching avatar tonight"));
    }
}
