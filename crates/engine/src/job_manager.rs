//! The job manager (§2.1): accept an analytics job and transform it into a processing plan
//! that splits the work between the program executor (computer part) and the crowdsourcing
//! engine (human part).
//!
//! The paper's job manager accepts *jobs*, plural: once each job's human part has been
//! rendered to crowd questions, [`JobManager::schedule`] turns the plan into a
//! [`ScheduledJob`] for the multi-job
//! [`scheduler`](crate::scheduler), which multiplexes all of them over one worker pool.

use cdas_core::sampling::SamplingPlan;
use cdas_crowd::question::CrowdQuestion;
use serde::{Deserialize, Serialize};

use crate::engine::EngineConfig;
use crate::query::Query;
use crate::scheduler::ScheduledJob;
use crate::template::QueryTemplate;

/// The kind of analytics job, which decides the query template and the computer-side
/// pre-processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// Twitter sentiment analytics: computers filter the stream, humans label sentiment.
    SentimentAnalytics,
    /// Image tagging: computers build candidate tag sets and indexes, humans pick tags.
    ImageTagging,
}

/// A registered analytics job: a query plus the job kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticsJob {
    /// What kind of job this is.
    pub kind: JobKind,
    /// The query to answer.
    pub query: Query,
    /// Human-readable job name (used in reports).
    pub name: String,
}

impl AnalyticsJob {
    /// Register a job.
    pub fn new(kind: JobKind, query: Query, name: impl Into<String>) -> Self {
        AnalyticsJob {
            kind,
            query,
            name: name.into(),
        }
    }
}

/// The computer part of the processing plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputerPart {
    /// Keywords the program executor filters the stream with.
    pub filter_keywords: Vec<String>,
    /// The time window the executor restricts items to.
    pub window: (f64, f64),
    /// Whether the executor should also run the machine baseline for comparison.
    pub run_machine_baseline: bool,
}

/// The human part of the processing plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HumanPart {
    /// The query template used to render HITs.
    pub template: QueryTemplate,
    /// The required accuracy handed to the prediction model.
    pub required_accuracy: f64,
    /// The gold-question sampling plan (`B`, `α`).
    pub sampling: SamplingPlan,
}

/// A processing plan: the two parts the job manager hands to the executor and the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessingPlan {
    /// Work done by computers.
    pub computer: ComputerPart,
    /// Work done by the crowd.
    pub human: HumanPart,
}

impl ProcessingPlan {
    /// The engine configuration the human part implies: the plan's required accuracy and
    /// the template's answer-domain size, over engine defaults.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig::for_job(
            self.human.required_accuracy,
            self.human.template.domain.size(),
        )
    }
}

/// The job manager.
#[derive(Debug, Clone, Default)]
pub struct JobManager {
    jobs: Vec<AnalyticsJob>,
}

impl JobManager {
    /// A manager with no registered jobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a job and return its index.
    pub fn register(&mut self, job: AnalyticsJob) -> usize {
        self.jobs.push(job);
        self.jobs.len() - 1
    }

    /// The registered jobs.
    pub fn jobs(&self) -> &[AnalyticsJob] {
        &self.jobs
    }

    /// Transform a job into its processing plan (the partitioning step of §2.1).
    pub fn plan(&self, job: &AnalyticsJob) -> ProcessingPlan {
        self.plan_with_sampling(job, SamplingPlan::paper_default())
    }

    /// Transform a job into a plan with an explicit sampling plan (used by the sampling-rate
    /// experiments, Figures 15–16).
    pub fn plan_with_sampling(&self, job: &AnalyticsJob, sampling: SamplingPlan) -> ProcessingPlan {
        let template = match job.kind {
            JobKind::SentimentAnalytics => QueryTemplate::tsa(),
            JobKind::ImageTagging => QueryTemplate::image_tagging(job.query.domain.clone()),
        };
        ProcessingPlan {
            computer: ComputerPart {
                filter_keywords: job.query.keywords.clone(),
                window: (job.query.start, job.query.end()),
                run_machine_baseline: matches!(job.kind, JobKind::SentimentAnalytics),
            },
            human: HumanPart {
                template,
                required_accuracy: job.query.required_accuracy,
                sampling,
            },
        }
    }

    /// Turn a job whose human part has been rendered to `questions` into a
    /// [`ScheduledJob`] for the multi-job scheduler, deriving the engine configuration
    /// and batch size from the job's processing plan.
    pub fn schedule(&self, job: AnalyticsJob, questions: Vec<CrowdQuestion>) -> ScheduledJob {
        let plan = self.plan(&job);
        let engine = plan.engine_config();
        let batch_size = plan.human.sampling.batch_size();
        ScheduledJob::new(job, questions)
            .with_engine(engine)
            .with_batch_size(batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_core::types::AnswerDomain;

    fn tsa_job() -> AnalyticsJob {
        AnalyticsJob::new(
            JobKind::SentimentAnalytics,
            Query::new(
                vec!["Thor".to_string()],
                0.9,
                AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
                0.0,
                60.0,
            ),
            "thor-sentiment",
        )
    }

    #[test]
    fn registration_keeps_jobs() {
        let mut m = JobManager::new();
        assert!(m.jobs().is_empty());
        let idx = m.register(tsa_job());
        assert_eq!(idx, 0);
        assert_eq!(m.jobs().len(), 1);
        assert_eq!(m.jobs()[0].name, "thor-sentiment");
    }

    #[test]
    fn tsa_plan_splits_work() {
        let m = JobManager::new();
        let plan = m.plan(&tsa_job());
        assert_eq!(plan.computer.filter_keywords, vec!["Thor".to_string()]);
        assert_eq!(plan.computer.window, (0.0, 60.0));
        assert!(plan.computer.run_machine_baseline);
        assert_eq!(plan.human.required_accuracy, 0.9);
        assert_eq!(plan.human.template.domain.size(), 3);
        assert_eq!(plan.human.sampling.batch_size(), 100);
        assert_eq!(plan.human.sampling.gold_count(), 20);
    }

    #[test]
    fn it_plan_uses_the_query_domain() {
        let m = JobManager::new();
        let job = AnalyticsJob::new(
            JobKind::ImageTagging,
            Query::new(
                vec!["apple".to_string()],
                0.85,
                AnswerDomain::from_strs(&["apple", "fruit", "fax", "sun"]),
                0.0,
                10.0,
            ),
            "apple-tags",
        );
        let plan = m.plan(&job);
        assert_eq!(plan.human.template.domain.size(), 4);
        assert!(!plan.computer.run_machine_baseline);
    }

    #[test]
    fn explicit_sampling_plan_is_honoured() {
        let m = JobManager::new();
        let sampling = SamplingPlan::new(50, 0.1).unwrap();
        let plan = m.plan_with_sampling(&tsa_job(), sampling.clone());
        assert_eq!(plan.human.sampling, sampling);
    }

    #[test]
    fn plan_derives_the_engine_config() {
        let m = JobManager::new();
        let config = m.plan(&tsa_job()).engine_config();
        assert_eq!(config.required_accuracy, 0.9);
        assert_eq!(config.domain_size, Some(3));
    }

    #[test]
    fn schedule_bridges_a_plan_to_the_scheduler() {
        let m = JobManager::new();
        let scheduled = m.schedule(tsa_job(), Vec::new());
        assert_eq!(scheduled.engine.required_accuracy, 0.9);
        assert_eq!(scheduled.engine.domain_size, Some(3));
        assert_eq!(scheduled.batch_size, 100, "the paper-default batch size B");
        assert_eq!(scheduled.job.name, "thor-sentiment");
    }
}
