//! # cdas-engine — the CDAS query engine
//!
//! This crate assembles the quality-sensitive answering model (`cdas-core`), the simulated
//! crowd platform (`cdas-crowd`), the synthetic workloads (`cdas-workloads`) and the
//! machine baselines (`cdas-baselines`) into the system described in §2 of the paper:
//!
//! * the [`query`] module defines the TSA-style query `(S, C, R, t, w)` (Definition 1),
//! * the [`job_manager`] turns an analytics job into a processing plan split between the
//!   [`executor`] (computer part: stream filtering) and the [`engine`] (human part),
//! * the [`template`] module renders HIT descriptions (Figure 3) and the [`privacy`]
//!   manager can mask sensitive content and reject workers,
//! * the [`engine`] module implements the two-phase crowdsourcing engine of Algorithm 1:
//!   predict the worker count, publish the HIT, collect answers asynchronously, estimate
//!   worker accuracy from gold questions, verify answers (voting or probabilistic,
//!   offline or online with early termination) and account for cost,
//! * the [`apps`] module wires two complete applications — Twitter Sentiment Analytics and
//!   Image Tagging — end to end,
//! * the [`clocked`] module is phase 2 under **simulated time** (§4.2 made temporal): a
//!   discrete-event collector feeds answers to the online processors as they arrive,
//!   cancels early-terminated HITs mid-flight so uncollected assignments are never paid,
//!   and reports latency, makespan and reclaimed worker-minutes,
//! * the [`scheduler`] module multiplexes **many concurrent jobs** over one shared worker
//!   pool: disjoint worker leases per in-flight HIT (RAII guards that release on drop, so
//!   no error or panic strands workers), a fleet-wide lock-striped shared accuracy
//!   registry, and round-robin/priority dispatch (the §2.1 job manager at scale) —
//!   unclocked via [`scheduler::JobScheduler::run`], time-aware via
//!   [`scheduler::JobScheduler::run_clocked`], where cancelled HITs hand their leases to
//!   waiting jobs mid-run, or **parallel across OS threads** via
//!   [`scheduler::JobScheduler::run_parallel`] over a sharded platform
//!   (`cdas_crowd::sharded::ShardedPlatform`), of which `run_clocked` is the one-shard
//!   special case, and
//! * the [`metrics`] module scores any of it against ground truth (real accuracy,
//!   no-answer ratio, workers consumed, dollars spent), per job and fleet-wide,
//! * the [`fleet`] module is the **front door**: a [`fleet::Fleet`] facade whose
//!   typestate builder collapses the pool/platform/ledger/scheduler wiring into one
//!   chain, whose [`fleet::JobSpec`]s layer job overrides over fleet defaults, and whose
//!   single [`fleet::Fleet::run`] entry point dispatches to the three scheduler paths by
//!   [`fleet::ExecutionMode`] and streams [`fleet::FleetEvent`]s back, and
//! * the [`fixtures`] module holds the deterministic demo questions examples, benches
//!   and doc-tests feed the scheduler (not part of the production pipeline).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod apps;
pub mod clocked;
pub mod engine;
pub mod executor;
pub mod fixtures;
pub mod fleet;
pub mod job_manager;
pub mod journal;
pub mod metrics;
pub mod privacy;
pub mod query;
pub mod scheduler;
pub mod service;
pub mod template;

pub use clocked::{ClockedCollector, ClockedOutcome};
pub use engine::{
    BatchTicket, CrowdsourcingEngine, EngineConfig, HitOutcome, QuestionVerdict,
    VerificationStrategy, WorkerCountPolicy,
};
pub use fleet::{ExecutionMode, Fleet, FleetBuilder, FleetEvent, FleetRun, JobSpec};
pub use journal::{Journal, JournalConfig, RecoveryReport, SyncPolicy};
pub use metrics::{FleetReport, JobReport, ShardReport};
pub use query::Query;
pub use scheduler::{DispatchPolicy, JobId, JobScheduler, ScheduledJob, SchedulerConfig};
pub use service::{
    AdmissionDecision, AdmissionForecast, AdmissionModel, FleetService, JobTicket, Rejected,
    ServiceConfig, ServiceEvent, ServiceRecovery, ServiceReport,
};
