//! The journal's record vocabulary and the [`BinCodec`] impls for the engine-side types
//! that appear inside records.
//!
//! A journal is a sequence of [`JournalRecord`]s. The first record of a run is always
//! [`JournalRecord::RunStarted`] (or, after compaction, a [`JournalRecord::Snapshot`]
//! that embeds the same configuration), which carries everything needed to re-execute
//! the run deterministically: the crowd specification, the scheduler configuration, the
//! resolved jobs, and the execution mode. Everything after it is the durable trace of
//! scheduler progress — dispatches, per-poll charges, batch commits — followed, on
//! successful completion, by the fleet's event stream and a [`JournalRecord::RunCompleted`]
//! trailer.

use cdas_core::codec::{fnv1a64, BinCodec, CodecError, CodecResult};
use cdas_core::economics::CostModel;
use cdas_core::online::TerminationStrategy;
use cdas_core::types::{AnswerDomain, HitId, QuestionId};
use cdas_core::{accuracy::AccuracyRegistry, verification::Verdict};
use cdas_crowd::question::CrowdQuestion;
use cdas_crowd::spec::CrowdSpec;

use crate::engine::{
    AccuracySource, EngineConfig, HitOutcome, QuestionVerdict, VerificationStrategy,
    WorkerCountPolicy,
};
use crate::fleet::{ExecutionMode, FleetEvent};
use crate::job_manager::{AnalyticsJob, JobKind};
use crate::journal::{JournalConfig, SyncPolicy};
use crate::query::Query;
use crate::scheduler::{
    ArrivalDiscovery, BatchCommit, DispatchPolicy, DispatchRecord, JobId, ScheduledJob,
    SchedulerConfig,
};
use crate::service::admission::{AdmissionDecision, AdmissionForecast};
use crate::service::manifest::{ServiceConfig, ServiceSubmission};

/// Everything a run is a deterministic function of (up to wall clock): journaling this
/// once at the head of the journal is what lets [`crate::fleet::Fleet::recover`] rebuild
/// the fleet and re-execute without any live object surviving the crash.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// The crowd the run was started against.
    pub crowd: CrowdSpec,
    /// The scheduler configuration.
    pub scheduler: SchedulerConfig,
    /// The execution mode (`EndOfTime`, `Clocked`, or `Parallel`).
    pub mode: ExecutionMode,
    /// The fully resolved jobs, in submission order.
    pub jobs: Vec<ScheduledJob>,
}

/// A compacted stand-in for a full [`BatchCommit`]: enough to prove (or refute) that a
/// replayed commit matches the journaled one, at a fraction of the bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitDigest {
    /// The committing job (global id).
    pub job: JobId,
    /// The commit's 0-based sequence number within the job.
    pub seq: usize,
    /// The platform HIT the batch ran as.
    pub hit: HitId,
    /// What the batch charged.
    pub charge: f64,
    /// FNV-1a fingerprint of the full commit's encoding.
    pub digest: u64,
}

impl CommitDigest {
    /// Digest a full commit (used by compaction, and by recovery to verify a replayed
    /// commit against a digest).
    pub fn of(commit: &BatchCommit) -> Self {
        CommitDigest {
            job: commit.job,
            seq: commit.seq,
            hit: commit.hit,
            charge: commit.charge,
            digest: fnv1a64(&commit.to_bytes()),
        }
    }

    /// Whether `commit` is the commit this digest was taken of.
    pub fn matches(&self, commit: &BatchCommit) -> bool {
        self.job == commit.job
            && self.seq == commit.seq
            && self.hit == commit.hit
            && self.digest == fnv1a64(&commit.to_bytes())
    }
}

/// The state a compaction folds the journal's prefix into: the run configuration, the
/// full dispatch history, commit digests, and the charge total. Replaces every record
/// before it; recovery treats it exactly like a `RunStarted` followed by the records it
/// summarizes.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalSnapshot {
    /// The run configuration (as journaled by `RunStarted`).
    pub config: RunConfig,
    /// Every dispatch journaled before the snapshot, in journal order.
    pub dispatches: Vec<DispatchRecord>,
    /// Digests of every commit journaled before the snapshot.
    pub commits: Vec<CommitDigest>,
    /// Folded total of every per-poll charge journaled before the snapshot.
    pub charged: f64,
}

/// One record of the write-ahead journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// The run's head record: its full configuration.
    RunStarted(RunConfig),
    /// A batch was published (money committed on the platform).
    Dispatch(DispatchRecord),
    /// A clocked poll charged the requester.
    Charge {
        /// The charged job (global id).
        job: JobId,
        /// The polled HIT.
        hit: HitId,
        /// The amount charged by this poll.
        amount: f64,
        /// Simulated time of the poll.
        at: f64,
    },
    /// A batch outcome became part of run state.
    Commit(BatchCommit),
    /// One fleet event of a completed run's event stream.
    Event(FleetEvent),
    /// A compaction checkpoint replacing every earlier record.
    Snapshot(JournalSnapshot),
    /// The run finished; the journal is complete.
    RunCompleted {
        /// Total requester cost of the run.
        cost: f64,
        /// Real questions resolved.
        questions: usize,
        /// Simulated makespan in minutes.
        makespan: f64,
    },
    /// Head record of a **service manifest** ([`crate::service::FleetService`]): the
    /// resident service's full configuration. Never appears in a run journal.
    ServiceOpened(ServiceConfig),
    /// A job was submitted to the service and an admission decision taken. Durable
    /// before the ticket is acknowledged, so a crash never forgets an admission.
    ServiceSubmitted(ServiceSubmission),
    /// A batch of admitted tickets was scheduled as epoch `epoch`, whose run journal
    /// lives beside the manifest.
    ServiceEpochStarted {
        /// The epoch's 0-based index.
        epoch: u64,
        /// Tickets scheduled, in epoch-local [`JobId`] order.
        tickets: Vec<u64>,
        /// The mode the epoch fleet runs under.
        mode: ExecutionMode,
    },
    /// Epoch `epoch`'s run completed with these totals.
    ServiceEpochCompleted {
        /// The completed epoch.
        epoch: u64,
        /// Requester cost of the epoch.
        cost: f64,
        /// Real questions the epoch resolved.
        questions: usize,
        /// The epoch's simulated makespan in minutes.
        makespan: f64,
    },
    /// The service shut down cleanly; the manifest is complete.
    ServiceClosed {
        /// Total requester cost across every epoch.
        total_cost: f64,
    },
}

impl JournalRecord {
    /// Whether this record must be durable before the run proceeds (the journal fsyncs
    /// after it under [`crate::journal::SyncPolicy::Commits`]).
    pub fn is_commit_class(&self) -> bool {
        matches!(
            self,
            JournalRecord::RunStarted(_)
                | JournalRecord::Commit(_)
                | JournalRecord::Snapshot(_)
                | JournalRecord::RunCompleted { .. }
                | JournalRecord::ServiceOpened(_)
                | JournalRecord::ServiceSubmitted(_)
                | JournalRecord::ServiceEpochStarted { .. }
                | JournalRecord::ServiceEpochCompleted { .. }
                | JournalRecord::ServiceClosed { .. }
        )
    }

    /// Encode the `Commit` wire form straight from a borrowed commit — byte-identical
    /// to `JournalRecord::Commit(commit.clone()).to_bytes()`. The journal appends one
    /// commit per batch on the scheduler's hot path, and the outcome inside (verdicts,
    /// registry contributions) is too heavy to deep-clone just to serialize it.
    pub fn encode_commit(commit: &BatchCommit, out: &mut Vec<u8>) {
        out.push(4);
        commit.encode(out);
    }
}

impl BinCodec for JobId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(JobId(usize::decode(input)?))
    }
}

impl BinCodec for DispatchPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            DispatchPolicy::RoundRobin => 0,
            DispatchPolicy::Priority => 1,
        });
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(DispatchPolicy::RoundRobin),
            1 => Ok(DispatchPolicy::Priority),
            other => Err(CodecError::new(format!(
                "invalid DispatchPolicy tag {other}"
            ))),
        }
    }
}

impl BinCodec for ArrivalDiscovery {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ArrivalDiscovery::Heap => 0,
            ArrivalDiscovery::Scan => 1,
        });
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(ArrivalDiscovery::Heap),
            1 => Ok(ArrivalDiscovery::Scan),
            other => Err(CodecError::new(format!(
                "invalid ArrivalDiscovery tag {other}"
            ))),
        }
    }
}

impl BinCodec for SchedulerConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.policy.encode(out);
        self.seed.encode(out);
        self.max_ticks.encode(out);
        self.discovery.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(SchedulerConfig {
            policy: DispatchPolicy::decode(input)?,
            seed: u64::decode(input)?,
            max_ticks: usize::decode(input)?,
            discovery: ArrivalDiscovery::decode(input)?,
        })
    }
}

impl BinCodec for ExecutionMode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ExecutionMode::EndOfTime => out.push(0),
            ExecutionMode::Clocked => out.push(1),
            ExecutionMode::Parallel { shards } => {
                out.push(2);
                shards.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(ExecutionMode::EndOfTime),
            1 => Ok(ExecutionMode::Clocked),
            2 => Ok(ExecutionMode::Parallel {
                shards: usize::decode(input)?,
            }),
            other => Err(CodecError::new(format!(
                "invalid ExecutionMode tag {other}"
            ))),
        }
    }
}

impl BinCodec for JobKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            JobKind::SentimentAnalytics => 0,
            JobKind::ImageTagging => 1,
        });
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(JobKind::SentimentAnalytics),
            1 => Ok(JobKind::ImageTagging),
            other => Err(CodecError::new(format!("invalid JobKind tag {other}"))),
        }
    }
}

impl BinCodec for Query {
    fn encode(&self, out: &mut Vec<u8>) {
        self.keywords.encode(out);
        self.required_accuracy.encode(out);
        self.domain.encode(out);
        self.start.encode(out);
        self.window.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(Query {
            keywords: Vec::<String>::decode(input)?,
            required_accuracy: f64::decode(input)?,
            domain: AnswerDomain::decode(input)?,
            start: f64::decode(input)?,
            window: f64::decode(input)?,
        })
    }
}

impl BinCodec for AnalyticsJob {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind.encode(out);
        self.query.encode(out);
        self.name.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(AnalyticsJob {
            kind: JobKind::decode(input)?,
            query: Query::decode(input)?,
            name: String::decode(input)?,
        })
    }
}

impl BinCodec for VerificationStrategy {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            VerificationStrategy::HalfVoting => 0,
            VerificationStrategy::MajorityVoting => 1,
            VerificationStrategy::Probabilistic => 2,
        });
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(VerificationStrategy::HalfVoting),
            1 => Ok(VerificationStrategy::MajorityVoting),
            2 => Ok(VerificationStrategy::Probabilistic),
            other => Err(CodecError::new(format!(
                "invalid VerificationStrategy tag {other}"
            ))),
        }
    }
}

impl BinCodec for WorkerCountPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WorkerCountPolicy::Fixed(n) => {
                out.push(0);
                n.encode(out);
            }
            WorkerCountPolicy::Predicted { mean_accuracy } => {
                out.push(1);
                mean_accuracy.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(WorkerCountPolicy::Fixed(usize::decode(input)?)),
            1 => Ok(WorkerCountPolicy::Predicted {
                mean_accuracy: f64::decode(input)?,
            }),
            other => Err(CodecError::new(format!(
                "invalid WorkerCountPolicy tag {other}"
            ))),
        }
    }
}

impl BinCodec for AccuracySource {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AccuracySource::GoldSampling => out.push(0),
            AccuracySource::Registry(registry) => {
                out.push(1);
                registry.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(AccuracySource::GoldSampling),
            1 => Ok(AccuracySource::Registry(AccuracyRegistry::decode(input)?)),
            other => Err(CodecError::new(format!(
                "invalid AccuracySource tag {other}"
            ))),
        }
    }
}

impl BinCodec for EngineConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.verification.encode(out);
        self.termination.encode(out);
        self.workers.encode(out);
        self.required_accuracy.encode(out);
        self.accuracy_source.encode(out);
        self.default_worker_accuracy.encode(out);
        self.domain_size.encode(out);
        self.reward.encode(out);
        self.cost_model.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(EngineConfig {
            verification: VerificationStrategy::decode(input)?,
            termination: Option::<TerminationStrategy>::decode(input)?,
            workers: WorkerCountPolicy::decode(input)?,
            required_accuracy: f64::decode(input)?,
            accuracy_source: AccuracySource::decode(input)?,
            default_worker_accuracy: f64::decode(input)?,
            domain_size: Option::<usize>::decode(input)?,
            reward: f64::decode(input)?,
            cost_model: CostModel::decode(input)?,
        })
    }
}

impl BinCodec for ScheduledJob {
    fn encode(&self, out: &mut Vec<u8>) {
        self.job.encode(out);
        self.questions.encode(out);
        self.engine.encode(out);
        self.batch_size.encode(out);
        self.priority.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(ScheduledJob {
            job: AnalyticsJob::decode(input)?,
            questions: Vec::<CrowdQuestion>::decode(input)?,
            engine: EngineConfig::decode(input)?,
            batch_size: usize::decode(input)?,
            priority: u8::decode(input)?,
        })
    }
}

impl BinCodec for DispatchRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tick.encode(out);
        self.job.encode(out);
        self.hit.encode(out);
        self.workers.encode(out);
        self.at.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(DispatchRecord {
            tick: usize::decode(input)?,
            job: JobId::decode(input)?,
            hit: HitId::decode(input)?,
            workers: Vec::decode(input)?,
            at: f64::decode(input)?,
        })
    }
}

impl BinCodec for QuestionVerdict {
    fn encode(&self, out: &mut Vec<u8>) {
        self.question.encode(out);
        self.verdict.encode(out);
        self.answers_used.encode(out);
        self.is_gold.encode(out);
        self.reasons.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(QuestionVerdict {
            question: QuestionId::decode(input)?,
            verdict: Verdict::decode(input)?,
            answers_used: usize::decode(input)?,
            is_gold: bool::decode(input)?,
            reasons: Vec::<String>::decode(input)?,
        })
    }
}

impl BinCodec for HitOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        self.hit.encode(out);
        self.verdicts.encode(out);
        self.workers_assigned.encode(out);
        self.estimated_mean_accuracy.encode(out);
        self.registry.encode(out);
        self.cost.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(HitOutcome {
            hit: HitId::decode(input)?,
            verdicts: Vec::decode(input)?,
            workers_assigned: usize::decode(input)?,
            estimated_mean_accuracy: Option::<f64>::decode(input)?,
            registry: AccuracyRegistry::decode(input)?,
            cost: f64::decode(input)?,
        })
    }
}

impl BinCodec for BatchCommit {
    fn encode(&self, out: &mut Vec<u8>) {
        self.job.encode(out);
        self.seq.encode(out);
        self.hit.encode(out);
        self.range.encode(out);
        self.outcome.encode(out);
        self.charge.encode(out);
        self.completed_at.encode(out);
        self.first_verdict_at.encode(out);
        self.reclaimed_minutes.encode(out);
        self.answers_cancelled.encode(out);
        self.cancelled.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(BatchCommit {
            job: JobId::decode(input)?,
            seq: usize::decode(input)?,
            hit: HitId::decode(input)?,
            range: std::ops::Range::<usize>::decode(input)?,
            outcome: HitOutcome::decode(input)?,
            charge: f64::decode(input)?,
            completed_at: f64::decode(input)?,
            first_verdict_at: Option::<f64>::decode(input)?,
            reclaimed_minutes: f64::decode(input)?,
            answers_cancelled: usize::decode(input)?,
            cancelled: bool::decode(input)?,
        })
    }
}

impl BinCodec for FleetEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FleetEvent::JobStarted { job, name, at } => {
                out.push(0);
                job.encode(out);
                name.encode(out);
                at.encode(out);
            }
            FleetEvent::HitDispatched {
                job,
                hit,
                workers,
                at,
            } => {
                out.push(1);
                job.encode(out);
                hit.encode(out);
                workers.encode(out);
                at.encode(out);
            }
            FleetEvent::QuestionTerminated {
                job,
                question,
                verdict,
                reasons,
                answers_used,
                early,
                at,
            } => {
                out.push(2);
                job.encode(out);
                question.encode(out);
                verdict.encode(out);
                reasons.encode(out);
                answers_used.encode(out);
                early.encode(out);
                at.encode(out);
            }
            FleetEvent::FirstVerdict { job, at } => {
                out.push(3);
                job.encode(out);
                at.encode(out);
            }
            FleetEvent::LeaseReclaimed { job, minutes, at } => {
                out.push(4);
                job.encode(out);
                minutes.encode(out);
                at.encode(out);
            }
            FleetEvent::JobCompleted {
                job,
                questions,
                accuracy,
                at,
            } => {
                out.push(5);
                job.encode(out);
                questions.encode(out);
                accuracy.encode(out);
                at.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(FleetEvent::JobStarted {
                job: JobId::decode(input)?,
                name: String::decode(input)?,
                at: f64::decode(input)?,
            }),
            1 => Ok(FleetEvent::HitDispatched {
                job: JobId::decode(input)?,
                hit: HitId::decode(input)?,
                workers: usize::decode(input)?,
                at: f64::decode(input)?,
            }),
            2 => Ok(FleetEvent::QuestionTerminated {
                job: JobId::decode(input)?,
                question: QuestionId::decode(input)?,
                verdict: Verdict::decode(input)?,
                reasons: Vec::<String>::decode(input)?,
                answers_used: usize::decode(input)?,
                early: bool::decode(input)?,
                at: f64::decode(input)?,
            }),
            3 => Ok(FleetEvent::FirstVerdict {
                job: JobId::decode(input)?,
                at: f64::decode(input)?,
            }),
            4 => Ok(FleetEvent::LeaseReclaimed {
                job: JobId::decode(input)?,
                minutes: f64::decode(input)?,
                at: f64::decode(input)?,
            }),
            5 => Ok(FleetEvent::JobCompleted {
                job: JobId::decode(input)?,
                questions: usize::decode(input)?,
                accuracy: f64::decode(input)?,
                at: f64::decode(input)?,
            }),
            other => Err(CodecError::new(format!("invalid FleetEvent tag {other}"))),
        }
    }
}

impl BinCodec for RunConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.crowd.encode(out);
        self.scheduler.encode(out);
        self.mode.encode(out);
        self.jobs.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(RunConfig {
            crowd: CrowdSpec::decode(input)?,
            scheduler: SchedulerConfig::decode(input)?,
            mode: ExecutionMode::decode(input)?,
            jobs: Vec::decode(input)?,
        })
    }
}

impl BinCodec for CommitDigest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.job.encode(out);
        self.seq.encode(out);
        self.hit.encode(out);
        self.charge.encode(out);
        self.digest.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(CommitDigest {
            job: JobId::decode(input)?,
            seq: usize::decode(input)?,
            hit: HitId::decode(input)?,
            charge: f64::decode(input)?,
            digest: u64::decode(input)?,
        })
    }
}

impl BinCodec for JournalSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.config.encode(out);
        self.dispatches.encode(out);
        self.commits.encode(out);
        self.charged.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(JournalSnapshot {
            config: RunConfig::decode(input)?,
            dispatches: Vec::decode(input)?,
            commits: Vec::decode(input)?,
            charged: f64::decode(input)?,
        })
    }
}

impl BinCodec for SyncPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SyncPolicy::Never => out.push(0),
            SyncPolicy::Commits => out.push(1),
            SyncPolicy::Always => out.push(2),
            SyncPolicy::GroupCommit {
                max_batch,
                max_delay_ms,
            } => {
                out.push(3);
                max_batch.encode(out);
                max_delay_ms.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(SyncPolicy::Never),
            1 => Ok(SyncPolicy::Commits),
            2 => Ok(SyncPolicy::Always),
            3 => Ok(SyncPolicy::GroupCommit {
                max_batch: usize::decode(input)?,
                max_delay_ms: u64::decode(input)?,
            }),
            other => Err(CodecError::new(format!("invalid SyncPolicy tag {other}"))),
        }
    }
}

impl BinCodec for JournalConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.max_segment_bytes.encode(out);
        self.sync.encode(out);
        self.fail_writes_after.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(JournalConfig {
            max_segment_bytes: u64::decode(input)?,
            sync: SyncPolicy::decode(input)?,
            fail_writes_after: Option::<u64>::decode(input)?,
        })
    }
}

impl BinCodec for AdmissionDecision {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            AdmissionDecision::Accept => 0,
            AdmissionDecision::Queue => 1,
            AdmissionDecision::Reject => 2,
        });
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(AdmissionDecision::Accept),
            1 => Ok(AdmissionDecision::Queue),
            2 => Ok(AdmissionDecision::Reject),
            other => Err(CodecError::new(format!(
                "invalid AdmissionDecision tag {other}"
            ))),
        }
    }
}

impl BinCodec for AdmissionForecast {
    fn encode(&self, out: &mut Vec<u8>) {
        self.workers_per_hit.encode(out);
        self.batches.encode(out);
        self.worker_minutes.encode(out);
        self.cost.encode(out);
        self.makespan_minutes.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(AdmissionForecast {
            workers_per_hit: usize::decode(input)?,
            batches: usize::decode(input)?,
            worker_minutes: f64::decode(input)?,
            cost: f64::decode(input)?,
            makespan_minutes: f64::decode(input)?,
        })
    }
}

impl BinCodec for ServiceConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.crowd.encode(out);
        self.scheduler.encode(out);
        self.budget.encode(out);
        self.max_shards.encode(out);
        self.run_journal.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(ServiceConfig {
            crowd: CrowdSpec::decode(input)?,
            scheduler: SchedulerConfig::decode(input)?,
            budget: Option::<f64>::decode(input)?,
            max_shards: usize::decode(input)?,
            run_journal: JournalConfig::decode(input)?,
        })
    }
}

impl BinCodec for ServiceSubmission {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ticket.encode(out);
        self.job.encode(out);
        self.deadline_minutes.encode(out);
        self.decision.encode(out);
        self.forecast.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(ServiceSubmission {
            ticket: u64::decode(input)?,
            job: ScheduledJob::decode(input)?,
            deadline_minutes: Option::<f64>::decode(input)?,
            decision: AdmissionDecision::decode(input)?,
            forecast: AdmissionForecast::decode(input)?,
        })
    }
}

impl BinCodec for JournalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            JournalRecord::RunStarted(config) => {
                out.push(1);
                config.encode(out);
            }
            JournalRecord::Dispatch(dispatch) => {
                out.push(2);
                dispatch.encode(out);
            }
            JournalRecord::Charge {
                job,
                hit,
                amount,
                at,
            } => {
                out.push(3);
                job.encode(out);
                hit.encode(out);
                amount.encode(out);
                at.encode(out);
            }
            JournalRecord::Commit(commit) => {
                JournalRecord::encode_commit(commit, out);
            }
            JournalRecord::Event(event) => {
                out.push(5);
                event.encode(out);
            }
            JournalRecord::Snapshot(snapshot) => {
                out.push(6);
                snapshot.encode(out);
            }
            JournalRecord::RunCompleted {
                cost,
                questions,
                makespan,
            } => {
                out.push(7);
                cost.encode(out);
                questions.encode(out);
                makespan.encode(out);
            }
            JournalRecord::ServiceOpened(config) => {
                out.push(8);
                config.encode(out);
            }
            JournalRecord::ServiceSubmitted(submission) => {
                out.push(9);
                submission.encode(out);
            }
            JournalRecord::ServiceEpochStarted {
                epoch,
                tickets,
                mode,
            } => {
                out.push(10);
                epoch.encode(out);
                tickets.encode(out);
                mode.encode(out);
            }
            JournalRecord::ServiceEpochCompleted {
                epoch,
                cost,
                questions,
                makespan,
            } => {
                out.push(11);
                epoch.encode(out);
                cost.encode(out);
                questions.encode(out);
                makespan.encode(out);
            }
            JournalRecord::ServiceClosed { total_cost } => {
                out.push(12);
                total_cost.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            1 => Ok(JournalRecord::RunStarted(RunConfig::decode(input)?)),
            2 => Ok(JournalRecord::Dispatch(DispatchRecord::decode(input)?)),
            3 => Ok(JournalRecord::Charge {
                job: JobId::decode(input)?,
                hit: HitId::decode(input)?,
                amount: f64::decode(input)?,
                at: f64::decode(input)?,
            }),
            4 => Ok(JournalRecord::Commit(BatchCommit::decode(input)?)),
            5 => Ok(JournalRecord::Event(FleetEvent::decode(input)?)),
            6 => Ok(JournalRecord::Snapshot(JournalSnapshot::decode(input)?)),
            7 => Ok(JournalRecord::RunCompleted {
                cost: f64::decode(input)?,
                questions: usize::decode(input)?,
                makespan: f64::decode(input)?,
            }),
            8 => Ok(JournalRecord::ServiceOpened(ServiceConfig::decode(input)?)),
            9 => Ok(JournalRecord::ServiceSubmitted(ServiceSubmission::decode(
                input,
            )?)),
            10 => Ok(JournalRecord::ServiceEpochStarted {
                epoch: u64::decode(input)?,
                tickets: Vec::<u64>::decode(input)?,
                mode: ExecutionMode::decode(input)?,
            }),
            11 => Ok(JournalRecord::ServiceEpochCompleted {
                epoch: u64::decode(input)?,
                cost: f64::decode(input)?,
                questions: usize::decode(input)?,
                makespan: f64::decode(input)?,
            }),
            12 => Ok(JournalRecord::ServiceClosed {
                total_cost: f64::decode(input)?,
            }),
            other => Err(CodecError::new(format!(
                "invalid JournalRecord tag {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_core::types::{Label, WorkerId};
    use cdas_crowd::arrival::LatencyModel;

    fn round_trip<T: BinCodec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).expect("decodes"), value);
    }

    fn demo_commit() -> BatchCommit {
        BatchCommit {
            job: JobId(2),
            seq: 1,
            hit: HitId(40),
            range: 4..8,
            outcome: HitOutcome {
                hit: HitId(40),
                verdicts: vec![QuestionVerdict {
                    question: QuestionId(5),
                    verdict: Verdict::Accepted {
                        label: Label::new("pos"),
                        confidence: 0.93,
                    },
                    answers_used: 3,
                    is_gold: false,
                    reasons: vec!["keyword".to_string()],
                }],
                workers_assigned: 5,
                estimated_mean_accuracy: Some(0.81),
                registry: {
                    let mut r = AccuracyRegistry::new();
                    r.set(WorkerId(3), 0.8, 2);
                    r
                },
                cost: 0.055,
            },
            charge: 0.055,
            completed_at: 12.5,
            first_verdict_at: Some(7.25),
            reclaimed_minutes: 1.5,
            answers_cancelled: 2,
            cancelled: true,
        }
    }

    fn demo_config() -> RunConfig {
        let crowd = CrowdSpec::clean(8, 0.85)
            .seed(7)
            .latency(LatencyModel::Exponential { mean: 5.0 });
        RunConfig {
            crowd,
            scheduler: SchedulerConfig::default(),
            mode: ExecutionMode::Parallel { shards: 2 },
            jobs: vec![ScheduledJob::named(
                JobKind::SentimentAnalytics,
                "demo",
                crate::fixtures::demo_questions(4, 1),
            )],
        }
    }

    #[test]
    fn scheduler_types_round_trip() {
        round_trip(JobId(9));
        round_trip(SchedulerConfig::default());
        round_trip(SchedulerConfig {
            policy: DispatchPolicy::Priority,
            seed: 99,
            max_ticks: 123,
            discovery: ArrivalDiscovery::Scan,
        });
        round_trip(ExecutionMode::EndOfTime);
        round_trip(ExecutionMode::Clocked);
        round_trip(ExecutionMode::Parallel { shards: 4 });
        round_trip(DispatchRecord {
            tick: 3,
            job: JobId(1),
            hit: HitId(17),
            workers: vec![WorkerId(2), WorkerId(5)],
            at: 8.75,
        });
    }

    #[test]
    fn engine_config_round_trips_all_variants() {
        round_trip(EngineConfig::default());
        let mut registry = AccuracyRegistry::new();
        registry.set(WorkerId(1), 0.9, 3);
        round_trip(EngineConfig {
            verification: VerificationStrategy::Probabilistic,
            termination: Some(TerminationStrategy::ExpMax),
            workers: WorkerCountPolicy::Predicted { mean_accuracy: 0.8 },
            required_accuracy: 0.9,
            accuracy_source: AccuracySource::Registry(registry),
            default_worker_accuracy: 0.7,
            domain_size: Some(3),
            reward: 0.02,
            cost_model: CostModel::default(),
        });
    }

    #[test]
    fn commits_and_records_round_trip() {
        round_trip(demo_commit());
        round_trip(JournalRecord::Commit(demo_commit()));
        round_trip(JournalRecord::RunStarted(demo_config()));
        round_trip(JournalRecord::Dispatch(DispatchRecord {
            tick: 2,
            job: JobId(1),
            hit: HitId(9),
            workers: vec![WorkerId(4), WorkerId(7)],
            at: 6.25,
        }));
        round_trip(JournalRecord::Charge {
            job: JobId(0),
            hit: HitId(3),
            amount: 0.011,
            at: 4.5,
        });
        round_trip(JournalRecord::Event(FleetEvent::FirstVerdict {
            job: JobId(1),
            at: 3.25,
        }));
        round_trip(JournalRecord::RunCompleted {
            cost: 1.25,
            questions: 64,
            makespan: 88.5,
        });
    }

    #[test]
    fn encode_commit_matches_the_owned_wire_form() {
        // The no-clone hot path must stay byte-identical to the owned encoding —
        // readers only ever see `JournalRecord` frames.
        let commit = demo_commit();
        let mut borrowed = Vec::new();
        JournalRecord::encode_commit(&commit, &mut borrowed);
        assert_eq!(borrowed, JournalRecord::Commit(commit).to_bytes());
    }

    #[test]
    fn snapshot_round_trips_and_digests_match() {
        let commit = demo_commit();
        let digest = CommitDigest::of(&commit);
        assert!(digest.matches(&commit));
        let mut tampered = commit.clone();
        tampered.outcome.cost += 0.01;
        assert!(!digest.matches(&tampered));
        round_trip(JournalRecord::Snapshot(JournalSnapshot {
            config: demo_config(),
            dispatches: vec![DispatchRecord {
                tick: 1,
                job: JobId(0),
                hit: HitId(0),
                workers: vec![WorkerId(0)],
                at: 0.0,
            }],
            commits: vec![digest],
            charged: 0.11,
        }));
    }

    #[test]
    fn service_records_round_trip() {
        for policy in [
            SyncPolicy::Never,
            SyncPolicy::Commits,
            SyncPolicy::Always,
            SyncPolicy::GroupCommit {
                max_batch: 8,
                max_delay_ms: 50,
            },
        ] {
            round_trip(policy);
        }
        round_trip(JournalConfig {
            max_segment_bytes: 4096,
            sync: SyncPolicy::GroupCommit {
                max_batch: 3,
                max_delay_ms: 125,
            },
            fail_writes_after: Some(999),
        });
        for decision in [
            AdmissionDecision::Accept,
            AdmissionDecision::Queue,
            AdmissionDecision::Reject,
        ] {
            round_trip(decision);
        }
        let forecast = AdmissionForecast {
            workers_per_hit: 5,
            batches: 3,
            worker_minutes: 75.0,
            cost: 0.165,
            makespan_minutes: f64::INFINITY,
        };
        round_trip(forecast);
        let config = ServiceConfig::new(
            CrowdSpec::clean(16, 0.85)
                .seed(3)
                .latency(LatencyModel::Exponential { mean: 5.0 }),
        )
        .budget(12.5)
        .max_shards(2);
        round_trip(JournalRecord::ServiceOpened(config));
        round_trip(JournalRecord::ServiceSubmitted(ServiceSubmission {
            ticket: 4,
            job: ScheduledJob::named(
                JobKind::SentimentAnalytics,
                "svc",
                crate::fixtures::demo_questions(4, 1),
            ),
            deadline_minutes: Some(45.0),
            decision: AdmissionDecision::Queue,
            forecast,
        }));
        round_trip(JournalRecord::ServiceEpochStarted {
            epoch: 2,
            tickets: vec![0, 3, 4],
            mode: ExecutionMode::Parallel { shards: 2 },
        });
        round_trip(JournalRecord::ServiceEpochCompleted {
            epoch: 2,
            cost: 1.75,
            questions: 48,
            makespan: 91.25,
        });
        round_trip(JournalRecord::ServiceClosed { total_cost: 3.5 });
    }

    #[test]
    fn service_records_are_commit_class() {
        assert!(JournalRecord::ServiceClosed { total_cost: 0.0 }.is_commit_class());
        assert!(JournalRecord::ServiceEpochStarted {
            epoch: 0,
            tickets: vec![],
            mode: ExecutionMode::Clocked,
        }
        .is_commit_class());
        assert!(!JournalRecord::Event(FleetEvent::FirstVerdict {
            job: JobId(0),
            at: 1.0,
        })
        .is_commit_class());
    }

    #[test]
    fn fleet_events_round_trip() {
        for event in [
            FleetEvent::JobStarted {
                job: JobId(0),
                name: "j".to_string(),
                at: 0.0,
            },
            FleetEvent::HitDispatched {
                job: JobId(0),
                hit: HitId(1),
                workers: 5,
                at: 1.0,
            },
            FleetEvent::QuestionTerminated {
                job: JobId(0),
                question: QuestionId(2),
                verdict: Verdict::NoAnswer,
                reasons: vec![],
                answers_used: 4,
                early: true,
                at: 2.0,
            },
            FleetEvent::FirstVerdict {
                job: JobId(0),
                at: 2.0,
            },
            FleetEvent::LeaseReclaimed {
                job: JobId(0),
                minutes: 3.5,
                at: 4.0,
            },
            FleetEvent::JobCompleted {
                job: JobId(0),
                questions: 8,
                accuracy: 0.875,
                at: 9.0,
            },
        ] {
            round_trip(event);
        }
    }
}
