//! Durable fleet: a segmented, append-only, CRC-checked write-ahead event journal.
//!
//! The fleet's ordered event stream becomes a log-structured source of truth in the
//! spirit of LogBase's WAL-as-data design: while a run executes, every dispatch, per-poll
//! charge, and batch commit is appended to an on-disk journal (via the scheduler's
//! [`crate::scheduler::RunObserver`] hook), framed as
//!
//! ```text
//! segment-000000.wal             segment-000001.wal
//! ┌────────────────┐             ┌────────────────┐
//! │ 16-byte header │             │ 16-byte header │
//! ├────────────────┤             ├────────────────┤
//! │ len │ crc │ pay │  rotation  │ len │ crc │ pay │
//! │ len │ crc │ pay │  ───────►  │ ...            │
//! │ ...            │             └────────────────┘
//! └────────────────┘
//! ```
//!
//! with a `u32` little-endian length, a `u32` CRC-32 (IEEE) of the payload, and the
//! payload itself (a [`JournalRecord`] encoded with the in-tree [`BinCodec`] — the no-op
//! serde shim plays no part in this path). Segments rotate at
//! [`JournalConfig::max_segment_bytes`]; [`Journal::compact`] folds everything into a
//! [`JournalRecord::Snapshot`] checkpoint and deletes the older segments.
//!
//! Recovery ([`crate::fleet::Fleet::recover`]) reads the journal back, rebuilds the run
//! configuration from the head record, and re-executes the run deterministically while
//! cross-checking (and completing) the journaled prefix — see [`recovery`].
//!
//! A record whose frame is cut short **at the end of the final segment** is a *torn
//! tail*: the expected wreckage of a crash mid-write, silently dropped (and reported via
//! [`JournalContents::torn_tail`]). The same damage anywhere else is corruption and
//! surfaces as [`CdasError::JournalCorrupt`].

mod record;
pub mod recovery;

pub use record::{CommitDigest, JournalRecord, JournalSnapshot, RunConfig};
pub use recovery::RecoveryReport;

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use cdas_core::codec::BinCodec;
use cdas_core::{CdasError, Result};

/// Magic + format version prefix of every segment file.
const SEGMENT_MAGIC: &[u8; 8] = b"CDASWAL1";
/// Segment header: magic followed by the segment's `u64` index.
const SEGMENT_HEADER_LEN: u64 = 16;
/// Frame header: `u32` payload length + `u32` CRC-32 of the payload.
const FRAME_HEADER_LEN: u64 = 8;
/// Appends accumulate in an in-memory buffer and reach the OS in one `write` per
/// sync point (LogBase-style batched appends — the write syscall per record, not the
/// fsync, dominates an unsynced append). The buffer also drains whenever it grows
/// past this many bytes, bounding memory between widely spaced syncs.
const BUFFER_FLUSH_BYTES: usize = 64 * 1024;

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup tables for slice-by-8, built at
/// compile time. `CRC32_TABLES[0]` is the classic per-byte table; `CRC32_TABLES[k]` is
/// the CRC of a byte followed by `k` zero bytes, letting [`crc32`] fold eight input
/// bytes per step instead of one — commit records alone put megabytes through this
/// checksum on a journaled run.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // cdas-allow(panic_freedom): const context — a bad index is a compile error
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            // cdas-allow(panic_freedom): const context — a bad index is a compile error
            let prev = tables[t - 1][i];
            // cdas-allow(panic_freedom): const context — a bad index is a compile error
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// One table lookup; `table` is always a literal `< 8` and the `& 0xFF` mask keeps the
/// byte index under 256, so both bounds checks fold away.
#[inline(always)]
fn crc_entry(table: usize, index: u32) -> u32 {
    CRC32_TABLES
        .get(table)
        .and_then(|t| t.get((index & 0xFF) as usize))
        .copied()
        .unwrap_or(0)
}

/// CRC-32 (IEEE) of a byte string — the checksum guarding every journal record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        // `chunks_exact(8)` only yields 8-byte windows, so the pattern always matches.
        let &[b0, b1, b2, b3, b4, b5, b6, b7] = chunk else {
            continue;
        };
        let lo = crc ^ u32::from_le_bytes([b0, b1, b2, b3]);
        crc = crc_entry(7, lo)
            ^ crc_entry(6, lo >> 8)
            ^ crc_entry(5, lo >> 16)
            ^ crc_entry(4, lo >> 24)
            ^ crc_entry(3, u32::from(b4))
            ^ crc_entry(2, u32::from(b5))
            ^ crc_entry(1, u32::from(b6))
            ^ crc_entry(0, u32::from(b7));
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ crc_entry(0, crc ^ u32::from(b));
    }
    !crc
}

/// When the journal forces its writes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never fsync explicitly (fastest; a crash may lose the OS-buffered suffix, which
    /// recovery treats as a torn tail).
    Never,
    /// Fsync after commit-class records (`RunStarted`, `Commit`, `Snapshot`,
    /// `RunCompleted`) — the default: a committed batch is never re-paid, while the
    /// chatty dispatch/charge records ride along with the next commit's sync.
    #[default]
    Commits,
    /// Fsync after every record (slowest, smallest possible torn tail).
    Always,
    /// Group commit in the LogBase style: commit-class records are batched and one
    /// fsync covers the whole group. The sync fires once `max_batch` commit-class
    /// records are pending, or once `max_delay_ms` of wall-clock time has passed since
    /// the first unsynced commit — whichever comes first. An explicit [`Journal::sync`]
    /// (the run-completion trailer always issues one) flushes any partial group, so a
    /// clean shutdown loses nothing; a crash can lose at most the open group, which
    /// recovery treats as an ordinary torn tail and re-executes.
    GroupCommit {
        /// Pending commit-class records that force a sync. `0` behaves like `1`.
        max_batch: usize,
        /// Maximum wall-clock milliseconds a commit may sit unsynced.
        max_delay_ms: u64,
    },
}

/// Configuration of a [`Journal`].
#[derive(Debug, Clone, PartialEq)]
pub struct JournalConfig {
    /// Rotate to a new segment once the current one reaches this many bytes (a record
    /// never straddles two segments; an oversized record gets a segment to itself).
    pub max_segment_bytes: u64,
    /// When to fsync.
    pub sync: SyncPolicy,
    /// Fault injection: silently stop persisting after this many bytes have been
    /// written through this handle, cutting the final write mid-frame — the byte-level
    /// "kill the writer" crash the durability proptests exercise. `None` (the default)
    /// disables the failpoint.
    pub fail_writes_after: Option<u64>,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            max_segment_bytes: 1 << 20,
            sync: SyncPolicy::default(),
            fail_writes_after: None,
        }
    }
}

/// What a full read of a journal directory yielded.
#[derive(Debug, Clone)]
pub struct JournalContents {
    /// Every intact record, in append order (a `Snapshot` appears in place).
    pub records: Vec<JournalRecord>,
    /// Whether a torn (incomplete or CRC-failing) frame was dropped from the end of the
    /// final segment — the signature of a crash mid-write.
    pub torn_tail: bool,
    /// Number of segment files read.
    pub segments: usize,
}

/// A segmented, append-only, CRC-checked on-disk event journal.
///
/// One journal directory holds one run: [`Journal::create`] wipes any previous segments,
/// and [`crate::fleet::Fleet::recover`] re-opens the directory with
/// [`Journal::open_append`] to complete a half-finished run in place.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    config: JournalConfig,
    segment_index: u64,
    /// `None` once the write-kill failpoint fired (the "process" is dead; writes drop).
    file: Option<File>,
    /// Logical bytes of the current segment: flushed plus still-buffered.
    segment_bytes: u64,
    /// Physical bytes handed to the OS through this handle (the failpoint counter).
    written_total: u64,
    /// Frames appended but not yet handed to the OS; drains at sync points, segment
    /// rotation, [`BUFFER_FLUSH_BYTES`], and drop.
    buffer: Vec<u8>,
    /// Reusable payload-encoding buffer: appends encode into it in place of a fresh
    /// allocation per record (commit payloads run to kilobytes).
    scratch: Vec<u8>,
    /// Commit-class records appended since the last fsync (group-commit accounting).
    pending_commits: usize,
    /// Wall-clock instant of the first unsynced commit-class record, if any.
    pending_since: Option<std::time::Instant>,
    /// Number of fsyncs issued through this handle (observability for tests/bench).
    syncs_performed: u64,
}

fn io_err(path: &Path, e: std::io::Error) -> CdasError {
    CdasError::JournalIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

fn segment_name(index: u64) -> String {
    format!("segment-{index:06}.wal")
}

/// Sorted (by index) list of `(index, path)` segment files in `dir`.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(index) = name
            .strip_prefix("segment-")
            .and_then(|rest| rest.strip_suffix(".wal"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_by_key(|(index, _)| *index);
    Ok(segments)
}

/// Outcome of scanning one segment file.
struct SegmentScan {
    records: Vec<JournalRecord>,
    /// Byte offset just past the last intact frame (where a re-opened journal resumes).
    valid_end: u64,
    /// Whether a torn frame was dropped at the segment's end.
    torn: bool,
}

/// Parse one segment. `is_last` controls torn-tail tolerance: damage that reaches the
/// end of the **final** segment is a crash signature and is dropped; the same damage in
/// an earlier segment (or damage that does *not* reach EOF) is corruption.
fn scan_segment(path: &Path, is_last: bool) -> Result<SegmentScan> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let corrupt = |offset: u64, detail: String| CdasError::JournalCorrupt {
        segment: path.display().to_string(),
        offset,
        detail,
    };
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        if is_last {
            // The crash landed inside the header write of a fresh segment: nothing of
            // value was lost (rotation only happens between records).
            return Ok(SegmentScan {
                records: Vec::new(),
                valid_end: 0,
                torn: true,
            });
        }
        return Err(corrupt(
            0,
            format!("segment shorter ({}) than its header", bytes.len()),
        ));
    }
    if bytes.get(..8) != Some(SEGMENT_MAGIC.as_slice()) {
        return Err(corrupt(0, "bad segment magic".to_string()));
    }
    let mut records = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN as usize;
    let mut torn = false;
    while offset < bytes.len() {
        let frame_start = offset as u64;
        let torn_or_corrupt = |detail: String, reaches_eof: bool| -> Result<()> {
            if is_last && reaches_eof {
                Ok(())
            } else {
                Err(corrupt(frame_start, detail))
            }
        };
        if bytes.len() - offset < FRAME_HEADER_LEN as usize {
            torn_or_corrupt(
                format!(
                    "{} stray bytes where a frame header belongs",
                    bytes.len() - offset
                ),
                true,
            )?;
            torn = true;
            break;
        }
        // The header-length check above guarantees 8 bytes remain; decoding
        // through a cursor keeps this branch panic-free even if it did not.
        let mut header = bytes.get(offset..).unwrap_or(&[]);
        let len = cdas_core::codec::take_array::<4>(&mut header)
            .map(u32::from_le_bytes)
            .map_err(|e| corrupt(frame_start, format!("frame header: {e}")))?
            as usize;
        let stored_crc = cdas_core::codec::take_array::<4>(&mut header)
            .map(u32::from_le_bytes)
            .map_err(|e| corrupt(frame_start, format!("frame header: {e}")))?;
        let payload_start = offset + FRAME_HEADER_LEN as usize;
        if bytes.len() - payload_start < len {
            torn_or_corrupt(
                format!(
                    "frame claims {len} payload bytes, only {} remain",
                    bytes.len() - payload_start
                ),
                true,
            )?;
            torn = true;
            break;
        }
        // The remaining-bytes check above bounds the range; an (unreachable)
        // miss reads as an empty payload and fails the CRC below.
        let payload = bytes.get(payload_start..payload_start + len).unwrap_or(&[]);
        if crc32(payload) != stored_crc {
            // A CRC failure is tolerated only when the damaged frame is the very last
            // thing in the final segment — a flipped byte mid-file is corruption even
            // there.
            torn_or_corrupt(
                "crc mismatch".to_string(),
                payload_start + len == bytes.len(),
            )?;
            torn = true;
            break;
        }
        let record = JournalRecord::from_bytes(payload)
            .map_err(|e| corrupt(frame_start, format!("undecodable record: {e}")))?;
        records.push(record);
        offset = payload_start + len;
    }
    Ok(SegmentScan {
        records,
        valid_end: offset.min(bytes.len()) as u64,
        torn,
    })
}

impl Journal {
    /// Create a fresh journal in `dir` (creating the directory, deleting any previous
    /// run's segments) and open segment 0 for appending.
    pub fn create(dir: impl AsRef<Path>, config: JournalConfig) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        for (_, path) in list_segments(&dir)? {
            std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
        }
        let mut journal = Journal {
            dir,
            config,
            segment_index: 0,
            file: None,
            segment_bytes: 0,
            written_total: 0,
            buffer: Vec::new(),
            scratch: Vec::new(),
            pending_commits: 0,
            pending_since: None,
            syncs_performed: 0,
        };
        journal.open_segment()?;
        Ok(journal)
    }

    /// Read the journal in `dir` and re-open it for appending, physically truncating a
    /// torn tail off the final segment first. Returns the journal positioned at the end
    /// together with everything intact that was read. `config.fail_writes_after` counts
    /// from this re-open, not from the original run's writes.
    pub fn open_append(
        dir: impl AsRef<Path>,
        config: JournalConfig,
    ) -> Result<(Self, JournalContents)> {
        let dir = dir.as_ref().to_path_buf();
        let segments = list_segments(&dir)?;
        let Some(&(last_index, ref last_path)) = segments.last() else {
            let journal = Journal::create(&dir, config)?;
            let contents = JournalContents {
                records: Vec::new(),
                torn_tail: false,
                segments: 0,
            };
            return Ok((journal, contents));
        };
        let mut records = Vec::new();
        let mut torn_tail = false;
        let mut last_valid_end = 0u64;
        let count = segments.len();
        for (i, (_, path)) in segments.iter().enumerate() {
            let is_last = i + 1 == count;
            let scan = scan_segment(path, is_last)?;
            records.extend(scan.records);
            if is_last {
                torn_tail = scan.torn;
                last_valid_end = scan.valid_end;
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(last_path)
            .map_err(|e| io_err(last_path, e))?;
        file.set_len(last_valid_end.max(SEGMENT_HEADER_LEN))
            .map_err(|e| io_err(last_path, e))?;
        let mut journal = Journal {
            dir,
            config,
            segment_index: last_index,
            file: Some(file),
            segment_bytes: last_valid_end.max(SEGMENT_HEADER_LEN),
            written_total: 0,
            buffer: Vec::new(),
            scratch: Vec::new(),
            pending_commits: 0,
            pending_since: None,
            syncs_performed: 0,
        };
        if last_valid_end < SEGMENT_HEADER_LEN {
            // The torn final segment did not even finish its header: rewrite it.
            journal.segment_bytes = 0;
            journal.write_header()?;
        } else if let Some(file) = journal.file.as_mut() {
            file.seek(SeekFrom::End(0))
                .map_err(|e| io_err(&journal.dir, e))?;
        }
        let contents = JournalContents {
            records,
            torn_tail,
            segments: count,
        };
        Ok((journal, contents))
    }

    /// Read every record of the journal in `dir` without opening it for writes,
    /// tolerating (and flagging) a torn tail on the final segment.
    pub fn read(dir: impl AsRef<Path>) -> Result<JournalContents> {
        let dir = dir.as_ref();
        let segments = list_segments(dir)?;
        let mut records = Vec::new();
        let mut torn_tail = false;
        let count = segments.len();
        for (i, (_, path)) in segments.iter().enumerate() {
            let scan = scan_segment(path, i + 1 == count)?;
            records.extend(scan.records);
            if i + 1 == count {
                torn_tail = scan.torn;
            }
        }
        Ok(JournalContents {
            records,
            torn_tail,
            segments: count,
        })
    }

    /// Append one record, rotating segments as configured and fsyncing according to the
    /// [`SyncPolicy`]. Silently drops the write (simulating a dead process) once the
    /// `fail_writes_after` failpoint has fired.
    pub fn append(&mut self, record: &JournalRecord) -> Result<()> {
        if self.file.is_none() {
            return Ok(());
        }
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        record.encode(&mut payload);
        let appended = self.append_payload(&payload, record.is_commit_class());
        self.scratch = payload;
        appended
    }

    /// Append a batch commit without materializing a [`JournalRecord`] — byte-for-byte
    /// the same journal as `append(&JournalRecord::Commit(commit.clone()))`, minus the
    /// deep clone of the outcome. This is the scheduler hot path: one commit per batch,
    /// each dragging verdicts and registry contributions.
    pub fn append_commit(&mut self, commit: &crate::scheduler::BatchCommit) -> Result<()> {
        if self.file.is_none() {
            return Ok(());
        }
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        JournalRecord::encode_commit(commit, &mut payload);
        let appended = self.append_payload(&payload, true);
        self.scratch = payload;
        appended
    }

    /// Frame an encoded record payload into the current segment and apply the
    /// [`SyncPolicy`]. The frame goes straight into the append buffer — no
    /// intermediate copy.
    fn append_payload(&mut self, payload: &[u8], commit_class: bool) -> Result<()> {
        let frame_len = payload.len() as u64 + FRAME_HEADER_LEN;
        if self.segment_bytes > SEGMENT_HEADER_LEN
            && self.segment_bytes + frame_len > self.config.max_segment_bytes
        {
            self.rotate()?;
        }
        self.buffer_bytes(&(payload.len() as u32).to_le_bytes());
        self.buffer_bytes(&crc32(payload).to_le_bytes());
        self.buffer_bytes(payload);
        if self.buffer.len() >= BUFFER_FLUSH_BYTES {
            self.flush_buffer()?;
        }
        match self.config.sync {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::Commits if commit_class => self.sync()?,
            SyncPolicy::GroupCommit {
                max_batch,
                max_delay_ms,
            } if commit_class => {
                self.pending_commits += 1;
                // cdas-allow(determinism): fsync pacing only, never feeds simulated state
                let now = std::time::Instant::now();
                let overdue = self.pending_since.is_some_and(|since| {
                    now.duration_since(since).as_millis() >= u128::from(max_delay_ms)
                });
                if self.pending_since.is_none() {
                    self.pending_since = Some(now);
                }
                if self.pending_commits >= max_batch.max(1) || overdue {
                    self.sync()?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage (no-op after a write kill).
    /// Drains the append buffer and closes any open group-commit batch.
    pub fn sync(&mut self) -> Result<()> {
        self.flush_buffer()?;
        if let Some(file) = self.file.as_mut() {
            file.sync_data().map_err(|e| io_err(&self.dir, e))?;
            self.syncs_performed += 1;
        }
        self.pending_commits = 0;
        self.pending_since = None;
        Ok(())
    }

    /// Number of fsyncs issued through this handle so far.
    pub fn syncs_performed(&self) -> u64 {
        self.syncs_performed
    }

    /// Commit-class records appended since the last fsync (the open group-commit
    /// batch; always `0` under the non-batching policies, which sync inline).
    pub fn pending_commits(&self) -> usize {
        self.pending_commits
    }

    /// The journal's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes handed to the OS through this handle (including segment headers);
    /// still-buffered frames are not counted until they flush.
    pub fn bytes_written(&self) -> u64 {
        self.written_total
    }

    /// Whether the write-kill failpoint has fired (all further appends are dropped).
    pub fn is_dead(&self) -> bool {
        self.file.is_none()
    }

    /// Fold the journal in `dir` into a snapshot: a single fresh segment holding one
    /// [`JournalRecord::Snapshot`] (run configuration + dispatch history + commit
    /// digests + folded charges) followed by any completed-run trailer records, then
    /// delete all older segments. Shrinks the journal — full commit payloads and
    /// per-poll charges collapse into digests and one total — while preserving exactly
    /// what recovery needs.
    pub fn compact(dir: impl AsRef<Path>) -> Result<()> {
        let dir = dir.as_ref();
        let contents = Journal::read(dir)?;
        let replay = recovery::JournalReplay::assemble(&contents)?;
        let snapshot = replay.to_snapshot();
        let old_segments = list_segments(dir)?;
        let next_index = old_segments.last().map_or(0, |(i, _)| i + 1);
        let mut journal = Journal {
            dir: dir.to_path_buf(),
            config: JournalConfig {
                // One segment regardless of size: a snapshot is atomic by design.
                max_segment_bytes: u64::MAX,
                sync: SyncPolicy::Never,
                fail_writes_after: None,
            },
            segment_index: next_index,
            file: None,
            segment_bytes: 0,
            written_total: 0,
            buffer: Vec::new(),
            scratch: Vec::new(),
            pending_commits: 0,
            pending_since: None,
            syncs_performed: 0,
        };
        journal.open_segment()?;
        journal.append(&JournalRecord::Snapshot(snapshot))?;
        for event in &replay.events {
            journal.append(&JournalRecord::Event(event.clone()))?;
        }
        if let Some((cost, questions, makespan)) = replay.completed {
            journal.append(&JournalRecord::RunCompleted {
                cost,
                questions,
                makespan,
            })?;
        }
        journal.sync()?;
        for (_, path) in old_segments {
            std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
        }
        Ok(())
    }

    /// Test helper: chop `bytes` off the end of the final segment, simulating a tail
    /// lost to a crash before it reached the disk. Returns the segment's new length.
    pub fn truncate_tail(dir: impl AsRef<Path>, bytes: u64) -> Result<u64> {
        let dir = dir.as_ref();
        let segments = list_segments(dir)?;
        let Some((_, path)) = segments.last() else {
            return Err(CdasError::JournalEmpty);
        };
        let len = std::fs::metadata(path).map_err(|e| io_err(path, e))?.len();
        let new_len = len.saturating_sub(bytes);
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.set_len(new_len).map_err(|e| io_err(path, e))?;
        Ok(new_len)
    }

    /// Test helper: flip one byte `offset_from_end` bytes before the end of the final
    /// segment (`1` = the very last byte), simulating tail corruption.
    pub fn corrupt_tail_byte(dir: impl AsRef<Path>, offset_from_end: u64) -> Result<()> {
        let dir = dir.as_ref();
        let segments = list_segments(dir)?;
        let Some((_, path)) = segments.last() else {
            return Err(CdasError::JournalEmpty);
        };
        let len = std::fs::metadata(path).map_err(|e| io_err(path, e))?.len();
        if offset_from_end == 0 || offset_from_end > len {
            return Err(CdasError::JournalIo {
                path: path.display().to_string(),
                detail: format!(
                    "cannot corrupt byte {offset_from_end} from the end of a {len}-byte segment"
                ),
            });
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        let pos = len - offset_from_end;
        file.seek(SeekFrom::Start(pos))
            .map_err(|e| io_err(path, e))?;
        let mut byte = [0u8];
        file.read_exact(&mut byte).map_err(|e| io_err(path, e))?;
        let [b] = &mut byte;
        *b ^= 0xFF;
        file.seek(SeekFrom::Start(pos))
            .map_err(|e| io_err(path, e))?;
        file.write_all(&byte).map_err(|e| io_err(path, e))?;
        Ok(())
    }

    fn segment_path(&self, index: u64) -> PathBuf {
        self.dir.join(segment_name(index))
    }

    fn open_segment(&mut self) -> Result<()> {
        let path = self.segment_path(self.segment_index);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        self.file = Some(file);
        self.segment_bytes = 0;
        self.write_header()
    }

    fn write_header(&mut self) -> Result<()> {
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.extend_from_slice(&self.segment_index.to_le_bytes());
        self.buffer_bytes(&header);
        Ok(())
    }

    /// Queue bytes for the current segment (dropped silently once the handle is dead).
    /// `segment_bytes` advances here — rotation decisions see the logical position —
    /// while `written_total` (the failpoint counter) advances only at flush.
    fn buffer_bytes(&mut self, bytes: &[u8]) {
        if self.file.is_none() {
            return;
        }
        self.buffer.extend_from_slice(bytes);
        self.segment_bytes += bytes.len() as u64;
    }

    /// Hand the buffered frames to the OS in one write (where the write-kill
    /// failpoint, which models a dead process, may truncate the stream mid-frame).
    fn flush_buffer(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let bytes = std::mem::take(&mut self.buffer);
        self.write_bytes(&bytes)
    }

    fn rotate(&mut self) -> Result<()> {
        self.sync()?;
        self.segment_index += 1;
        self.open_segment()
    }

    /// Write raw bytes through the write-kill failpoint: once `fail_writes_after` total
    /// bytes have been written, the remainder of this write (and everything after it)
    /// is silently dropped and the handle goes dead — exactly what the filesystem sees
    /// when the writing process is killed mid-`write`.
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        let Some(file) = self.file.as_mut() else {
            return Ok(());
        };
        let allowed = match self.config.fail_writes_after {
            None => bytes.len(),
            Some(limit) => {
                let remaining = limit.saturating_sub(self.written_total);
                usize::try_from(remaining)
                    .unwrap_or(usize::MAX)
                    .min(bytes.len())
            }
        };
        if allowed > 0 {
            // `allowed` is clamped to `bytes.len()` above.
            file.write_all(bytes.get(..allowed).unwrap_or(bytes))
                .map_err(|e| io_err(&self.dir, e))?;
            self.written_total += allowed as u64;
        }
        if allowed < bytes.len() {
            // Failpoint fired mid-frame: leave the partial prefix on disk (the torn
            // tail a real crash leaves) and drop the handle without flushing anything
            // further.
            self.file = None;
        }
        Ok(())
    }
}

impl Drop for Journal {
    /// A handle dropped without a final sync still hands its buffered frames to the
    /// OS, matching the unbuffered behavior readers relied on (a write-killed handle
    /// has `file: None`, so its buffer stays dropped — the simulated process is dead).
    /// A flush error here is crash wreckage recovery already tolerates: a torn tail.
    fn drop(&mut self) {
        let _ = self.flush_buffer();
    }
}

#[cfg(test)]
mod tests {
    use super::crc32;

    /// Byte-at-a-time reference: the textbook reflected CRC-32 the slice-by-8
    /// implementation must agree with on every input length (the length sweep
    /// exercises both the 8-byte fast path and the remainder tail).
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn crc32_matches_the_check_value() {
        // The standard CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_slice_by_8_agrees_with_the_reference_at_every_length() {
        let data: Vec<u8> = (0..256u32)
            .map(|i| (i.wrapping_mul(131).wrapping_add(7) % 251) as u8)
            .collect();
        for len in 0..data.len() {
            let slice = data.get(..len).unwrap_or(&[]);
            assert_eq!(crc32(slice), crc32_reference(slice), "length {len}");
        }
    }
}
