//! Crash recovery: deterministic re-execution cross-checked against the journaled
//! history.
//!
//! A fleet run is a pure function of its [`RunConfig`] (up to wall clock), so the
//! journal does not need to checkpoint live scheduler state: [`crate::fleet::Fleet::recover`]
//! rebuilds the fleet from the journal's head record and *re-executes* the run, while a
//! [`RecoveryObserver`] matches every dispatch, charge, and commit the re-execution
//! produces against the journaled prefix:
//!
//! - a replayed record that matches the journal's next record for that job **consumes**
//!   it — that work was already journaled (and, for commits, already paid for) by the
//!   crashed run, so it is *recovered*, not re-appended and not re-paid;
//! - a replayed record with no journaled counterpart is *resumed* work: appended to the
//!   journal exactly as a live run would have;
//! - a replayed record that **contradicts** its journaled counterpart aborts recovery
//!   with [`CdasError::JournalDiverged`] — the journal belongs to a different
//!   configuration or was tampered with.
//!
//! Matching is keyed per job (and per `(job, seq)` for commits) because parallel runs
//! interleave shards nondeterministically while every job's own record order stays
//! deterministic.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use cdas_core::types::HitId;
use cdas_core::{CdasError, Result};

use crate::fleet::FleetEvent;
use crate::scheduler::{BatchCommit, DispatchRecord, JobId, RunObserver};

use super::record::{CommitDigest, JournalRecord, JournalSnapshot, RunConfig};
use super::{Journal, JournalContents};

/// What recovery found in the journal and what the resumed run added.
///
/// `recovered` figures come from records already journaled by the crashed run — work
/// (and money) that was **not** redone; `resumed` figures come from records the resumed
/// run appended. For an intact journal of a finished run, `resumed` is zero and
/// [`was_complete`](Self::was_complete) is true.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a RecoveryReport says how much journaled work (and money) was reused; dropping it discards that accounting"]
pub struct RecoveryReport {
    /// The journal already held a `RunCompleted` trailer (recovery was a no-op resume).
    pub was_complete: bool,
    /// A torn frame was dropped from the journal's tail (crash signature).
    pub torn_tail: bool,
    /// Batch commits matched against the journal (work already paid by the crashed run).
    pub recovered_hits: usize,
    /// Batch commits the resumed run appended (work paid after recovery).
    pub resumed_hits: usize,
    /// Requester cost of the recovered commits.
    pub recovered_cost: f64,
    /// Requester cost of the resumed commits.
    pub resumed_cost: f64,
}

impl RecoveryReport {
    /// Total batch commits across the crashed and resumed portions.
    pub fn total_hits(&self) -> usize {
        self.recovered_hits + self.resumed_hits
    }

    /// Total requester cost across the crashed and resumed portions.
    pub fn total_cost(&self) -> f64 {
        self.recovered_cost + self.resumed_cost
    }
}

/// A journaled commit: full payload (live journal) or digest (after compaction).
#[derive(Debug, Clone)]
pub enum JournaledCommit {
    /// The full commit as appended by the run.
    Full(BatchCommit),
    /// A compaction digest standing in for the full commit.
    Digest(CommitDigest),
}

impl JournaledCommit {
    fn charge(&self) -> f64 {
        match self {
            JournaledCommit::Full(commit) => commit.charge,
            JournaledCommit::Digest(digest) => digest.charge,
        }
    }

    fn matches(&self, commit: &BatchCommit) -> bool {
        match self {
            JournaledCommit::Full(journaled) => journaled == commit,
            JournaledCommit::Digest(digest) => digest.matches(commit),
        }
    }
}

/// The journal's records, assembled into the per-job state recovery matches against.
#[derive(Debug)]
pub struct JournalReplay {
    /// The run configuration from the head record (`RunStarted` or `Snapshot`).
    pub config: RunConfig,
    /// Journaled dispatches, per job, in journal order.
    pub dispatches: Vec<VecDeque<DispatchRecord>>,
    /// Journaled commits keyed by `(job, seq)`.
    pub commits: BTreeMap<(usize, usize), JournaledCommit>,
    /// Journaled per-poll charges, per job, as `(hit, amount bits, at bits)`.
    pub charges: Vec<VecDeque<(HitId, u64, u64)>>,
    /// Charges folded away by a compaction snapshot.
    pub charged_before_snapshot: f64,
    /// Journaled fleet events (only present once a run finished, or partially if the
    /// crash hit the event flush).
    pub events: Vec<FleetEvent>,
    /// The `RunCompleted` trailer, if the run finished: `(cost, questions, makespan)`.
    pub completed: Option<(f64, usize, f64)>,
    /// Whether the journal's tail was torn.
    pub torn_tail: bool,
}

fn diverged(detail: impl Into<String>) -> CdasError {
    CdasError::JournalDiverged {
        detail: detail.into(),
    }
}

impl JournalReplay {
    /// Assemble a journal's records. Fails with [`CdasError::JournalEmpty`] when no head
    /// record is present and [`CdasError::JournalDiverged`] on structural inconsistencies
    /// (a second head record, a record for an unknown job, a duplicate commit).
    pub fn assemble(contents: &JournalContents) -> Result<Self> {
        let mut replay: Option<JournalReplay> = None;
        for record in &contents.records {
            match record {
                JournalRecord::RunStarted(config) => {
                    if replay.is_some() {
                        return Err(diverged("second RunStarted record"));
                    }
                    replay = Some(JournalReplay::empty(config.clone(), contents.torn_tail));
                }
                JournalRecord::Snapshot(snapshot) => {
                    // A snapshot replaces everything before it (compaction writes it as
                    // the first record of the surviving segment).
                    replay = Some(JournalReplay::from_snapshot(snapshot, contents.torn_tail)?);
                }
                JournalRecord::Dispatch(dispatch) => {
                    let replay = replay
                        .as_mut()
                        .ok_or_else(|| diverged("Dispatch before a head record"))?;
                    let job = dispatch.job.0;
                    replay
                        .dispatches
                        .get_mut(job)
                        .ok_or_else(|| diverged(format!("dispatch for unknown job {job}")))?
                        .push_back(dispatch.clone());
                }
                JournalRecord::Charge {
                    job,
                    hit,
                    amount,
                    at,
                } => {
                    let replay = replay
                        .as_mut()
                        .ok_or_else(|| diverged("Charge before a head record"))?;
                    replay
                        .charges
                        .get_mut(job.0)
                        .ok_or_else(|| diverged(format!("charge for unknown job {}", job.0)))?
                        .push_back((*hit, amount.to_bits(), at.to_bits()));
                }
                JournalRecord::Commit(commit) => {
                    let replay = replay
                        .as_mut()
                        .ok_or_else(|| diverged("Commit before a head record"))?;
                    if commit.job.0 >= replay.dispatches.len() {
                        return Err(diverged(format!("commit for unknown job {}", commit.job.0)));
                    }
                    let key = (commit.job.0, commit.seq);
                    if replay
                        .commits
                        .insert(key, JournaledCommit::Full(commit.clone()))
                        .is_some()
                    {
                        return Err(diverged(format!(
                            "duplicate commit for job {} seq {}",
                            key.0, key.1
                        )));
                    }
                }
                JournalRecord::Event(event) => {
                    let replay = replay
                        .as_mut()
                        .ok_or_else(|| diverged("Event before a head record"))?;
                    replay.events.push(event.clone());
                }
                JournalRecord::RunCompleted {
                    cost,
                    questions,
                    makespan,
                } => {
                    let replay = replay
                        .as_mut()
                        .ok_or_else(|| diverged("RunCompleted before a head record"))?;
                    replay.completed = Some((*cost, *questions, *makespan));
                }
                JournalRecord::ServiceOpened(_)
                | JournalRecord::ServiceSubmitted(_)
                | JournalRecord::ServiceEpochStarted { .. }
                | JournalRecord::ServiceEpochCompleted { .. }
                | JournalRecord::ServiceClosed { .. } => {
                    return Err(diverged(
                        "service manifest record inside a run journal \
                         (the directories were mixed up)",
                    ));
                }
            }
        }
        replay.ok_or(CdasError::JournalEmpty)
    }

    fn empty(config: RunConfig, torn_tail: bool) -> Self {
        let jobs = config.jobs.len();
        JournalReplay {
            config,
            dispatches: (0..jobs).map(|_| VecDeque::new()).collect(),
            commits: BTreeMap::new(),
            charges: (0..jobs).map(|_| VecDeque::new()).collect(),
            charged_before_snapshot: 0.0,
            events: Vec::new(),
            completed: None,
            torn_tail,
        }
    }

    fn from_snapshot(snapshot: &JournalSnapshot, torn_tail: bool) -> Result<Self> {
        let mut replay = JournalReplay::empty(snapshot.config.clone(), torn_tail);
        for dispatch in &snapshot.dispatches {
            let job = dispatch.job.0;
            replay
                .dispatches
                .get_mut(job)
                .ok_or_else(|| diverged(format!("snapshot dispatch for unknown job {job}")))?
                .push_back(dispatch.clone());
        }
        for digest in &snapshot.commits {
            let key = (digest.job.0, digest.seq);
            if key.0 >= replay.charges.len() {
                return Err(diverged(format!(
                    "snapshot commit for unknown job {}",
                    key.0
                )));
            }
            if replay
                .commits
                .insert(key, JournaledCommit::Digest(digest.clone()))
                .is_some()
            {
                return Err(diverged(format!(
                    "duplicate snapshot commit for job {} seq {}",
                    key.0, key.1
                )));
            }
        }
        replay.charged_before_snapshot = snapshot.charged;
        Ok(replay)
    }

    /// Fold this replay into a compaction snapshot (full commits become digests, charge
    /// queues fold into one total).
    pub fn to_snapshot(&self) -> JournalSnapshot {
        let mut charged = self.charged_before_snapshot;
        for queue in &self.charges {
            for &(_, amount_bits, _) in queue {
                charged += f64::from_bits(amount_bits);
            }
        }
        JournalSnapshot {
            config: self.config.clone(),
            dispatches: self
                .dispatches
                .iter()
                .flat_map(|queue| queue.iter().cloned())
                .collect(),
            commits: self
                .commits
                .values()
                .map(|commit| match commit {
                    JournaledCommit::Full(full) => CommitDigest::of(full),
                    JournaledCommit::Digest(digest) => digest.clone(),
                })
                .collect(),
            charged,
        }
    }
}

struct RecoveryState {
    journal: Journal,
    dispatches: Vec<VecDeque<DispatchRecord>>,
    commits: BTreeMap<(usize, usize), JournaledCommit>,
    charges: Vec<VecDeque<(HitId, u64, u64)>>,
    journaled_events: Vec<FleetEvent>,
    completed: Option<(f64, usize, f64)>,
    torn_tail: bool,
    divergence: Option<String>,
    failure: Option<CdasError>,
    recovered_hits: usize,
    resumed_hits: usize,
    recovered_cost: f64,
    resumed_cost: f64,
}

impl RecoveryState {
    fn append(&mut self, record: &JournalRecord) {
        if self.failure.is_some() {
            return;
        }
        if let Err(e) = self.journal.append(record) {
            self.failure = Some(e);
        }
    }

    fn diverge(&mut self, detail: String) {
        if self.divergence.is_none() {
            self.divergence = Some(detail);
        }
    }
}

/// The [`RunObserver`] that performs recovery: matches the re-execution's records
/// against the journaled prefix and appends only the missing suffix.
pub struct RecoveryObserver {
    state: Mutex<RecoveryState>,
}

impl RecoveryObserver {
    /// Lock the recovery state, recovering from poisoning: every critical
    /// section either matches one record against the journaled prefix or
    /// records a first-divergence/first-failure, so a panic mid-section
    /// cannot tear an invariant — at worst recovery reports a divergence it
    /// would have reported anyway.
    fn locked(&self) -> std::sync::MutexGuard<'_, RecoveryState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Build the observer over a re-opened journal and the assembled replay state.
    pub fn new(journal: Journal, replay: JournalReplay) -> Self {
        RecoveryObserver {
            state: Mutex::new(RecoveryState {
                journal,
                dispatches: replay.dispatches,
                commits: replay.commits,
                charges: replay.charges,
                journaled_events: replay.events,
                completed: replay.completed,
                torn_tail: replay.torn_tail,
                divergence: None,
                failure: None,
                recovered_hits: 0,
                resumed_hits: 0,
                recovered_cost: 0.0,
                resumed_cost: 0.0,
            }),
        }
    }

    /// Finish recovery after the re-execution completed: verify no journaled record was
    /// left unconsumed, reconcile the event stream (append only the missing suffix), and
    /// append the `RunCompleted` trailer when the journal lacked one.
    pub fn finish(
        &self,
        events: &[FleetEvent],
        cost: f64,
        questions: usize,
        makespan: f64,
    ) -> Result<RecoveryReport> {
        let mut state = self.locked();
        if let Some(failure) = state.failure.take() {
            return Err(failure);
        }
        if let Some(detail) = state.divergence.take() {
            return Err(diverged(detail));
        }
        let leftover_dispatches: usize = state.dispatches.iter().map(VecDeque::len).sum();
        let leftover_charges: usize = state.charges.iter().map(VecDeque::len).sum();
        let leftover_commits = state.commits.len();
        if leftover_dispatches + leftover_charges + leftover_commits > 0 {
            return Err(diverged(format!(
                "replay never produced {leftover_dispatches} journaled dispatches, \
                 {leftover_commits} commits, {leftover_charges} charges"
            )));
        }
        if state.journaled_events.len() > events.len() {
            return Err(diverged(format!(
                "journal holds {} events, replay produced only {}",
                state.journaled_events.len(),
                events.len()
            )));
        }
        for (i, event) in events.iter().enumerate() {
            if let Some(journaled) = state.journaled_events.get(i) {
                if journaled != event {
                    return Err(diverged(format!("event {i} does not match the journal")));
                }
            } else {
                let record = JournalRecord::Event(event.clone());
                state.append(&record);
            }
        }
        let was_complete = match state.completed {
            Some((journaled_cost, journaled_questions, journaled_makespan)) => {
                if journaled_cost.to_bits() != cost.to_bits()
                    || journaled_questions != questions
                    || journaled_makespan.to_bits() != makespan.to_bits()
                {
                    return Err(diverged(format!(
                        "RunCompleted mismatch: journal says cost {journaled_cost} / \
                         {journaled_questions} questions / makespan {journaled_makespan}, \
                         replay got {cost} / {questions} / {makespan}"
                    )));
                }
                true
            }
            None => {
                state.append(&JournalRecord::RunCompleted {
                    cost,
                    questions,
                    makespan,
                });
                false
            }
        };
        if let Some(failure) = state.failure.take() {
            return Err(failure);
        }
        state.journal.sync()?;
        Ok(RecoveryReport {
            was_complete,
            torn_tail: state.torn_tail,
            recovered_hits: state.recovered_hits,
            resumed_hits: state.resumed_hits,
            recovered_cost: state.recovered_cost,
            resumed_cost: state.resumed_cost,
        })
    }
}

impl RunObserver for RecoveryObserver {
    fn on_dispatch(&self, dispatch: &DispatchRecord) {
        let mut state = self.locked();
        let job = dispatch.job.0;
        match state.dispatches.get_mut(job).and_then(VecDeque::pop_front) {
            Some(journaled) => {
                if journaled != *dispatch {
                    state.diverge(format!(
                        "dispatch for job {job} (hit {}) does not match the journaled one (hit {})",
                        dispatch.hit.0, journaled.hit.0
                    ));
                }
            }
            None => {
                let record = JournalRecord::Dispatch(dispatch.clone());
                state.append(&record);
            }
        }
    }

    fn on_charge(&self, job: JobId, hit: HitId, amount: f64, at: f64) {
        let mut state = self.locked();
        match state.charges.get_mut(job.0).and_then(VecDeque::pop_front) {
            Some((journaled_hit, amount_bits, at_bits)) => {
                if journaled_hit != hit
                    || amount_bits != amount.to_bits()
                    || at_bits != at.to_bits()
                {
                    state.diverge(format!(
                        "charge for job {} (hit {}, amount {amount}) does not match the journal",
                        job.0, hit.0
                    ));
                }
            }
            None => {
                let record = JournalRecord::Charge {
                    job,
                    hit,
                    amount,
                    at,
                };
                state.append(&record);
            }
        }
    }

    fn on_commit(&self, commit: &BatchCommit) {
        let mut state = self.locked();
        let key = (commit.job.0, commit.seq);
        match state.commits.remove(&key) {
            Some(journaled) => {
                if journaled.matches(commit) {
                    state.recovered_hits += 1;
                    state.recovered_cost += journaled.charge();
                } else {
                    state.diverge(format!(
                        "commit for job {} seq {} does not match the journaled one",
                        key.0, key.1
                    ));
                }
            }
            None => {
                // Append before touching the resumed counters: the record is
                // what makes the commit durable, and a failed write must not
                // leave state claiming a hit the journal never saw.
                let record = JournalRecord::Commit(commit.clone());
                state.append(&record);
                state.resumed_hits += 1;
                state.resumed_cost += commit.charge;
            }
        }
    }
}

/// The [`RunObserver`] a live journaled run attaches: a straight append sink with
/// failure capture (an I/O error mid-run is reported when the run finishes — observers
/// cannot propagate errors through the scheduler hot path).
pub struct JournalSink {
    journal: Mutex<Journal>,
    failure: Mutex<Option<CdasError>>,
}

impl JournalSink {
    /// Wrap a journal.
    pub fn new(journal: Journal) -> Self {
        JournalSink {
            journal: Mutex::new(journal),
            failure: Mutex::new(None),
        }
    }

    /// Lock one of the sink's mutexes, recovering from poisoning: both
    /// critical sections are a single optional-slot write or one journal
    /// call, so a panic mid-section cannot tear an invariant.
    fn relock<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        lock.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Append a record, capturing (rather than propagating) any I/O error.
    pub fn append(&self, record: &JournalRecord) {
        // Holding `failure` across the append is deliberate: it serializes
        // appends and guarantees the *first* failure wins the slot.
        // cdas-allow(lock_discipline): failure guard intentionally spans the append so the first I/O error wins
        let mut failure = Self::relock(&self.failure);
        if failure.is_some() {
            return;
        }
        let mut journal = Self::relock(&self.journal);
        if let Err(e) = journal.append(record) {
            *failure = Some(e);
        }
    }

    /// Append a commit through the no-clone path, capturing any I/O error.
    /// Commits are the heaviest records on the hot path (verdicts plus registry
    /// contributions); deep-cloning one just to serialize it dominated the
    /// journal's wall overhead.
    fn append_commit(&self, commit: &BatchCommit) {
        // cdas-allow(lock_discipline): failure guard intentionally spans the append so the first I/O error wins
        let mut failure = Self::relock(&self.failure);
        if failure.is_some() {
            return;
        }
        let mut journal = Self::relock(&self.journal);
        if let Err(e) = journal.append_commit(commit) {
            *failure = Some(e);
        }
    }

    /// Fsync the journal, capturing any error.
    pub fn sync(&self) {
        // cdas-allow(lock_discipline): failure guard intentionally spans the fsync so the first I/O error wins
        let mut failure = Self::relock(&self.failure);
        if failure.is_some() {
            return;
        }
        let mut journal = Self::relock(&self.journal);
        if let Err(e) = journal.sync() {
            *failure = Some(e);
        }
    }

    /// The first I/O error captured, if any (the run's result surfaces it).
    pub fn take_failure(&self) -> Option<CdasError> {
        Self::relock(&self.failure).take()
    }
}

impl RunObserver for JournalSink {
    fn on_dispatch(&self, dispatch: &DispatchRecord) {
        self.append(&JournalRecord::Dispatch(dispatch.clone()));
    }

    fn on_charge(&self, job: JobId, hit: HitId, amount: f64, at: f64) {
        self.append(&JournalRecord::Charge {
            job,
            hit,
            amount,
            at,
        });
    }

    fn on_commit(&self, commit: &BatchCommit) {
        self.append_commit(commit);
    }
}
