//! Scoring engine output against ground truth: the "real accuracy" of the evaluation
//! figures, plus the auxiliary measures the paper reports (no-answer ratio, answers
//! consumed, cost), and the per-job / fleet-wide rollups emitted by the multi-job
//! scheduler ([`JobReport`], [`FleetReport`]).

use std::collections::BTreeMap;

use cdas_core::types::{Label, QuestionId};
use cdas_crowd::question::CrowdQuestion;
use serde::{Deserialize, Serialize};

use crate::engine::HitOutcome;
use crate::job_manager::JobKind;
use crate::scheduler::{DispatchRecord, JobId};

/// Accuracy-style metrics of one or more HIT outcomes against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Real accuracy over *all* real questions: unanswered questions count as wrong
    /// (this is the quantity plotted in Figures 7, 8, 13, 16, 18).
    pub accuracy: f64,
    /// Accuracy restricted to the questions that received an accepted answer.
    pub accuracy_over_answered: f64,
    /// Fraction of real questions with no accepted answer (Figures 9 and 10).
    pub no_answer_ratio: f64,
    /// Mean number of answers consumed per real question (Figure 12).
    pub mean_answers_used: f64,
    /// Number of real questions scored.
    pub questions: usize,
    /// Total engine-side cost of the scored HITs, in dollars.
    pub cost: f64,
}

/// Score one HIT outcome against the ground truth carried by its questions.
pub fn score_hit(questions: &[CrowdQuestion], outcome: &HitOutcome) -> AccuracyReport {
    score_hits(std::iter::once((questions, outcome)))
}

/// Score several HIT outcomes together (e.g. every HIT of a query window).
pub fn score_hits<'a>(
    runs: impl IntoIterator<Item = (&'a [CrowdQuestion], &'a HitOutcome)>,
) -> AccuracyReport {
    let mut total = 0usize;
    let mut correct = 0usize;
    let mut answered = 0usize;
    let mut answered_correct = 0usize;
    let mut answers_used = 0usize;
    let mut cost = 0.0f64;
    for (questions, outcome) in runs {
        let truth: BTreeMap<QuestionId, &Label> =
            questions.iter().map(|q| (q.id, &q.ground_truth)).collect();
        cost += outcome.cost;
        for verdict in outcome.real_verdicts() {
            let Some(expected) = truth.get(&verdict.question) else {
                continue;
            };
            total += 1;
            answers_used += verdict.answers_used;
            if let Some(label) = verdict.verdict.label() {
                answered += 1;
                if &label == expected {
                    correct += 1;
                    answered_correct += 1;
                }
            }
        }
    }
    AccuracyReport {
        accuracy: ratio(correct, total),
        accuracy_over_answered: ratio(answered_correct, answered),
        no_answer_ratio: ratio(total - answered, total),
        mean_answers_used: if total == 0 {
            0.0
        } else {
            answers_used as f64 / total as f64
        },
        questions: total,
        cost,
    }
}

/// One job's rollup in a fleet run: its accuracy metrics plus the scheduling facts
/// (contention waits, distinct workers consumed) the single-job path has no notion of.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// The job's scheduler id.
    pub job: JobId,
    /// Human-readable job name.
    pub name: String,
    /// The job kind (TSA or IT).
    pub kind: JobKind,
    /// The job's dispatch priority.
    pub priority: u8,
    /// Accuracy/cost metrics over all the job's batches.
    pub report: AccuracyReport,
    /// Number of HIT batches the job ran.
    pub hits: usize,
    /// Ticks the job spent waiting because the shared pool had too few free workers.
    pub ticks_waited: usize,
    /// Distinct workers that served this job across all its batches.
    pub distinct_workers: usize,
    /// Simulated time of the job's first final verdict on a real question (clocked runs
    /// only; `None` for unclocked runs or when nothing was accepted).
    pub time_to_first_verdict: Option<f64>,
    /// Simulated time the job's last batch completed (0.0 for unclocked runs).
    pub completed_at: f64,
    /// Simulated worker-minutes handed back to the pool by this job's mid-flight
    /// cancellations (0.0 for unclocked runs — cancelling at the end of time reclaims
    /// nothing).
    pub reclaimed_minutes: f64,
    /// Per-question answers of this job cancelled before delivery (never paid).
    pub answers_cancelled: usize,
}

/// One platform shard's rollup in a parallel fleet run ([`JobScheduler::run_parallel`]):
/// which jobs the shard owned, how much simulated and real time its thread spent, and its
/// share of the fleet's questions, dollars and reclaimed minutes. Sequential runs
/// (`run`/`run_clocked`) report themselves as the single shard 0 of the same shape — they
/// are the one-shard special case of the parallel code path.
///
/// [`JobScheduler::run_parallel`]: crate::scheduler::JobScheduler::run_parallel
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// The shard index (also the platform shard and thread index).
    pub shard: usize,
    /// The jobs assigned to this shard, by global [`JobId`], in submission order.
    pub jobs: Vec<JobId>,
    /// Scheduler ticks (arrival events) this shard processed.
    pub ticks: usize,
    /// Simulated minutes from the shard's start to its last batch completion.
    pub makespan: f64,
    /// Real questions this shard resolved.
    pub questions: usize,
    /// Dollars this shard's platform charged.
    pub cost: f64,
    /// Simulated worker-minutes this shard's cancellations reclaimed.
    pub reclaimed_minutes: f64,
    /// Per-question answers this shard cancelled before delivery.
    pub answers_cancelled: usize,
    /// Real (host wall-clock) seconds the shard's thread spent inside its run loop.
    /// Nondeterministic by nature — compare reports with
    /// [`FleetReport::ignoring_wall_clock`] when asserting run equivalence.
    pub wall_seconds: f64,
}

/// The fleet-wide rollup of one scheduler run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-job reports, in submission order.
    pub jobs: Vec<JobReport>,
    /// Metrics over every batch of every job.
    pub fleet: AccuracyReport,
    /// Per-shard rollups: one entry per OS thread in a parallel run, exactly one entry
    /// (shard 0) for the sequential `run`/`run_clocked` paths.
    pub shards: Vec<ShardReport>,
    /// Number of scheduler ticks the fleet took, summed across shards. In a clocked run
    /// every tick advances simulated time to the next answer arrival, so ticks are
    /// *events*, not time — see [`makespan`](Self::makespan).
    pub ticks: usize,
    /// Simulated minutes from the start of the run to the completion of its last batch
    /// (0.0 for unclocked runs, which have no notion of time).
    pub makespan: f64,
    /// Simulated worker-minutes reclaimed fleet-wide by mid-flight cancellations.
    pub reclaimed_minutes: f64,
    /// Per-question answers cancelled before delivery across the fleet (never paid).
    pub answers_cancelled: usize,
    /// The dispatch timeline (which job published which HIT with which workers, when).
    pub dispatches: Vec<DispatchRecord>,
    /// Workers with an estimate in the shared registry after the run.
    pub registry_size: usize,
    /// Shared-registry cache reads served from the cached snapshot.
    pub cache_hits: u64,
    /// Shared-registry cache reads that had to rebuild the snapshot.
    pub cache_misses: u64,
}

impl FleetReport {
    /// Fleet throughput: real questions resolved per scheduler tick.
    pub fn questions_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.fleet.questions as f64 / self.ticks as f64
        }
    }

    /// Total dollars spent across the fleet.
    pub fn total_cost(&self) -> f64 {
        self.fleet.cost
    }

    /// The largest number of HITs that were in flight during one tick.
    pub fn max_concurrent_hits(&self) -> usize {
        let mut per_tick: BTreeMap<usize, usize> = BTreeMap::new();
        for d in &self.dispatches {
            *per_tick.entry(d.tick).or_default() += 1;
        }
        per_tick.values().copied().max().unwrap_or(0)
    }

    /// Fleet throughput in real questions per simulated minute (0 for unclocked runs).
    pub fn questions_per_minute(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.fleet.questions as f64 / self.makespan
        }
    }

    /// Fraction of shared-registry reads served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// How much the run's *sharding* compressed the work: the sum of per-shard loop times
    /// divided by the slowest single shard. This is the speedup an ideally-parallel host
    /// would realize over running the same shards back to back — a measure of how evenly
    /// the work was partitioned (`1.0` for one shard, approaching the shard count under
    /// perfect balance), **not** the achieved end-to-end ratio: each shard times only its
    /// own loop, so an oversubscribed or single-core host that serializes the threads
    /// still reports the partition-balance number. For measured wall-clock against
    /// `run_clocked`, see `benches/parallel.rs`, which times whole runs.
    pub fn parallel_speedup(&self) -> f64 {
        let total: f64 = self.shards.iter().map(|s| s.wall_seconds).sum();
        let slowest = self
            .shards
            .iter()
            .map(|s| s.wall_seconds)
            .fold(0.0, f64::max);
        if slowest <= 0.0 {
            1.0
        } else {
            total / slowest
        }
    }

    /// A copy with every host-scheduling-dependent field normalized away.
    ///
    /// Two report fields depend on the host, not the simulation: each shard's
    /// `wall_seconds`, and the cache hit/**miss split** — under a parallel run, whether a
    /// shared-registry read lands before or after a concurrent write (which invalidates
    /// the cached snapshot) is decided by thread interleaving. The *total* read count is
    /// deterministic, so the split is folded into `cache_hits` rather than dropped.
    /// Equivalence assertions (e.g. "a 1-shard parallel run is byte-identical to
    /// `run_clocked`") compare through this.
    pub fn ignoring_wall_clock(&self) -> FleetReport {
        let mut copy = self.clone();
        for shard in &mut copy.shards {
            shard.wall_seconds = 0.0;
        }
        copy.cache_hits += copy.cache_misses;
        copy.cache_misses = 0;
        copy
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QuestionVerdict;
    use cdas_core::accuracy::AccuracyRegistry;
    use cdas_core::types::{AnswerDomain, HitId};
    use cdas_core::verification::Verdict;

    fn question(id: u64, truth: &str, gold: bool) -> CrowdQuestion {
        let q = CrowdQuestion::new(
            QuestionId(id),
            AnswerDomain::from_strs(&["a", "b", "c"]),
            Label::from(truth),
        );
        if gold {
            q.as_gold()
        } else {
            q
        }
    }

    fn verdict(id: u64, answer: Option<&str>, used: usize, gold: bool) -> QuestionVerdict {
        QuestionVerdict {
            question: QuestionId(id),
            verdict: match answer {
                Some(a) => Verdict::Accepted {
                    label: Label::from(a),
                    confidence: 0.9,
                },
                None => Verdict::NoAnswer,
            },
            answers_used: used,
            is_gold: gold,
            reasons: Vec::new(),
        }
    }

    fn outcome(verdicts: Vec<QuestionVerdict>, cost: f64) -> HitOutcome {
        HitOutcome {
            hit: HitId(0),
            verdicts,
            workers_assigned: 5,
            estimated_mean_accuracy: Some(0.75),
            registry: AccuracyRegistry::new(),
            cost,
        }
    }

    #[test]
    fn scoring_counts_unanswered_as_wrong() {
        let questions = vec![
            question(0, "a", false),
            question(1, "b", false),
            question(2, "c", false),
            question(3, "a", true), // gold: excluded from scoring
        ];
        let o = outcome(
            vec![
                verdict(0, Some("a"), 5, false), // correct
                verdict(1, Some("c"), 5, false), // wrong
                verdict(2, None, 5, false),      // unanswered
                verdict(3, Some("a"), 5, true),  // gold, ignored
            ],
            0.25,
        );
        let report = score_hit(&questions, &o);
        assert_eq!(report.questions, 3);
        assert!((report.accuracy - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.accuracy_over_answered - 0.5).abs() < 1e-12);
        assert!((report.no_answer_ratio - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.mean_answers_used, 5.0);
        assert_eq!(report.cost, 0.25);
    }

    #[test]
    fn scoring_multiple_hits_accumulates() {
        let q1 = vec![question(0, "a", false)];
        let o1 = outcome(vec![verdict(0, Some("a"), 3, false)], 0.1);
        let q2 = vec![question(1, "b", false)];
        let o2 = outcome(vec![verdict(1, Some("a"), 7, false)], 0.2);
        let report = score_hits(vec![(q1.as_slice(), &o1), (q2.as_slice(), &o2)]);
        assert_eq!(report.questions, 2);
        assert!((report.accuracy - 0.5).abs() < 1e-12);
        assert!((report.mean_answers_used - 5.0).abs() < 1e-12);
        assert!((report.cost - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_zeroes() {
        let report = score_hits(Vec::<(&[CrowdQuestion], &HitOutcome)>::new());
        assert_eq!(report.questions, 0);
        assert_eq!(report.accuracy, 0.0);
        assert_eq!(report.no_answer_ratio, 0.0);
    }

    fn shard(shard: usize, wall_seconds: f64) -> ShardReport {
        ShardReport {
            shard,
            jobs: vec![JobId(shard)],
            ticks: 10,
            makespan: 5.0,
            questions: 4,
            cost: 0.1,
            reclaimed_minutes: 0.0,
            answers_cancelled: 0,
            wall_seconds,
        }
    }

    fn fleet_with_shards(shards: Vec<ShardReport>) -> FleetReport {
        FleetReport {
            jobs: Vec::new(),
            fleet: score_hits(Vec::<(&[CrowdQuestion], &HitOutcome)>::new()),
            shards,
            ticks: 0,
            makespan: 0.0,
            reclaimed_minutes: 0.0,
            answers_cancelled: 0,
            dispatches: Vec::new(),
            registry_size: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    #[test]
    fn parallel_speedup_is_total_over_slowest() {
        // Four balanced shards → ~4x; one dominant shard → barely above 1.
        let balanced = fleet_with_shards(vec![
            shard(0, 1.0),
            shard(1, 1.0),
            shard(2, 1.0),
            shard(3, 1.0),
        ]);
        assert!((balanced.parallel_speedup() - 4.0).abs() < 1e-12);
        let skewed = fleet_with_shards(vec![shard(0, 4.0), shard(1, 0.1)]);
        assert!((skewed.parallel_speedup() - 4.1 / 4.0).abs() < 1e-12);
        let sequential = fleet_with_shards(vec![shard(0, 2.0)]);
        assert_eq!(sequential.parallel_speedup(), 1.0);
        let empty = fleet_with_shards(Vec::new());
        assert_eq!(empty.parallel_speedup(), 1.0);
    }

    #[test]
    fn ignoring_wall_clock_zeroes_only_the_timings() {
        let report = fleet_with_shards(vec![shard(0, 1.5), shard(1, 2.5)]);
        let normalized = report.ignoring_wall_clock();
        assert!(normalized.shards.iter().all(|s| s.wall_seconds == 0.0));
        assert_eq!(normalized.shards.len(), report.shards.len());
        assert_eq!(normalized.shards[1].ticks, report.shards[1].ticks);
        assert_eq!(normalized.shards[1].jobs, report.shards[1].jobs);
        // Two runs that differ only in wall clock compare equal through it.
        let other = fleet_with_shards(vec![shard(0, 9.0), shard(1, 0.001)]);
        assert_eq!(normalized, other.ignoring_wall_clock());
    }

    #[test]
    fn ignoring_wall_clock_folds_the_racy_cache_split_into_the_total() {
        // The hit/miss split depends on thread interleaving in a parallel run; only
        // hits + misses is simulation-determined. Same total, different split → equal.
        let mut a = fleet_with_shards(vec![shard(0, 1.0)]);
        a.cache_hits = 19;
        a.cache_misses = 7;
        let mut b = fleet_with_shards(vec![shard(0, 2.0)]);
        b.cache_hits = 20;
        b.cache_misses = 6;
        assert_eq!(a.ignoring_wall_clock(), b.ignoring_wall_clock());
        assert_eq!(a.ignoring_wall_clock().cache_hits, 26);
        assert_eq!(a.ignoring_wall_clock().cache_misses, 0);
        // A different total still diverges.
        let mut c = fleet_with_shards(vec![shard(0, 1.0)]);
        c.cache_hits = 20;
        c.cache_misses = 7;
        assert_ne!(a.ignoring_wall_clock(), c.ignoring_wall_clock());
    }
}
