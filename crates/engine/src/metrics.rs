//! Scoring engine output against ground truth: the "real accuracy" of the evaluation
//! figures, plus the auxiliary measures the paper reports (no-answer ratio, answers
//! consumed, cost).

use std::collections::BTreeMap;

use cdas_core::types::{Label, QuestionId};
use cdas_crowd::question::CrowdQuestion;
use serde::{Deserialize, Serialize};

use crate::engine::HitOutcome;

/// Accuracy-style metrics of one or more HIT outcomes against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Real accuracy over *all* real questions: unanswered questions count as wrong
    /// (this is the quantity plotted in Figures 7, 8, 13, 16, 18).
    pub accuracy: f64,
    /// Accuracy restricted to the questions that received an accepted answer.
    pub accuracy_over_answered: f64,
    /// Fraction of real questions with no accepted answer (Figures 9 and 10).
    pub no_answer_ratio: f64,
    /// Mean number of answers consumed per real question (Figure 12).
    pub mean_answers_used: f64,
    /// Number of real questions scored.
    pub questions: usize,
    /// Total engine-side cost of the scored HITs, in dollars.
    pub cost: f64,
}

/// Score one HIT outcome against the ground truth carried by its questions.
pub fn score_hit(questions: &[CrowdQuestion], outcome: &HitOutcome) -> AccuracyReport {
    score_hits(std::iter::once((questions, outcome)))
}

/// Score several HIT outcomes together (e.g. every HIT of a query window).
pub fn score_hits<'a>(
    runs: impl IntoIterator<Item = (&'a [CrowdQuestion], &'a HitOutcome)>,
) -> AccuracyReport {
    let mut total = 0usize;
    let mut correct = 0usize;
    let mut answered = 0usize;
    let mut answered_correct = 0usize;
    let mut answers_used = 0usize;
    let mut cost = 0.0f64;
    for (questions, outcome) in runs {
        let truth: BTreeMap<QuestionId, &Label> =
            questions.iter().map(|q| (q.id, &q.ground_truth)).collect();
        cost += outcome.cost;
        for verdict in outcome.real_verdicts() {
            let Some(expected) = truth.get(&verdict.question) else {
                continue;
            };
            total += 1;
            answers_used += verdict.answers_used;
            if let Some(label) = verdict.verdict.label() {
                answered += 1;
                if &label == expected {
                    correct += 1;
                    answered_correct += 1;
                }
            }
        }
    }
    AccuracyReport {
        accuracy: ratio(correct, total),
        accuracy_over_answered: ratio(answered_correct, answered),
        no_answer_ratio: ratio(total - answered, total),
        mean_answers_used: if total == 0 {
            0.0
        } else {
            answers_used as f64 / total as f64
        },
        questions: total,
        cost,
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QuestionVerdict;
    use cdas_core::accuracy::AccuracyRegistry;
    use cdas_core::types::{AnswerDomain, HitId};
    use cdas_core::verification::Verdict;

    fn question(id: u64, truth: &str, gold: bool) -> CrowdQuestion {
        let q = CrowdQuestion::new(
            QuestionId(id),
            AnswerDomain::from_strs(&["a", "b", "c"]),
            Label::from(truth),
        );
        if gold {
            q.as_gold()
        } else {
            q
        }
    }

    fn verdict(id: u64, answer: Option<&str>, used: usize, gold: bool) -> QuestionVerdict {
        QuestionVerdict {
            question: QuestionId(id),
            verdict: match answer {
                Some(a) => Verdict::Accepted {
                    label: Label::from(a),
                    confidence: 0.9,
                },
                None => Verdict::NoAnswer,
            },
            answers_used: used,
            is_gold: gold,
            reasons: Vec::new(),
        }
    }

    fn outcome(verdicts: Vec<QuestionVerdict>, cost: f64) -> HitOutcome {
        HitOutcome {
            hit: HitId(0),
            verdicts,
            workers_assigned: 5,
            estimated_mean_accuracy: Some(0.75),
            registry: AccuracyRegistry::new(),
            cost,
        }
    }

    #[test]
    fn scoring_counts_unanswered_as_wrong() {
        let questions = vec![
            question(0, "a", false),
            question(1, "b", false),
            question(2, "c", false),
            question(3, "a", true), // gold: excluded from scoring
        ];
        let o = outcome(
            vec![
                verdict(0, Some("a"), 5, false), // correct
                verdict(1, Some("c"), 5, false), // wrong
                verdict(2, None, 5, false),      // unanswered
                verdict(3, Some("a"), 5, true),  // gold, ignored
            ],
            0.25,
        );
        let report = score_hit(&questions, &o);
        assert_eq!(report.questions, 3);
        assert!((report.accuracy - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.accuracy_over_answered - 0.5).abs() < 1e-12);
        assert!((report.no_answer_ratio - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.mean_answers_used, 5.0);
        assert_eq!(report.cost, 0.25);
    }

    #[test]
    fn scoring_multiple_hits_accumulates() {
        let q1 = vec![question(0, "a", false)];
        let o1 = outcome(vec![verdict(0, Some("a"), 3, false)], 0.1);
        let q2 = vec![question(1, "b", false)];
        let o2 = outcome(vec![verdict(1, Some("a"), 7, false)], 0.2);
        let report = score_hits(vec![(q1.as_slice(), &o1), (q2.as_slice(), &o2)]);
        assert_eq!(report.questions, 2);
        assert!((report.accuracy - 0.5).abs() < 1e-12);
        assert!((report.mean_answers_used - 5.0).abs() < 1e-12);
        assert!((report.cost - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_zeroes() {
        let report = score_hits(Vec::<(&[CrowdQuestion], &HitOutcome)>::new());
        assert_eq!(report.questions, 0);
        assert_eq!(report.accuracy, 0.0);
        assert_eq!(report.no_answer_ratio, 0.0);
    }
}
