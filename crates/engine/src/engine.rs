//! The two-phase crowdsourcing engine (§2.1, Algorithm 1).
//!
//! **Phase 1** — the engine renders the HIT from the query template, decides how many
//! workers to request (either a fixed count supplied by an experiment, or the prediction
//! model's `g(C)` given a mean worker accuracy), and publishes it to the crowd platform.
//!
//! **Phase 2** — answers come back asynchronously. The engine first scores the *gold*
//! questions to estimate each participating worker's accuracy (Algorithm 4), then verifies
//! every real question with the configured strategy: Half-Voting, Majority-Voting, or the
//! probability-based verification model — the latter either offline (all answers) or online
//! with one of the early-termination strategies, in which case the HIT is cancelled once
//! every question has terminated. [`collect_batch`](CrowdsourcingEngine::collect_batch)
//! polls at the end of time, so it has already paid for every answer by the time it
//! verifies; the **clocked** phase 2 in [`crate::clocked`] polls incrementally under a
//! [`cdas_crowd::clock::SimClock`] and cancels *mid-flight*, so the saved assignments are
//! genuinely never delivered, never paid for, and their workers are freed while the HIT
//! is still running.
//!
//! The two phases are **re-entrant per batch**: [`CrowdsourcingEngine::publish_batch`]
//! returns a [`BatchTicket`] and [`CrowdsourcingEngine::collect_batch`] redeems it, so a
//! scheduler can keep many batches — from many jobs — in flight at once and interleave
//! publishes with ingestion ([`crate::scheduler`]). [`CrowdsourcingEngine::run_hit`] is the
//! single-batch composition of the two.

use std::collections::BTreeMap;

use cdas_core::accuracy::AccuracyRegistry;
use cdas_core::economics::CostModel;
use cdas_core::online::{OnlineProcessor, TerminationStrategy};
use cdas_core::prediction::PredictionModel;
use cdas_core::sampling::SamplingEstimator;
use cdas_core::sharing::AccuracyCache;
use cdas_core::types::{HitId, Label, Observation, QuestionId, Vote, WorkerId};
use cdas_core::verification::probabilistic::ProbabilisticVerifier;
use cdas_core::verification::voting::{HalfVoting, MajorityVoting};
use cdas_core::verification::{Verdict, Verifier};
use cdas_core::{CdasError, Result};
use cdas_crowd::hit::HitRequest;
use cdas_crowd::platform::{CrowdPlatform, WorkerAnswer};
use cdas_crowd::question::CrowdQuestion;
use serde::{Deserialize, Serialize};

/// Which answer-verification strategy the engine applies to each question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerificationStrategy {
    /// Accept an answer returned by at least half of the assigned workers.
    HalfVoting,
    /// Accept the strictly most-voted answer.
    MajorityVoting,
    /// The paper's probability-based verification model.
    Probabilistic,
}

impl VerificationStrategy {
    /// All strategies in the order the paper's figures list them.
    pub const ALL: [VerificationStrategy; 3] = [
        VerificationStrategy::MajorityVoting,
        VerificationStrategy::HalfVoting,
        VerificationStrategy::Probabilistic,
    ];

    /// Display name matching the figures.
    pub fn name(&self) -> &'static str {
        match self {
            VerificationStrategy::HalfVoting => "Half-Voting",
            VerificationStrategy::MajorityVoting => "Majority-Voting",
            VerificationStrategy::Probabilistic => "Verification",
        }
    }
}

/// How many workers to request per HIT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkerCountPolicy {
    /// A fixed assignment count (used by the "vary the number of workers" experiments).
    Fixed(usize),
    /// Use the prediction model: the refined estimate `g(C)` for the configured required
    /// accuracy, computed from the given mean worker accuracy.
    Predicted {
        /// The mean worker accuracy `μ` the prediction model uses.
        mean_accuracy: f64,
    },
}

/// Where the verification model gets per-worker accuracies from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccuracySource {
    /// Estimate from the gold questions inside the HIT (the production path, §3.3).
    GoldSampling,
    /// Use an externally supplied registry (e.g. the simulator's oracle, or estimates from
    /// previous HITs). Used by experiments that isolate verification from sampling noise.
    Registry(AccuracyRegistry),
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Verification strategy.
    pub verification: VerificationStrategy,
    /// Online early-termination strategy; `None` waits for all answers (offline).
    pub termination: Option<TerminationStrategy>,
    /// Worker-count policy.
    pub workers: WorkerCountPolicy,
    /// The user-required accuracy `C` (drives the prediction model and reporting).
    pub required_accuracy: f64,
    /// Source of per-worker accuracies for verification.
    pub accuracy_source: AccuracySource,
    /// Accuracy assumed for a worker with no estimate (new worker, no gold answers).
    pub default_worker_accuracy: f64,
    /// Fixed answer-domain size `m`; `None` estimates it per observation (Theorem 5).
    pub domain_size: Option<usize>,
    /// Reward per assignment (the `m_c` handed to the platform request).
    pub reward: f64,
    /// Cost model used for engine-side accounting.
    pub cost_model: CostModel,
}

impl EngineConfig {
    /// The configuration a job implies over the engine defaults: its required accuracy
    /// `C` and the size of its answer domain. Both the job manager's processing plans and
    /// the scheduler's [`crate::scheduler::ScheduledJob::new`] derive through here, so the
    /// rule cannot drift between the two paths.
    pub fn for_job(required_accuracy: f64, domain_size: usize) -> Self {
        EngineConfig {
            required_accuracy,
            domain_size: Some(domain_size),
            ..EngineConfig::default()
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            verification: VerificationStrategy::Probabilistic,
            termination: None,
            workers: WorkerCountPolicy::Fixed(5),
            required_accuracy: 0.9,
            accuracy_source: AccuracySource::GoldSampling,
            default_worker_accuracy: 0.7,
            domain_size: None,
            reward: 0.01,
            cost_model: CostModel::default(),
        }
    }
}

/// A phase-1 receipt: one published-but-not-yet-ingested HIT batch.
///
/// Returned by [`CrowdsourcingEngine::publish_batch`] (or
/// [`publish_batch_to`](CrowdsourcingEngine::publish_batch_to)) and redeemed by
/// [`collect_batch`](CrowdsourcingEngine::collect_batch). Holding a ticket is what makes
/// the engine re-entrant: any number of tickets — across jobs — may be outstanding against
/// one platform, and each is ingested independently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use = "a BatchTicket is the only handle for collecting its HIT; dropping it strands the published batch"]
pub struct BatchTicket {
    /// The platform HIT id phase 2 will poll.
    pub hit: HitId,
    /// The batch's questions (kept so phase 2 can score gold questions and verify).
    pub questions: Vec<CrowdQuestion>,
    /// Number of workers the HIT was assigned to.
    pub workers_assigned: usize,
}

/// The verdict for one question of a HIT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestionVerdict {
    /// The question.
    pub question: QuestionId,
    /// The accepted answer (or `NoAnswer` for indecisive voting).
    pub verdict: Verdict,
    /// How many answers were consumed before the decision (equals the assignment count for
    /// offline processing, fewer when early termination fired).
    pub answers_used: usize,
    /// Whether this was a gold (sampling) question.
    pub is_gold: bool,
    /// Reason keywords collected from workers that voted for the accepted answer.
    pub reasons: Vec<String>,
}

/// The outcome of one HIT run end to end through the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HitOutcome {
    /// The platform HIT id.
    pub hit: HitId,
    /// Per-question verdicts (gold questions included, flagged).
    pub verdicts: Vec<QuestionVerdict>,
    /// Number of workers the HIT was assigned to.
    pub workers_assigned: usize,
    /// The mean worker accuracy estimated from gold questions (when sampling was used).
    pub estimated_mean_accuracy: Option<f64>,
    /// The per-worker accuracy registry the verification used.
    pub registry: AccuracyRegistry,
    /// Dollars charged by the platform for this HIT.
    pub cost: f64,
}

impl HitOutcome {
    /// The verdicts of the real (non-gold) questions.
    pub fn real_verdicts(&self) -> impl Iterator<Item = &QuestionVerdict> {
        self.verdicts.iter().filter(|v| !v.is_gold)
    }

    /// Fraction of real questions with no accepted answer (the paper's no-answer ratio).
    pub fn no_answer_ratio(&self) -> f64 {
        let real: Vec<_> = self.real_verdicts().collect();
        if real.is_empty() {
            return 0.0;
        }
        real.iter().filter(|v| !v.verdict.is_accepted()).count() as f64 / real.len() as f64
    }

    /// Average number of answers consumed per real question (Figure 12's metric).
    pub fn mean_answers_used(&self) -> f64 {
        let real: Vec<_> = self.real_verdicts().collect();
        if real.is_empty() {
            return 0.0;
        }
        real.iter().map(|v| v.answers_used).sum::<usize>() as f64 / real.len() as f64
    }
}

/// The two-phase crowdsourcing engine.
#[derive(Debug, Clone)]
pub struct CrowdsourcingEngine {
    config: EngineConfig,
}

impl CrowdsourcingEngine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        CrowdsourcingEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Phase-1 worker-count decision.
    pub fn decide_workers(&self) -> Result<usize> {
        match self.config.workers {
            WorkerCountPolicy::Fixed(n) => {
                if n == 0 {
                    return Err(CdasError::NonPositive {
                        what: "worker count",
                    });
                }
                Ok(n)
            }
            WorkerCountPolicy::Predicted { mean_accuracy } => {
                let model = PredictionModel::new(mean_accuracy)?;
                Ok(model.refined_workers(self.config.required_accuracy)? as usize)
            }
        }
    }

    /// Run one HIT end to end: publish, collect answers, estimate accuracies, verify.
    ///
    /// `questions` is the HIT batch (gold questions flagged); the platform delivers answers
    /// in arrival order, which the online path consumes incrementally. Equivalent to
    /// [`publish_batch`](Self::publish_batch) immediately followed by
    /// [`collect_batch`](Self::collect_batch).
    pub fn run_hit<P: CrowdPlatform>(
        &self,
        platform: &mut P,
        questions: Vec<CrowdQuestion>,
    ) -> Result<HitOutcome> {
        let ticket = self.publish_batch(platform, questions)?;
        self.collect_batch(platform, ticket)
    }

    /// Phase 1: publish one batch, letting the platform pick the workers.
    ///
    /// The worker count comes from the configured [`WorkerCountPolicy`]. The returned
    /// [`BatchTicket`] is redeemed later by [`collect_batch`](Self::collect_batch); any
    /// number of tickets may be outstanding at once.
    pub fn publish_batch<P: CrowdPlatform>(
        &self,
        platform: &mut P,
        questions: Vec<CrowdQuestion>,
    ) -> Result<BatchTicket> {
        if questions.is_empty() {
            return Err(CdasError::EmptyObservation);
        }
        let workers = self.decide_workers()?;
        let request = HitRequest::new(questions.clone(), workers, self.config.reward);
        let hit = platform.publish(request);
        Ok(BatchTicket {
            hit,
            questions,
            workers_assigned: workers,
        })
    }

    /// Phase 1, lease-aware: publish one batch to an explicit worker set.
    ///
    /// Used by the multi-job scheduler after checking `workers` out of a
    /// [`cdas_crowd::lease::PoolLedger`], so batches in flight concurrently never share a
    /// worker. The assignment count is `workers.len()` — the caller already sized the
    /// lease (usually via [`decide_workers`](Self::decide_workers)).
    pub fn publish_batch_to<P: CrowdPlatform>(
        &self,
        platform: &mut P,
        questions: Vec<CrowdQuestion>,
        workers: &[WorkerId],
    ) -> Result<BatchTicket> {
        if questions.is_empty() {
            return Err(CdasError::EmptyObservation);
        }
        if workers.is_empty() {
            return Err(CdasError::NonPositive {
                what: "worker count",
            });
        }
        let request = HitRequest::new(questions.clone(), workers.len(), self.config.reward);
        let hit = platform.publish_to(request, workers);
        Ok(BatchTicket {
            hit,
            questions,
            workers_assigned: workers.len(),
        })
    }

    /// Phase 2: ingest one published batch — poll its answers, estimate worker accuracies
    /// from the gold questions, verify every question, and account for cost.
    pub fn collect_batch<P: CrowdPlatform>(
        &self,
        platform: &mut P,
        ticket: BatchTicket,
    ) -> Result<HitOutcome> {
        self.finish_batch(platform, ticket, None)
    }

    /// Phase 2 with cross-job accuracy sharing: like [`collect_batch`](Self::collect_batch),
    /// but gold estimates from this batch are absorbed into the shared registry behind
    /// `cache`, and verification weights votes with the *fleet-wide* estimates — so a
    /// worker's accuracy learned in job A immediately reweights their votes in job B.
    ///
    /// An [`AccuracySource::Registry`] in the config is honoured by seeding the shared
    /// registry with its entries as injected estimates (gold-sampled estimates, from any
    /// job, always outrank them).
    pub fn collect_batch_cached<P: CrowdPlatform>(
        &self,
        platform: &mut P,
        ticket: BatchTicket,
        cache: &AccuracyCache,
    ) -> Result<HitOutcome> {
        self.finish_batch(platform, ticket, Some(cache))
    }

    /// Shared phase-2 implementation.
    fn finish_batch<P: CrowdPlatform>(
        &self,
        platform: &mut P,
        ticket: BatchTicket,
        cache: Option<&AccuracyCache>,
    ) -> Result<HitOutcome> {
        let BatchTicket {
            hit,
            questions,
            workers_assigned: workers,
        } = ticket;
        // Cost is measured around this batch's own poll/cancel, so interleaved collects of
        // other batches (the scheduler path) cannot leak charges into this HIT.
        let cost_before = platform.total_cost();
        let answers = platform.poll(hit, f64::INFINITY);

        // Phase 2a: estimate worker accuracy from gold questions.
        let (registry, estimated_mean) = match cache {
            None => self.build_registry(&questions, &answers),
            Some(cache) => {
                // An explicitly configured registry (simulation oracle, estimates from a
                // previous deployment) seeds the fleet registry as *injected* estimates:
                // sampled gold estimates always outrank it, per the absorb policy.
                if let AccuracySource::Registry(r) = &self.config.accuracy_source {
                    cache.shared().absorb(r);
                }
                let (local, local_mean) = self.sample_gold(&questions, &answers);
                cache.shared().absorb(&local);
                let registry = cache
                    .snapshot()
                    .with_default_accuracy(self.config.default_worker_accuracy);
                let mean = local_mean.or_else(|| registry.mean_accuracy());
                (registry, mean)
            }
        };

        // Phase 2b: verify every question.
        let mut per_question: BTreeMap<QuestionId, Vec<&WorkerAnswer>> = BTreeMap::new();
        for a in &answers {
            per_question.entry(a.question).or_default().push(a);
        }
        let mut verdicts = Vec::with_capacity(questions.len());
        let mut online_consumed_max = 0usize;
        for question in &questions {
            let votes = per_question.get(&question.id).cloned().unwrap_or_default();
            let (verdict, answers_used, reasons) =
                self.verify_question(question, &votes, workers, &registry, estimated_mean)?;
            online_consumed_max = online_consumed_max.max(answers_used);
            verdicts.push(QuestionVerdict {
                question: question.id,
                verdict,
                answers_used,
                is_gold: question.is_gold,
                reasons,
            });
        }

        // Early termination at the HIT level: if every question terminated before the last
        // worker, cancel the remainder (the paper's footnote 3 — cancelled assignments are
        // not paid). This end-of-time path polled every answer before verifying, so the
        // cancel reclaims nothing and the HIT costs exactly what the platform charged —
        // the engine no longer re-prices at the consumed fraction, which used to make
        // `HitOutcome::cost` disagree with `platform.total_cost()`. Real savings come from
        // the clocked path ([`crate::clocked`]), which stops polling at termination.
        if self.config.termination.is_some() && online_consumed_max < workers {
            // An end-of-time cancel reclaims nothing by construction, so the
            // receipt is deliberately discarded.
            let _ = platform.cancel(hit, f64::INFINITY);
        }
        let cost = platform.total_cost() - cost_before;

        Ok(HitOutcome {
            hit,
            verdicts,
            workers_assigned: workers,
            estimated_mean_accuracy: estimated_mean,
            registry,
            cost,
        })
    }

    /// Build the accuracy registry for phase 2 from the configured source.
    fn build_registry(
        &self,
        questions: &[CrowdQuestion],
        answers: &[WorkerAnswer],
    ) -> (AccuracyRegistry, Option<f64>) {
        match &self.config.accuracy_source {
            AccuracySource::Registry(r) => {
                let mean = r.mean_accuracy();
                (
                    r.clone()
                        .with_default_accuracy(self.config.default_worker_accuracy),
                    mean,
                )
            }
            AccuracySource::GoldSampling => {
                let (registry, mean) = self.sample_gold(questions, answers);
                (
                    registry.with_default_accuracy(self.config.default_worker_accuracy),
                    mean,
                )
            }
        }
    }

    /// Algorithm 4 over one batch: estimate each participating worker's accuracy from the
    /// gold questions. Returns the raw per-batch registry (no default accuracy applied)
    /// and the estimated mean, if any gold answers arrived.
    fn sample_gold(
        &self,
        questions: &[CrowdQuestion],
        answers: &[WorkerAnswer],
    ) -> (AccuracyRegistry, Option<f64>) {
        let truth_by_question: BTreeMap<QuestionId, &Label> = questions
            .iter()
            .filter(|q| q.is_gold)
            .map(|q| (q.id, &q.ground_truth))
            .collect();
        let mut estimator = SamplingEstimator::new();
        for a in answers {
            if let Some(truth) = truth_by_question.get(&a.question) {
                estimator.record(a.worker, a.question, &a.label, truth);
            }
        }
        let mean = estimator.stats().ok().map(|s| s.mean);
        (estimator.to_registry(), mean)
    }

    /// Verify a single question from its votes (in arrival order). Shared with the clocked
    /// collector ([`crate::clocked`]), which uses it for the strategies that have no
    /// online termination signal and must verify once all answers have arrived.
    pub(crate) fn verify_question(
        &self,
        question: &CrowdQuestion,
        votes: &[&WorkerAnswer],
        workers_assigned: usize,
        registry: &AccuracyRegistry,
        estimated_mean: Option<f64>,
    ) -> Result<(Verdict, usize, Vec<String>)> {
        if votes.is_empty() {
            return Ok((Verdict::NoAnswer, 0, Vec::new()));
        }
        let accuracy_of = |worker: WorkerId| {
            registry
                .accuracy_of(worker)
                .unwrap_or(self.config.default_worker_accuracy)
        };
        let to_vote = |a: &&WorkerAnswer| {
            Vote::new(a.worker, a.label.clone(), accuracy_of(a.worker))
                .with_keywords(a.keywords.iter().cloned())
        };
        let domain_size = self
            .config
            .domain_size
            .unwrap_or_else(|| question.domain.size());

        let (verdict, answers_used) = match (self.config.verification, self.config.termination) {
            (VerificationStrategy::HalfVoting, _) => {
                let observation = Observation::from_votes(votes.iter().map(to_vote).collect());
                (
                    HalfVoting::new(workers_assigned).decide(&observation)?,
                    votes.len(),
                )
            }
            (VerificationStrategy::MajorityVoting, _) => {
                let observation = Observation::from_votes(votes.iter().map(to_vote).collect());
                (MajorityVoting::new().decide(&observation)?, votes.len())
            }
            (VerificationStrategy::Probabilistic, None) => {
                let observation = Observation::from_votes(votes.iter().map(to_vote).collect());
                let verifier = ProbabilisticVerifier::with_domain_size(domain_size);
                (verifier.decide(&observation)?, votes.len())
            }
            (VerificationStrategy::Probabilistic, Some(strategy)) => {
                let mean = estimated_mean
                    .or_else(|| registry.mean_accuracy())
                    .unwrap_or(self.config.default_worker_accuracy);
                let mut processor = OnlineProcessor::new(workers_assigned, mean, strategy)?
                    .with_domain_size(domain_size);
                let outcome = processor.run_until_termination(votes.iter().map(to_vote))?;
                let verdict = match outcome.best {
                    Some((label, confidence)) => Verdict::Accepted { label, confidence },
                    None => Verdict::NoAnswer,
                };
                (verdict, outcome.answers_received)
            }
        };

        // Reasons: keywords from the workers (among the consumed prefix) whose vote matches
        // the accepted answer.
        let reasons = match verdict.label() {
            Some(accepted) => votes
                .iter()
                .take(answers_used)
                .filter(|a| &a.label == accepted)
                .flat_map(|a| a.keywords.iter().cloned())
                .collect(),
            None => Vec::new(),
        };
        Ok((verdict, answers_used, reasons))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_core::types::AnswerDomain;
    use cdas_crowd::pool::{PoolConfig, WorkerPool};
    use cdas_crowd::SimulatedPlatform;

    fn sentiment_question(id: u64, gold: bool) -> CrowdQuestion {
        let q = CrowdQuestion::new(
            QuestionId(id),
            AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
            Label::from("Positive"),
        )
        .with_reasons(vec!["acting".to_string()]);
        if gold {
            q.as_gold()
        } else {
            q
        }
    }

    fn batch(real: u64, gold: u64) -> Vec<CrowdQuestion> {
        let mut qs: Vec<CrowdQuestion> = (0..gold).map(|i| sentiment_question(i, true)).collect();
        qs.extend((gold..gold + real).map(|i| sentiment_question(i, false)));
        qs
    }

    fn platform(accuracy: f64, seed: u64) -> SimulatedPlatform {
        let pool = WorkerPool::generate(&PoolConfig::clean(60, accuracy, seed));
        SimulatedPlatform::new(pool, CostModel::default(), seed)
    }

    #[test]
    fn decide_workers_fixed_and_predicted() {
        let fixed = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(7),
            ..EngineConfig::default()
        });
        assert_eq!(fixed.decide_workers().unwrap(), 7);
        let zero = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(0),
            ..EngineConfig::default()
        });
        assert!(zero.decide_workers().is_err());
        let predicted = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Predicted {
                mean_accuracy: 0.75,
            },
            required_accuracy: 0.95,
            ..EngineConfig::default()
        });
        let n = predicted.decide_workers().unwrap();
        assert!(n % 2 == 1 && n >= 5);
    }

    #[test]
    fn offline_probabilistic_hit_answers_most_questions_correctly() {
        let engine = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(9),
            verification: VerificationStrategy::Probabilistic,
            ..EngineConfig::default()
        });
        let mut p = platform(0.8, 3);
        let outcome = engine.run_hit(&mut p, batch(20, 5)).unwrap();
        assert_eq!(outcome.workers_assigned, 9);
        assert_eq!(outcome.verdicts.len(), 25);
        assert!(outcome.estimated_mean_accuracy.unwrap() > 0.6);
        assert!(outcome.cost > 0.0);
        let correct = outcome
            .real_verdicts()
            .filter(|v| v.verdict.label().map(|l| l.as_str()) == Some("Positive"))
            .count();
        assert!(correct >= 18, "only {correct}/20 correct");
        assert_eq!(outcome.no_answer_ratio(), 0.0);
        // Reasons echo the keyword of correct workers.
        assert!(outcome
            .real_verdicts()
            .any(|v| v.reasons.contains(&"acting".to_string())));
    }

    #[test]
    fn voting_strategies_can_fail_to_answer() {
        // A 0.52-accuracy pool over 3 labels frequently splits the votes.
        let engine = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(5),
            verification: VerificationStrategy::HalfVoting,
            ..EngineConfig::default()
        });
        let mut p = platform(0.45, 11);
        let outcome = engine.run_hit(&mut p, batch(60, 10)).unwrap();
        assert!(
            outcome.no_answer_ratio() > 0.0,
            "expected some undecided questions with a weak pool"
        );
    }

    #[test]
    fn online_termination_consumes_fewer_answers() {
        let offline = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(15),
            verification: VerificationStrategy::Probabilistic,
            termination: None,
            ..EngineConfig::default()
        });
        let online = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(15),
            verification: VerificationStrategy::Probabilistic,
            termination: Some(TerminationStrategy::ExpMax),
            ..EngineConfig::default()
        });
        let outcome_offline = offline
            .run_hit(&mut platform(0.85, 17), batch(15, 5))
            .unwrap();
        let outcome_online = online
            .run_hit(&mut platform(0.85, 17), batch(15, 5))
            .unwrap();
        assert!(outcome_online.mean_answers_used() < outcome_offline.mean_answers_used());
        assert!(outcome_online.cost <= outcome_offline.cost);
        // End-of-time collection pays for everything it polled: the consumed-answer
        // savings are informational here and only become dollars on the clocked path.
        assert!(
            (outcome_online.cost - outcome_offline.cost).abs() < 1e-9,
            "the end-of-time path must not pretend termination saved money"
        );
        // Accuracy should not collapse.
        let correct = outcome_online
            .real_verdicts()
            .filter(|v| v.verdict.label().map(|l| l.as_str()) == Some("Positive"))
            .count();
        assert!(correct >= 13, "online accuracy too low: {correct}/15");
    }

    #[test]
    fn terminated_hit_cost_matches_platform_cost() {
        // Regression for the terminated-HIT cost divergence: the engine used to re-price a
        // terminated HIT at the consumed fraction while the platform kept the full charge,
        // so fleet accounting (platform ledger) disagreed with `HitOutcome::cost`.
        let engine = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(15),
            verification: VerificationStrategy::Probabilistic,
            termination: Some(TerminationStrategy::ExpMax),
            ..EngineConfig::default()
        });
        let mut p = platform(0.85, 17);
        let outcome = engine.run_hit(&mut p, batch(15, 5)).unwrap();
        assert!(
            outcome.mean_answers_used() < 15.0,
            "termination should have fired somewhere"
        );
        assert!(
            (outcome.cost - p.total_cost()).abs() < 1e-9,
            "engine cost {} != platform cost {}",
            outcome.cost,
            p.total_cost()
        );
    }

    #[test]
    fn registry_source_skips_sampling() {
        let pool = WorkerPool::generate(&PoolConfig::clean(40, 0.8, 23));
        let reference = sentiment_question(0, false);
        let oracle = pool.oracle_registry(&reference);
        let engine = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(7),
            accuracy_source: AccuracySource::Registry(oracle),
            ..EngineConfig::default()
        });
        let mut p = SimulatedPlatform::new(pool, CostModel::default(), 23);
        let outcome = engine.run_hit(&mut p, batch(10, 0)).unwrap();
        assert_eq!(outcome.registry.len(), 40);
        assert!(outcome.estimated_mean_accuracy.is_some());
    }

    #[test]
    fn empty_batch_is_rejected() {
        let engine = CrowdsourcingEngine::new(EngineConfig::default());
        let mut p = platform(0.8, 1);
        assert!(engine.run_hit(&mut p, Vec::new()).is_err());
        assert!(engine.publish_batch(&mut p, Vec::new()).is_err());
        assert!(engine
            .publish_batch_to(&mut p, Vec::new(), &[WorkerId(1)])
            .is_err());
        assert!(engine.publish_batch_to(&mut p, batch(2, 0), &[]).is_err());
    }

    #[test]
    fn split_phases_match_run_hit() {
        let engine = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(7),
            ..EngineConfig::default()
        });
        let composed = engine
            .run_hit(&mut platform(0.8, 31), batch(10, 3))
            .unwrap();
        let mut p = platform(0.8, 31);
        let ticket = engine.publish_batch(&mut p, batch(10, 3)).unwrap();
        assert_eq!(ticket.workers_assigned, 7);
        assert_eq!(ticket.questions.len(), 13);
        let split = engine.collect_batch(&mut p, ticket).unwrap();
        assert_eq!(composed, split, "run_hit must be publish + collect");
    }

    #[test]
    fn interleaved_batches_account_costs_independently() {
        // Two tickets outstanding at once; each collect must only see its own charges.
        let engine = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(5),
            ..EngineConfig::default()
        });
        let mut p = platform(0.8, 13);
        let t1 = engine.publish_batch(&mut p, batch(10, 2)).unwrap();
        let t2 = engine.publish_batch(&mut p, batch(10, 2)).unwrap();
        let o1 = engine.collect_batch(&mut p, t1).unwrap();
        let o2 = engine.collect_batch(&mut p, t2).unwrap();
        assert!(o1.cost > 0.0);
        assert!(
            (o1.cost - o2.cost).abs() < 1e-9,
            "same-shape batches, same cost"
        );
        assert!((o1.cost + o2.cost - p.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn cached_collect_reuses_estimates_from_earlier_batches() {
        use cdas_core::sharing::{AccuracyCache, SharedAccuracyRegistry};

        let engine = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(7),
            ..EngineConfig::default()
        });
        let mut p = platform(0.8, 41);
        let cache = AccuracyCache::new(SharedAccuracyRegistry::new());

        // Batch 1 carries gold questions: its estimates land in the shared registry.
        let t1 = engine.publish_batch(&mut p, batch(8, 4)).unwrap();
        let o1 = engine.collect_batch_cached(&mut p, t1, &cache).unwrap();
        assert!(!cache.shared().is_empty());
        assert!(o1.estimated_mean_accuracy.is_some());

        // Batch 2 has NO gold questions, yet its verification registry is non-empty:
        // every estimate it weights votes with was learned in batch 1.
        let t2 = engine.publish_batch(&mut p, batch(8, 0)).unwrap();
        let o2 = engine.collect_batch_cached(&mut p, t2, &cache).unwrap();
        assert!(!o2.registry.is_empty());
        assert!(
            o2.registry.iter().all(|(_, e)| e.samples > 0),
            "estimates came from gold sampling"
        );
    }

    #[test]
    fn cached_collect_honours_a_configured_registry_source() {
        use cdas_core::sharing::{AccuracyCache, SharedAccuracyRegistry};

        let pool = WorkerPool::generate(&PoolConfig::clean(30, 0.8, 51));
        let oracle = pool.oracle_registry(&sentiment_question(0, false));
        let engine = CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(5),
            accuracy_source: AccuracySource::Registry(oracle),
            ..EngineConfig::default()
        });
        let mut p = SimulatedPlatform::new(pool, CostModel::default(), 51);
        let cache = AccuracyCache::new(SharedAccuracyRegistry::new());
        // A gold-free batch: without the configured registry there would be nothing to
        // weight votes with beyond the default.
        let ticket = engine.publish_batch(&mut p, batch(6, 0)).unwrap();
        let outcome = engine.collect_batch_cached(&mut p, ticket, &cache).unwrap();
        assert_eq!(
            cache.shared().len(),
            30,
            "the oracle registry seeded the fleet registry"
        );
        assert_eq!(outcome.registry.len(), 30);
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(VerificationStrategy::HalfVoting.name(), "Half-Voting");
        assert_eq!(
            VerificationStrategy::MajorityVoting.name(),
            "Majority-Voting"
        );
        assert_eq!(VerificationStrategy::Probabilistic.name(), "Verification");
        assert_eq!(VerificationStrategy::ALL.len(), 3);
    }
}
