//! HIT templating (§2.2, Figure 3): render the batch of questions as the HTML-section
//! description published to the crowd platform.
//!
//! Each question becomes a `<div>` section containing the item text and one radio button
//! per answer in the domain; the sections are concatenated into the HIT description
//! (Algorithm 1, lines 1–6). The simulated platform never parses this HTML — it exists so
//! the engine exercises the same artefacts a real AMT deployment would produce, and so the
//! privacy manager has something concrete to redact.

use cdas_core::types::AnswerDomain;
use serde::{Deserialize, Serialize};

/// A query template: the question phrasing and the answer domain, per application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// The instruction shown above every item (e.g. "What is the opinion of this tweet?").
    pub instruction: String,
    /// The answer domain rendered as radio buttons.
    pub domain: AnswerDomain,
}

impl QueryTemplate {
    /// Create a template.
    pub fn new(instruction: impl Into<String>, domain: AnswerDomain) -> Self {
        QueryTemplate {
            instruction: instruction.into(),
            domain,
        }
    }

    /// The TSA template of Figure 3.
    pub fn tsa() -> Self {
        QueryTemplate::new(
            "Choose the opinion expressed by this tweet about the movie",
            AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
        )
    }

    /// An IT template over the given candidate tags.
    pub fn image_tagging(domain: AnswerDomain) -> Self {
        QueryTemplate::new("Choose the tag that best describes this image", domain)
    }

    /// Render one item as an HTML section (`<div>` bounded, Figure 3 style).
    pub fn render_section(&self, item_id: u64, item_text: &str) -> String {
        let mut html = String::with_capacity(256);
        html.push_str(&format!("<div class=\"question\" id=\"q{item_id}\">\n"));
        html.push_str(&format!(
            "  <p class=\"instruction\">{}</p>\n",
            escape(&self.instruction)
        ));
        html.push_str(&format!(
            "  <blockquote>{}</blockquote>\n",
            escape(item_text)
        ));
        for (i, label) in self.domain.labels().enumerate() {
            html.push_str(&format!(
                "  <label><input type=\"radio\" name=\"q{item_id}\" value=\"{i}\"/> {}</label>\n",
                escape(label.as_str())
            ));
        }
        html.push_str("  <input type=\"text\" name=\"reason\" placeholder=\"why? (keywords)\"/>\n");
        html.push_str("</div>");
        html
    }

    /// Render a whole HIT description by concatenating the sections of every item
    /// (Algorithm 1, line 5's `concatenate`).
    pub fn render_hit<'a>(&self, items: impl IntoIterator<Item = (u64, &'a str)>) -> String {
        let mut html = String::from("<form class=\"cdas-hit\">\n");
        for (id, text) in items {
            html.push_str(&self.render_section(id, text));
            html.push('\n');
        }
        html.push_str("</form>");
        html
    }
}

/// Minimal HTML escaping for the generated descriptions.
fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsa_template_has_three_options() {
        let t = QueryTemplate::tsa();
        assert_eq!(t.domain.size(), 3);
        let section = t.render_section(7, "Thor was great");
        assert!(section.contains("id=\"q7\""));
        assert!(section.contains("Positive"));
        assert!(section.contains("Negative"));
        assert!(section.contains("radio"));
        assert!(section.starts_with("<div"));
        assert!(section.ends_with("</div>"));
    }

    #[test]
    fn hit_rendering_concatenates_sections() {
        let t = QueryTemplate::tsa();
        let html = t.render_hit(vec![(0, "tweet one"), (1, "tweet two"), (2, "tweet three")]);
        assert_eq!(html.matches("<div class=\"question\"").count(), 3);
        assert!(html.contains("tweet two"));
        assert!(html.starts_with("<form"));
        assert!(html.ends_with("</form>"));
    }

    #[test]
    fn html_is_escaped() {
        let t = QueryTemplate::tsa();
        let section = t.render_section(0, "<script>alert(\"x\") & stuff</script>");
        assert!(!section.contains("<script>"));
        assert!(section.contains("&lt;script&gt;"));
        assert!(section.contains("&quot;x&quot;"));
        assert!(section.contains("&amp; stuff"));
    }

    #[test]
    fn image_template_uses_candidate_tags() {
        let t = QueryTemplate::image_tagging(AnswerDomain::from_strs(&["apple", "fruit", "fax"]));
        let section = t.render_section(3, "[image 3]");
        assert!(section.contains("apple"));
        assert!(section.contains("fax"));
    }
}
