//! The multi-job scheduler: N concurrent analytics jobs over one shared worker pool.
//!
//! §2.1 describes a job manager that accepts *jobs* — plural — yet Algorithm 1 drives one
//! HIT batch at a time. This module generalizes the two-phase engine to a fleet: a
//! [`JobScheduler`] accepts any number of [`ScheduledJob`]s (TSA and IT mixed), splits each
//! into HIT batches, and dispatches them onto a single shared pool in *ticks*. Every tick
//! interleaves the two phases across jobs:
//!
//! 1. **Dispatch (phase 1)** — jobs are visited in [`DispatchPolicy`] order; each
//!    unfinished job tries to check its required workers out of the shared
//!    [`PoolLedger`]. Leases are disjoint, so two in-flight HITs never share a worker and
//!    no worker is ever assigned twice to one question. A job that cannot get a lease
//!    waits for the next tick (recorded as contention in its [`crate::metrics::JobReport`]).
//! 2. **Ingest (phase 2)** — every in-flight batch is collected: answers polled, gold
//!    estimates absorbed into one fleet-wide
//!    [`SharedAccuracyRegistry`] behind an
//!    [`AccuracyCache`], questions verified with the *shared* estimates (a worker's
//!    accuracy learned in job A immediately reweights their votes in job B), and the lease
//!    released.
//!
//! The run ends when every job has ingested its last batch, returning a
//! [`crate::metrics::FleetReport`] with per-job and fleet-wide accuracy/cost/throughput.
//!
//! [`JobScheduler::run`] polls every batch at the end of time — batches live exactly one
//! tick, and ticks are not time. [`JobScheduler::run_clocked`] is the discrete-event
//! variant: ticks advance a [`SimClock`] to the next answer arrival under the pool's
//! [`cdas_crowd::arrival::LatencyModel`], batches stay in flight while their workers are
//! genuinely working, early-terminated HITs are cancelled *mid-flight* with their leases
//! returned to the pool for other jobs to pick up, and the report additionally carries
//! makespan, time-to-first-verdict and worker-minutes reclaimed.
//! [`JobScheduler::run_parallel`] is the scale-out variant: it stripes the jobs across
//! the shards of a [`ShardedPlatform`] and runs one clocked event loop **per OS thread**,
//! sharing only the lock-striped [`SharedAccuracyRegistry`] — `run_clocked` is the
//! one-shard special case of the same code path, and the report gains per-shard rollups
//! ([`crate::metrics::ShardReport`]) and a
//! [`parallel-speedup stat`](crate::metrics::FleetReport::parallel_speedup).
//!
//! Worker leases are RAII guards ([`cdas_crowd::lease::WorkerLease`]): every exit from
//! every loop — happy path, `?` propagation, thread panic — returns the leased workers to
//! the shared [`PoolLedger`], so no failure mode can strand part of the roster.
//!
//! ```
//! use cdas_core::economics::CostModel;
//! use cdas_crowd::lease::PoolLedger;
//! use cdas_crowd::pool::{PoolConfig, WorkerPool};
//! use cdas_crowd::SimulatedPlatform;
//! use cdas_engine::scheduler::{JobScheduler, ScheduledJob, SchedulerConfig};
//! use cdas_engine::job_manager::JobKind;
//!
//! let pool = WorkerPool::generate(&PoolConfig::clean(20, 0.8, 7));
//! let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 7);
//! let mut scheduler = JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
//!
//! let questions = cdas_engine::fixtures::demo_questions(10, 2);
//! scheduler.submit(ScheduledJob::named(JobKind::SentimentAnalytics, "demo", questions));
//! let report = scheduler.run(&mut platform).unwrap();
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.fleet.accuracy > 0.5);
//! ```

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use cdas_core::accuracy::AccuracyRegistry;
use cdas_core::sharing::{AccuracyCache, SharedAccuracyRegistry};
use cdas_core::types::{AnswerDomain, HitId, WorkerId};
use cdas_core::{CdasError, Result};
use cdas_crowd::arrival_queue::ArrivalQueue;
use cdas_crowd::lease::{PoolLedger, WorkerLease};
use cdas_crowd::platform::CrowdPlatform;
use cdas_crowd::question::CrowdQuestion;
use cdas_crowd::sharded::ShardedPlatform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use cdas_crowd::clock::SimClock;

use crate::clocked::ClockedCollector;
use crate::engine::{BatchTicket, CrowdsourcingEngine, EngineConfig, HitOutcome};
use crate::job_manager::{AnalyticsJob, JobKind};
use crate::metrics::{score_hits, FleetReport, JobReport, ShardReport};
use crate::query::Query;

/// Identifier of a submitted job (the submission index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub usize);

/// How the dispatch phase orders jobs when they compete for the same free workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Rotate which job gets first pick each tick — fair interleaving, the LogBase-style
    /// multi-tenant default.
    #[default]
    RoundRobin,
    /// Visit jobs by descending [`ScheduledJob::priority`]; equal priorities rotate
    /// round-robin. A starved low-priority job still runs once the pool frees up.
    Priority,
}

/// How the clocked loop discovers the next arrival event across the in-flight HITs.
///
/// Both modes produce **bit-identical** reports (pinned by the differential suite in
/// `tests/event_heap_equivalence.rs`); they differ only in how much work each tick
/// costs. `Scan` is kept as the differential-testing oracle and the benchmark baseline
/// that `cdas-bench`'s `perf_snapshot` binary records `Heap` against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ArrivalDiscovery {
    /// A global arrival priority queue ([`cdas_crowd::ArrivalQueue`]): a binary
    /// min-heap keyed by [`CrowdPlatform::next_arrival`], with lazy deletion of
    /// entries for cancelled or terminated HITs so a mid-flight cancel never fires a
    /// ghost arrival — O(log n) per event.
    #[default]
    Heap,
    /// The pre-heap discovery: every tick folds [`CrowdPlatform::next_arrival`] over
    /// all in-flight HITs and polls each one — O(inflight) per event.
    Scan,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Dispatch ordering policy.
    pub policy: DispatchPolicy,
    /// Seed for the lease-selection RNG (worker checkout is randomized like §3.1's
    /// "n random workers", but only over the *free* part of the roster).
    pub seed: u64,
    /// Safety valve: abort with [`CdasError::SchedulerStalled`] after this many ticks.
    pub max_ticks: usize,
    /// How the clocked loop finds the next arrival event (heap vs. the scan oracle).
    pub discovery: ArrivalDiscovery,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            policy: DispatchPolicy::RoundRobin,
            seed: 42,
            max_ticks: 10_000,
            discovery: ArrivalDiscovery::Heap,
        }
    }
}

/// One analytics job as the scheduler sees it: the registered [`AnalyticsJob`], its
/// rendered crowd questions, and the engine configuration its batches run with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledJob {
    /// The registered job (kind, query, name).
    pub job: AnalyticsJob,
    /// The human-part work items, already rendered to crowd questions (gold flagged).
    pub questions: Vec<CrowdQuestion>,
    /// Engine configuration for this job's batches.
    pub engine: EngineConfig,
    /// Questions per HIT batch (`B`).
    pub batch_size: usize,
    /// Dispatch priority (higher runs first under [`DispatchPolicy::Priority`]).
    pub priority: u8,
}

impl ScheduledJob {
    /// Schedule a registered job over its rendered questions.
    ///
    /// The engine defaults are derived from the job's query (required accuracy and domain
    /// size); override with [`with_engine`](Self::with_engine).
    pub fn new(job: AnalyticsJob, questions: Vec<CrowdQuestion>) -> Self {
        let engine = EngineConfig::for_job(job.query.required_accuracy, job.query.domain.size());
        ScheduledJob {
            job,
            questions,
            engine,
            batch_size: 20,
            priority: 0,
        }
    }

    /// Convenience for tests and examples: synthesize the [`AnalyticsJob`] from a kind, a
    /// name, and the questions themselves (the query domain is taken from the first
    /// question; required accuracy defaults to 0.9).
    pub fn named(kind: JobKind, name: impl Into<String>, questions: Vec<CrowdQuestion>) -> Self {
        let name = name.into();
        let domain = questions
            .first()
            .map(|q| q.domain.clone())
            .unwrap_or_else(|| AnswerDomain::from_strs(&["yes", "no"]));
        let query = Query::new(vec![name.clone()], 0.9, domain, 0.0, questions.len() as f64);
        Self::new(AnalyticsJob::new(kind, query, name), questions)
    }

    /// Replace the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Set the batch size `B`.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Set the dispatch priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// One phase-1 dispatch, kept for the fleet timeline: which job published which HIT with
/// which leased workers at which tick. The integration tests use this to prove leases of
/// concurrently in-flight HITs are disjoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchRecord {
    /// The tick the batch was published in (1-based).
    pub tick: usize,
    /// The publishing job.
    pub job: JobId,
    /// The platform HIT id.
    pub hit: HitId,
    /// The leased workers the HIT was restricted to.
    pub workers: Vec<WorkerId>,
    /// Simulated time of the dispatch (0.0 in unclocked runs, where ticks are not time).
    pub at: f64,
}

/// One committed batch: the durable unit of scheduler progress. Emitted through
/// [`RunObserver::on_commit`] at the exact point an outcome is pushed onto its job's run
/// list — after this, the batch's verdicts, cost, and registry contributions are part of
/// the run's state and must never be paid for again.
///
/// `seq` is the batch's index within its **job** (not a global counter): per-job order
/// is deterministic even in parallel runs, where the global interleaving across shards
/// is not. The journal's recovery matches commits per `(job, seq)` for exactly this
/// reason.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCommit {
    /// The committing job.
    pub job: JobId,
    /// The batch's 0-based sequence number within the job.
    pub seq: usize,
    /// The platform HIT the batch ran as.
    pub hit: HitId,
    /// The batch's range within the job's question list.
    pub range: std::ops::Range<usize>,
    /// The engine outcome being committed (verdicts, cost, registry contributions).
    pub outcome: HitOutcome,
    /// What the batch charged the requester (`outcome.cost`).
    pub charge: f64,
    /// Simulated completion time (0.0 in unclocked runs).
    pub completed_at: f64,
    /// Simulated time of the batch's first verdict, if any arrived.
    pub first_verdict_at: Option<f64>,
    /// Worker-minutes reclaimed by cancelling the batch mid-flight.
    pub reclaimed_minutes: f64,
    /// Answers cut off by the cancellation.
    pub answers_cancelled: usize,
    /// Whether the batch was cancelled early (terminated before all answers arrived).
    pub cancelled: bool,
}

/// Observer of the scheduler's durable state changes, called synchronously at the three
/// points recovery needs to replay a run: dispatch (money committed to the platform),
/// per-poll charge (incremental spend in clocked runs), and batch commit (outcome made
/// part of run state). The write-ahead journal is the canonical implementation.
///
/// In parallel runs each shard's sub-scheduler reports through a relabeling shim, so
/// observers always see **global** job ids; calls from different shard threads may
/// interleave, but per-job call order is deterministic.
pub trait RunObserver: Send + Sync {
    /// A batch was published: workers leased, HIT live on the platform.
    fn on_dispatch(&self, dispatch: &DispatchRecord) {
        let _ = dispatch;
    }

    /// A clocked poll charged the requester `amount` for answers of `hit` at simulated
    /// time `at`. Never called with `amount == 0.0`.
    fn on_charge(&self, job: JobId, hit: HitId, amount: f64, at: f64) {
        let _ = (job, hit, amount, at);
    }

    /// A batch outcome was committed to its job's run list.
    fn on_commit(&self, commit: &BatchCommit) {
        let _ = commit;
    }
}

/// Relabels a shard-local sub-scheduler's observer calls with global job ids before
/// forwarding to the fleet-level observer.
struct ShardRelabel {
    inner: Arc<dyn RunObserver>,
    /// `global[local_job_index]` = the job's index in the parent scheduler.
    global: Vec<usize>,
}

impl ShardRelabel {
    /// Shard-local job id → fleet-global job id. The table is built from the same
    /// striping that numbered the locals, so an unmapped id passes through unchanged
    /// rather than panicking the observer callback inside a shard thread.
    fn relabel(&self, job: JobId) -> JobId {
        self.global.get(job.0).copied().map_or(job, JobId)
    }
}

impl RunObserver for ShardRelabel {
    fn on_dispatch(&self, dispatch: &DispatchRecord) {
        let mut relabeled = dispatch.clone();
        relabeled.job = self.relabel(relabeled.job);
        self.inner.on_dispatch(&relabeled);
    }

    fn on_charge(&self, job: JobId, hit: HitId, amount: f64, at: f64) {
        self.inner.on_charge(self.relabel(job), hit, amount, at);
    }

    fn on_commit(&self, commit: &BatchCommit) {
        let mut relabeled = commit.clone();
        relabeled.job = self.relabel(relabeled.job);
        self.inner.on_commit(&relabeled);
    }
}

/// A batch published in the current tick's dispatch phase, awaiting this tick's ingest
/// phase. Batches live exactly one tick: dispatch leases and publishes, ingest collects,
/// and the [`WorkerLease`] guard releases on drop — at the end of the tick on the happy
/// path, or during unwinding/early return on every other path, so leases are held only
/// while HITs genuinely coexist and can never leak.
struct Inflight {
    job: usize,
    /// The batch's range within its job's question list (avoids storing the questions
    /// twice — the ticket owns the published copy, the job owns the original).
    range: std::ops::Range<usize>,
    ticket: BatchTicket,
    /// RAII guard: dropping the `Inflight` returns the workers to the ledger.
    _lease: WorkerLease,
}

/// A batch in flight in a **clocked** run. Unlike [`Inflight`], it lives across ticks:
/// the lease guard is held for exactly as long as the HIT is genuinely running and drops
/// the moment the batch completes — naturally, by mid-flight cancellation, or because an
/// error (or panic) tore the run down — so other jobs can lease the freed workers while
/// slower HITs are still out, and no failure mode strands workers.
struct ClockedInflight {
    job: usize,
    range: std::ops::Range<usize>,
    collector: ClockedCollector,
    /// RAII guard: dropping the `ClockedInflight` returns the workers to the ledger.
    _lease: WorkerLease,
}

/// What a run loop records about one shard before scoring: identity, event count,
/// simulated end time and host wall-clock. [`JobScheduler::report`] turns seeds into full
/// [`ShardReport`]s by summing the per-job reports of each seed's jobs.
struct ShardSeed {
    shard: usize,
    jobs: Vec<JobId>,
    ticks: usize,
    makespan: f64,
    wall_seconds: f64,
}

struct JobState {
    spec: ScheduledJob,
    engine: CrowdsourcingEngine,
    cursor: usize,
    runs: Vec<(std::ops::Range<usize>, HitOutcome)>,
    ticks_waited: usize,
    workers_seen: BTreeSet<WorkerId>,
    // Clocked-run rollups; stay at their defaults in unclocked runs.
    completed_at: f64,
    first_verdict_at: Option<f64>,
    reclaimed_minutes: f64,
    answers_cancelled: usize,
}

impl JobState {
    fn finished(&self) -> bool {
        self.cursor >= self.spec.questions.len()
    }
}

/// The multi-job scheduler: submit N jobs, then [`run`](Self::run) them to completion
/// against one platform and one shared worker roster.
///
/// ```
/// use cdas_crowd::lease::PoolLedger;
/// use cdas_core::types::WorkerId;
/// use cdas_engine::scheduler::{JobScheduler, SchedulerConfig};
///
/// let ledger = PoolLedger::new((0..8).map(WorkerId));
/// let scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
/// assert_eq!(scheduler.job_count(), 0);
/// assert!(scheduler.shared_registry().is_empty());
/// ```
pub struct JobScheduler {
    config: SchedulerConfig,
    ledger: PoolLedger,
    cache: AccuracyCache,
    jobs: Vec<JobState>,
    rng: StdRng,
    /// Observer of durable state changes (dispatches, charges, commits); `None` keeps
    /// every run loop allocation-free on the hot path.
    observer: Option<Arc<dyn RunObserver>>,
}

impl JobScheduler {
    /// A scheduler over the given worker roster, with a fresh (empty) shared registry.
    pub fn new(config: SchedulerConfig, ledger: PoolLedger) -> Self {
        Self::with_shared_registry(config, ledger, SharedAccuracyRegistry::new())
    }

    /// A scheduler whose jobs share (and extend) an existing registry — e.g. estimates
    /// carried over from a previous fleet run against the same crowd.
    pub fn with_shared_registry(
        config: SchedulerConfig,
        ledger: PoolLedger,
        shared: SharedAccuracyRegistry,
    ) -> Self {
        JobScheduler {
            config,
            ledger,
            cache: AccuracyCache::new(shared),
            jobs: Vec::new(),
            rng: StdRng::seed_from_u64(config.seed),
            observer: None,
        }
    }

    /// Attach an observer that is called synchronously at every dispatch, charge, and
    /// batch commit of the following runs. The write-ahead journal attaches itself here;
    /// replacing a previous observer is allowed (last one wins).
    pub fn attach_observer(&mut self, observer: Arc<dyn RunObserver>) {
        self.observer = Some(observer);
    }

    /// Submit a job; returns its [`JobId`].
    ///
    /// ```
    /// use cdas_crowd::lease::PoolLedger;
    /// use cdas_core::types::WorkerId;
    /// use cdas_engine::job_manager::JobKind;
    /// use cdas_engine::fixtures::demo_questions;
    /// use cdas_engine::scheduler::{JobScheduler, ScheduledJob, SchedulerConfig};
    ///
    /// let ledger = PoolLedger::new((0..10).map(WorkerId));
    /// let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
    /// let a = scheduler.submit(ScheduledJob::named(
    ///     JobKind::SentimentAnalytics, "job-a", demo_questions(6, 2)));
    /// let b = scheduler.submit(ScheduledJob::named(
    ///     JobKind::ImageTagging, "job-b", demo_questions(6, 0)));
    /// assert_ne!(a, b);
    /// assert_eq!(scheduler.job_count(), 2);
    /// ```
    pub fn submit(&mut self, spec: ScheduledJob) -> JobId {
        let engine = CrowdsourcingEngine::new(spec.engine.clone());
        self.jobs.push(JobState {
            spec,
            engine,
            cursor: 0,
            runs: Vec::new(),
            ticks_waited: 0,
            workers_seen: BTreeSet::new(),
            completed_at: 0.0,
            first_verdict_at: None,
            reclaimed_minutes: 0.0,
            answers_cancelled: 0,
        });
        JobId(self.jobs.len() - 1)
    }

    /// Number of submitted jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The fleet-wide shared accuracy registry (alive across runs; pass it to
    /// [`with_shared_registry`](Self::with_shared_registry) to seed a later fleet).
    pub fn shared_registry(&self) -> &SharedAccuracyRegistry {
        self.cache.shared()
    }

    /// A completed job's `(batch questions, outcome)` runs, in ingestion order. Empty for
    /// an unknown id or a job that has not run yet.
    pub fn outcomes(&self, job: JobId) -> Vec<(&[CrowdQuestion], &HitOutcome)> {
        self.jobs
            .get(job.0)
            .map(|j| {
                j.runs
                    .iter()
                    .map(|(range, outcome)| {
                        (j.spec.questions.get(range.clone()).unwrap_or(&[]), outcome)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Dispatch order for one tick: round-robin rotation, optionally stable-sorted by
    /// descending priority so rotation still breaks ties fairly.
    fn dispatch_order(&self, tick: usize) -> Vec<usize> {
        let n = self.jobs.len();
        let mut order: Vec<usize> = (0..n).collect();
        if n > 1 {
            order.rotate_left((tick - 1) % n);
        }
        if self.config.policy == DispatchPolicy::Priority {
            let priority = |i: usize| self.jobs.get(i).map(|j| j.spec.priority).unwrap_or(0);
            order.sort_by_key(|&i| std::cmp::Reverse(priority(i)));
        }
        order
    }

    /// Run every submitted job to completion, interleaving phase-1 publishes and phase-2
    /// ingestion across jobs each tick.
    ///
    /// Errors with [`CdasError::PoolExhausted`] when a job's worker demand exceeds the
    /// roster outright, and [`CdasError::SchedulerStalled`] if a tick ever makes no
    /// progress (a configuration the ledger can never satisfy).
    ///
    /// ```
    /// use cdas_core::economics::CostModel;
    /// use cdas_crowd::lease::PoolLedger;
    /// use cdas_crowd::pool::{PoolConfig, WorkerPool};
    /// use cdas_crowd::SimulatedPlatform;
    /// use cdas_engine::job_manager::JobKind;
    /// use cdas_engine::fixtures::demo_questions;
    /// use cdas_engine::scheduler::{JobScheduler, ScheduledJob, SchedulerConfig};
    ///
    /// let pool = WorkerPool::generate(&PoolConfig::clean(12, 0.8, 3));
    /// let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 3);
    /// let mut scheduler =
    ///     JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
    /// // Two 5-worker jobs over a 12-worker pool: both fit in flight at once.
    /// for name in ["alpha", "beta"] {
    ///     scheduler.submit(ScheduledJob::named(
    ///         JobKind::SentimentAnalytics, name, demo_questions(8, 2)));
    /// }
    /// let report = scheduler.run(&mut platform).unwrap();
    /// assert_eq!(report.jobs.len(), 2);
    /// assert_eq!(report.fleet.questions, 16, "8 real questions per job");
    /// assert!(report.registry_size > 0, "gold estimates were shared");
    /// ```
    pub fn run<P: CrowdPlatform>(&mut self, platform: &mut P) -> Result<FleetReport> {
        // cdas-allow(determinism): wall-clock telemetry only feeds `wall_seconds`, which report equality ignores
        let started = Instant::now();
        self.check_feasibility(self.ledger.roster_len())?;
        let mut dispatches: Vec<DispatchRecord> = Vec::new();
        let mut ticks = 0usize;
        while self.jobs.iter().any(|j| !j.finished()) {
            ticks += 1;
            if ticks > self.config.max_ticks {
                return Err(CdasError::SchedulerStalled { ticks });
            }
            // Phase 1: dispatch — one batch per unfinished job, policy order, for as long
            // as the ledger can satisfy the lease. The lease guards of this tick's batches
            // are all held simultaneously, which is what keeps concurrent HITs disjoint.
            let mut inflight: Vec<Inflight> = Vec::new();
            for idx in self.dispatch_order(ticks) {
                if self.jobs.get(idx).map_or(true, |j| j.finished()) {
                    continue;
                }
                if let Some((range, ticket, lease)) =
                    self.try_dispatch(idx, ticks, 0.0, platform, &mut dispatches)?
                {
                    inflight.push(Inflight {
                        job: idx,
                        range,
                        ticket,
                        _lease: lease,
                    });
                }
            }

            if inflight.is_empty() {
                // Unfinished jobs exist (loop condition) but none could lease: with all
                // leases released at tick end this can only be a progress bug.
                return Err(CdasError::SchedulerStalled { ticks });
            }

            // Phase 2: ingest every in-flight batch, sharing estimates as we go. Each
            // batch's lease guard drops at the end of its iteration — and the whole
            // vector unwinds on an early `?` return — so no path, happy or failing, can
            // leak workers out of the roster.
            for batch in inflight {
                let observer = self.observer.clone();
                // A batch's job index came from this scheduler's own dispatch loop; an
                // unknown id would mean the in-flight set was corrupted, and dropping
                // the batch (lease and all) is the panic-free way out.
                let Some(state) = self.jobs.get_mut(batch.job) else {
                    continue;
                };
                let outcome =
                    state
                        .engine
                        .collect_batch_cached(platform, batch.ticket, &self.cache)?;
                if let Some(observer) = &observer {
                    observer.on_commit(&BatchCommit {
                        job: JobId(batch.job),
                        seq: state.runs.len(),
                        hit: outcome.hit,
                        range: batch.range.clone(),
                        charge: outcome.cost,
                        completed_at: 0.0,
                        first_verdict_at: None,
                        reclaimed_minutes: 0.0,
                        answers_cancelled: 0,
                        cancelled: false,
                        outcome: outcome.clone(),
                    });
                }
                state.runs.push((batch.range, outcome));
            }
        }

        let seed = self.seed_shard(ticks, 0.0, started.elapsed().as_secs_f64());
        Ok(self.report(ticks, dispatches, 0.0, vec![seed]))
    }

    /// Run every submitted job to completion under **simulated time**: a discrete-event
    /// loop in which every tick advances a [`SimClock`] to the next answer arrival across
    /// all in-flight HITs, polls incrementally, and — when a job's batch terminates early —
    /// cancels the HIT *mid-flight* and releases its [`cdas_crowd::lease::WorkerLease`]
    /// back to the shared [`PoolLedger`], so a waiting job picks those workers up in the
    /// same run. This is what makes early termination (§4.2.2) save wall-clock time and
    /// money rather than merely replaying history; the returned
    /// [`crate::metrics::FleetReport`] carries `makespan`, per-job time-to-first-verdict
    /// and the reclaimed worker-minutes.
    ///
    /// Each job keeps at most one batch in flight, so leases are held exactly while their
    /// HIT is genuinely running.
    ///
    /// ```
    /// use cdas_core::economics::CostModel;
    /// use cdas_crowd::arrival::LatencyModel;
    /// use cdas_crowd::lease::PoolLedger;
    /// use cdas_crowd::pool::{PoolConfig, WorkerPool};
    /// use cdas_crowd::SimulatedPlatform;
    /// use cdas_engine::job_manager::JobKind;
    /// use cdas_engine::fixtures::demo_questions;
    /// use cdas_engine::scheduler::{JobScheduler, ScheduledJob, SchedulerConfig};
    ///
    /// let pool = WorkerPool::generate(&PoolConfig {
    ///     latency: LatencyModel::Exponential { mean: 5.0 },
    ///     ..PoolConfig::clean(12, 0.8, 3)
    /// });
    /// let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 3);
    /// let mut scheduler =
    ///     JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
    /// scheduler.submit(ScheduledJob::named(
    ///     JobKind::SentimentAnalytics, "clocked", demo_questions(8, 2)));
    /// let report = scheduler.run_clocked(&mut platform).unwrap();
    /// assert!(report.makespan > 0.0, "simulated time passed");
    /// assert_eq!(report.fleet.questions, 8);
    /// ```
    pub fn run_clocked<P: CrowdPlatform>(&mut self, platform: &mut P) -> Result<FleetReport> {
        // cdas-allow(determinism): wall-clock telemetry only feeds `wall_seconds`, which report equality ignores
        let started = Instant::now();
        self.check_feasibility(self.ledger.roster_len())?;
        let mut clock = SimClock::new();
        let mut dispatches: Vec<DispatchRecord> = Vec::new();
        let mut inflight: Vec<ClockedInflight> = Vec::new();
        let result = self.clocked_loop(platform, &mut clock, &mut dispatches, &mut inflight);
        if result.is_err() {
            // Error teardown: the platform must stop charging for HITs nobody will ever
            // collect. The cancel is idempotent by the trait contract, so a batch whose
            // collector already cancelled (the error came *after* its cancel) is a no-op
            // here rather than a double refund. The lease guards release on drop.
            for batch in inflight.drain(..) {
                // The run is already failing; the teardown receipts have no
                // report to land in and are deliberately discarded.
                let _ = platform.cancel(batch.collector.hit(), clock.now());
            }
        }
        let ticks = result?;
        let seed = self.seed_shard(ticks, clock.now(), started.elapsed().as_secs_f64());
        Ok(self.report(ticks, dispatches, clock.now(), vec![seed]))
    }

    /// Run the fleet **in parallel across OS threads**, one thread per shard of a
    /// [`ShardedPlatform`].
    ///
    /// Jobs are striped over shards round-robin by submission index (job `j` runs on
    /// shard `j % shards`), mirroring the round-robin worker partition of
    /// [`ShardedPlatform::split`]. Each thread owns its platform shard, a sub-scheduler
    /// over the shard's slice of this scheduler's roster, and runs **the same clocked
    /// event loop as [`run_clocked`](Self::run_clocked)** — the sequential path is
    /// literally the one-shard special case of this one, and a 1-shard `run_parallel`
    /// produces a byte-identical report (up to host wall-clock timings; see
    /// [`FleetReport::ignoring_wall_clock`]).
    ///
    /// What is shared and what is not:
    ///
    /// * **shared** — the [`SharedAccuracyRegistry`]: its lock-striped buckets let every
    ///   shard absorb gold estimates and read fleet-wide accuracies concurrently, so a
    ///   worker's accuracy learned on shard A still reweights nothing on shard B *for
    ///   that worker* (workers are partitioned), but population means and carried-over
    ///   registries are fleet-wide, exactly as in a sequential run;
    /// * **per shard** — the platform, the worker partition, the lease table, the
    ///   [`SimClock`] (shards are independent simulated timelines; the fleet `makespan`
    ///   is their maximum), and the dispatch RNG (seeded `config.seed + shard`).
    ///
    /// The shard lease tables are derived from this scheduler's ledger **when the call
    /// starts**: workers already checked out through another handle of that ledger are
    /// excluded from every shard (they cannot be double-assigned), but external leases
    /// taken mid-run are not observed — hand the parallel scheduler a quiescent ledger.
    ///
    /// Leases are RAII guards, so a shard thread that errors — or panics — releases its
    /// workers while unwinding; a panic is resurfaced after every other shard joined
    /// *and every job state was reassembled* (partial progress included), so a caller
    /// that catches it still holds a scheduler whose [`outcomes`](Self::outcomes) are
    /// inspectable. An error aborts the fleet with the first failing shard's error after
    /// all shards finished and every in-flight HIT of the failing shard was cancelled.
    ///
    /// The returned [`FleetReport`] carries one [`ShardReport`] per thread
    /// (`report.shards`) and [`FleetReport::parallel_speedup`] summarizes what the
    /// sharding bought.
    ///
    /// Errors with [`CdasError::PoolExhausted`] when a job needs more workers than its
    /// *shard* (not the whole pool) can ever offer — shard rosters are roughly
    /// `roster / shards`, so a fleet that was feasible sequentially may need a smaller
    /// worker count per HIT, or fewer shards, to run in parallel.
    ///
    /// ```
    /// use cdas_core::economics::CostModel;
    /// use cdas_crowd::pool::{PoolConfig, WorkerPool};
    /// use cdas_crowd::sharded::ShardedPlatform;
    /// use cdas_crowd::lease::PoolLedger;
    /// use cdas_engine::job_manager::JobKind;
    /// use cdas_engine::fixtures::demo_questions;
    /// use cdas_engine::scheduler::{JobScheduler, ScheduledJob, SchedulerConfig};
    ///
    /// let pool = WorkerPool::generate(&PoolConfig::clean(16, 0.8, 3));
    /// let mut platform = ShardedPlatform::split(&pool, CostModel::default(), 3, 2);
    /// let mut scheduler =
    ///     JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
    /// // Four 5-worker jobs over two 8-worker shards: two jobs per thread.
    /// for name in ["a", "b", "c", "d"] {
    ///     scheduler.submit(ScheduledJob::named(
    ///         JobKind::SentimentAnalytics, name, demo_questions(6, 2)));
    /// }
    /// let report = scheduler.run_parallel(&mut platform).unwrap();
    /// assert_eq!(report.jobs.len(), 4);
    /// assert_eq!(report.shards.len(), 2);
    /// assert_eq!(report.fleet.questions, 24);
    /// assert!(report.parallel_speedup() >= 1.0);
    /// ```
    pub fn run_parallel<P: CrowdPlatform>(
        &mut self,
        platform: &mut ShardedPlatform<P>,
    ) -> Result<FleetReport> {
        let shard_count = platform.shard_count();
        if shard_count == 0 {
            // No shards can serve no jobs; anything else is exhaustion by definition.
            self.check_feasibility(0)?;
            return Ok(self.report(0, Vec::new(), 0.0, Vec::new()));
        }

        // Each shard's slice of this scheduler's roster, in the parent ledger's
        // checkout-priority order (so a 1-way shard leases exactly like the parent).
        // Workers already checked out through another handle of the parent ledger at
        // this moment are excluded outright — the shard ledgers are independent tables,
        // so this is the only point where an outstanding external lease can be honoured
        // (a lease taken through the parent *during* the parallel run is not observed,
        // unlike in `run`/`run_clocked`, which lease from the parent tick by tick).
        let parent_roster = self.ledger.roster();
        let rosters: Vec<Vec<WorkerId>> = platform
            .shards()
            .iter()
            .map(|shard| {
                let members: BTreeSet<WorkerId> = shard.roster().iter().copied().collect();
                parent_roster
                    .iter()
                    .copied()
                    .filter(|w| members.contains(w) && !self.ledger.is_leased(*w))
                    .collect()
            })
            .collect();

        // Feasibility against the shard each job will actually run on.
        for (j, state) in self.jobs.iter().enumerate() {
            let needed = state.engine.decide_workers()?;
            let available = rosters.get(j % shard_count).map_or(0, Vec::len);
            if needed > available {
                return Err(CdasError::PoolExhausted { needed, available });
            }
        }

        // Build one sub-scheduler per shard and stripe the job states across them
        // (shard `s` owns jobs `s, s+n, s+2n, …`). The states are *moved*, not copied —
        // the threads do the real work on the real jobs, and the parent reassembles them
        // afterwards so `outcomes()` keeps working.
        //
        // Each shard runs over its OWN registry, seeded from one pre-spawn snapshot of
        // the fleet registry, instead of writing into the live shared one. A live
        // registry would make the *simulation* host-timing dependent: a late-starting
        // job's population mean (`ClockedCollector::running_mean`) reads fleet-wide
        // estimates, so whether another shard's gold scores have landed yet would move
        // termination bounds. Isolation makes a multi-shard run a pure function of its
        // inputs; the shards' learnings are merged back deterministically after the
        // join below.
        let shared = self.cache.shared().clone();
        let seed_registry = shared.snapshot();
        let mut global: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        let mut subs: Vec<JobScheduler> = rosters
            .iter()
            .enumerate()
            .map(|(s, roster)| {
                JobScheduler::with_shared_registry(
                    SchedulerConfig {
                        seed: self.config.seed + s as u64,
                        ..self.config
                    },
                    PoolLedger::new(roster.iter().copied()),
                    SharedAccuracyRegistry::with_registry(seed_registry.clone()),
                )
            })
            .collect();
        let total_jobs = self.jobs.len();
        for (j, state) in std::mem::take(&mut self.jobs).into_iter().enumerate() {
            // `j % shard_count` is in range by construction; the striping tables and
            // the sub-schedulers were both built with `shard_count` entries above.
            if let Some(ids) = global.get_mut(j % shard_count) {
                ids.push(j);
            }
            if let Some(sub) = subs.get_mut(j % shard_count) {
                sub.jobs.push(state);
            }
        }
        if let Some(observer) = &self.observer {
            // Each shard reports through a relabeling shim so the fleet-level observer
            // (the journal) always sees global job ids. Calls from different shard
            // threads interleave, but per-job order stays deterministic — which is all
            // recovery matches on.
            for (s, sub) in subs.iter_mut().enumerate() {
                sub.observer = Some(Arc::new(ShardRelabel {
                    inner: Arc::clone(observer),
                    global: global.get(s).cloned().unwrap_or_default(),
                }));
            }
        }

        // One OS thread per shard, each running the same clocked event loop the
        // sequential path runs. A panic inside a shard's run is caught *in the thread*
        // so the sub-scheduler — and with it the job states — survives the unwind (the
        // RAII lease guards release during it); the payload is re-raised from the parent
        // only after every shard joined and every job state was reassembled, so a caller
        // that catches the panic still holds a scheduler with all its jobs.
        type ShardJoin = (std::thread::Result<Result<FleetReport>>, JobScheduler);
        let outcomes: Vec<ShardJoin> = std::thread::scope(|scope| {
            let handles: Vec<_> = platform
                .shards_mut()
                .iter_mut()
                .zip(subs.drain(..))
                .map(|(shard, mut sub)| {
                    scope.spawn(move || {
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            sub.run_clocked(shard.platform_mut())
                        }));
                        (run, sub)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle
                        .join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect()
        });

        // Merge: reassemble job states in submission order (also on error, so partial
        // outcomes stay inspectable), remap shard-local job ids to global ones, and fold
        // the shard timelines together.
        let mut slots: Vec<Option<JobState>> = (0..total_jobs).map(|_| None).collect();
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        let mut first_error: Option<CdasError> = None;
        let mut merged_dispatches: Vec<DispatchRecord> = Vec::new();
        let mut shard_seeds: Vec<ShardSeed> = Vec::new();
        let mut ticks = 0usize;
        let mut makespan = 0.0f64;
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
        for (s, (result, sub)) in outcomes.into_iter().enumerate() {
            cache_hits += sub.cache.hits();
            cache_misses += sub.cache.misses();
            // Merge the shard's learnings back into the fleet registry, in shard order:
            // adopt (overwrite, not pool — the shard's entry already contains the seed's
            // history) every entry that differs from the pre-spawn snapshot. Shard
            // rosters are disjoint, so no two shards contend for a sampled entry; the
            // only possible overlap is identical injected oracle estimates, where
            // adopting in shard order is deterministic. This also covers a panicked
            // shard — whatever it learned before unwinding is preserved, like the live
            // registry used to.
            let mut delta = AccuracyRegistry::new();
            for (&worker, entry) in sub.cache.shared().snapshot().iter() {
                let unchanged = seed_registry.get(worker).is_some_and(|seed| {
                    seed.accuracy.to_bits() == entry.accuracy.to_bits()
                        && seed.samples == entry.samples
                });
                if !unchanged {
                    delta.set(worker, entry.accuracy, entry.samples);
                }
            }
            shared.adopt(&delta);
            for (local, state) in sub.jobs.into_iter().enumerate() {
                // A failed lookup leaves the slot empty; the hole check below turns
                // that into `SchedulerStalled` instead of a panic mid-merge.
                let target = global.get(s).and_then(|ids| ids.get(local)).copied();
                if let Some(slot) = target.and_then(|g| slots.get_mut(g)) {
                    *slot = Some(state);
                }
            }
            let result = match result {
                Ok(result) => result,
                Err(payload) => {
                    first_panic = first_panic.or(Some(payload));
                    continue;
                }
            };
            match result {
                Ok(shard_report) => {
                    let (sub_ticks, sub_makespan) = (shard_report.ticks, shard_report.makespan);
                    ticks += sub_ticks;
                    makespan = makespan.max(sub_makespan);
                    merged_dispatches.extend(shard_report.dispatches.into_iter().map(
                        |mut dispatch| {
                            let mapped = global.get(s).and_then(|ids| ids.get(dispatch.job.0));
                            if let Some(&g) = mapped {
                                dispatch.job = JobId(g);
                            }
                            dispatch
                        },
                    ));
                    // A sequential sub-run reports exactly one shard rollup;
                    // if that invariant ever breaks, fall back to the sub-run
                    // totals instead of panicking the merge (only the
                    // wall-clock split is unknowable then).
                    let rollup = shard_report.shards.into_iter().next();
                    shard_seeds.push(ShardSeed {
                        shard: s,
                        jobs: global
                            .get(s)
                            .into_iter()
                            .flatten()
                            .copied()
                            .map(JobId)
                            .collect(),
                        ticks: rollup.as_ref().map_or(sub_ticks, |r| r.ticks),
                        makespan: rollup.as_ref().map_or(sub_makespan, |r| r.makespan),
                        wall_seconds: rollup.as_ref().map_or(0.0, |r| r.wall_seconds),
                    });
                }
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        // Reassemble job states in submission order. Every slot is filled even
        // when a shard panicked (the sub-scheduler survives the unwind and
        // hands its jobs back above); a hole would mean the striping logic
        // itself broke, which surfaces as an error rather than a panic so the
        // caller still gets a scheduler with the states that did return.
        let mut jobs = Vec::with_capacity(total_jobs);
        let mut missing = 0usize;
        for state in slots {
            match state {
                Some(state) => jobs.push(state),
                None => missing += 1,
            }
        }
        self.jobs = jobs;
        if missing > 0 {
            first_error = first_error.or(Some(CdasError::SchedulerStalled { ticks }));
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        // Shard timelines are independent; a stable sort by simulated time gives one
        // fleet-wide timeline (and leaves a 1-shard run's order untouched).
        merged_dispatches.sort_by(|a, b| a.at.total_cmp(&b.at));
        let mut report = self.report(ticks, merged_dispatches, makespan, shard_seeds);
        report.cache_hits = cache_hits;
        report.cache_misses = cache_misses;
        Ok(report)
    }

    /// The discrete-event loop of [`run_clocked`](Self::run_clocked). On error, in-flight
    /// batches stay in `inflight` for the caller to cancel (their leases release on
    /// drop).
    ///
    /// # The event-heap core
    ///
    /// Under [`ArrivalDiscovery::Heap`] (the default) the loop keeps a global
    /// [`ArrivalQueue`] — a lazy-deletion binary min-heap over every in-flight HIT's
    /// [`CrowdPlatform::next_arrival`] look-ahead. Each tick pops the earliest arrival
    /// (plus its bit-equal ties) and polls **only the due HITs**, instead of scanning
    /// and polling the whole in-flight set the way [`ArrivalDiscovery::Scan`] does.
    /// Three details keep the two modes bit-identical:
    ///
    /// * **Lazy deletion** — when a batch leaves the in-flight set (terminated and
    ///   cancelled mid-flight, or exhausted), its queue entry is cancelled in O(log n);
    ///   a stale heap entry can never fire a ghost arrival for it.
    /// * **Untracked HITs poll every tick** — a platform without a finite look-ahead
    ///   for a HIT gets the scan loop's behavior (polled at every `poll_at`), so
    ///   foreign platforms that only resolve arrivals at poll time stay correct.
    /// * **Freshly dispatched HITs poll once on their dispatch tick** — the scan loop
    ///   polls a new batch immediately (an empty poll, since the tick's `poll_at`
    ///   can't exceed the batch's first arrival), and that first contact is when a
    ///   collector seeds the shared accuracy registry. The heap loop reproduces it so
    ///   registry-driven runs stay identical.
    fn clocked_loop<P: CrowdPlatform>(
        &mut self,
        platform: &mut P,
        clock: &mut SimClock,
        dispatches: &mut Vec<DispatchRecord>,
        inflight: &mut Vec<ClockedInflight>,
    ) -> Result<usize> {
        // Clocked ticks are arrival *events*, not dispatch rounds: a fleet ingests one
        // worker submission per tick at minimum, so the stall valve must scale with the
        // fleet's expected submission count or a large-but-progressing run would be
        // aborted mid-flight. `max_ticks` stays the floor for tiny fleets.
        let expected_events: usize = self
            .jobs
            .iter()
            .map(|s| {
                let batches = s.spec.questions.len().div_ceil(s.spec.batch_size).max(1);
                batches * s.engine.decide_workers().unwrap_or(1)
            })
            .sum();
        let max_ticks = self.config.max_ticks.max(expected_events.saturating_mul(2));
        let heap_mode = self.config.discovery == ArrivalDiscovery::Heap;

        // The event heap (Heap mode only): one scheduled arrival per in-flight HIT.
        let mut arrivals = ArrivalQueue::new();

        let mut ticks = 0usize;
        while self.jobs.iter().any(|j| !j.finished()) || !inflight.is_empty() {
            ticks += 1;
            if ticks > max_ticks {
                return Err(CdasError::SchedulerStalled { ticks });
            }
            // HITs dispatched this tick, owed their scan-equivalent first poll.
            let mut fresh: Vec<HitId> = Vec::new();

            // Phase 1: dispatch at the current simulated time. A job keeps one batch in
            // flight; everyone else competes for the workers that are free *now* — which
            // includes workers a mid-flight cancellation released earlier this run.
            platform.advance_time(clock.now());
            let busy: BTreeSet<usize> = inflight.iter().map(|b| b.job).collect();
            for idx in self.dispatch_order(ticks) {
                if self.jobs.get(idx).map_or(true, |j| j.finished()) || busy.contains(&idx) {
                    continue;
                }
                if let Some((range, ticket, lease)) =
                    self.try_dispatch(idx, ticks, clock.now(), platform, dispatches)?
                {
                    // `try_dispatch` just touched this job, so the lookup cannot miss;
                    // dropping the lease on the impossible path releases the workers.
                    let Some(state) = self.jobs.get_mut(idx) else {
                        continue;
                    };
                    let collector = state.engine.begin_clocked(ticket, clock.now());
                    let hit = collector.hit();
                    inflight.push(ClockedInflight {
                        job: idx,
                        range,
                        collector,
                        _lease: lease,
                    });
                    if heap_mode {
                        // Schedule the batch's first arrival; HITs with no finite
                        // look-ahead stay untracked and are polled every tick instead.
                        if let Some(t) = platform.next_arrival(hit).filter(|t| t.is_finite()) {
                            arrivals.arm(hit, t);
                        }
                        fresh.push(hit);
                    }
                }
            }

            if inflight.is_empty() {
                // Unfinished jobs but nothing in flight and nothing leasable: with every
                // lease already released this can only be a progress bug.
                return Err(CdasError::SchedulerStalled { ticks });
            }

            // Phase 2: advance the clock to the next arrival across all in-flight HITs
            // and ingest it. Completed batches are finalized immediately and their leases
            // released, so the next tick's dispatch phase sees the freed workers.
            //
            // Heap mode reads the next arrival off the queue's top in O(log n); Scan mode
            // folds `next_arrival` over the whole in-flight set. The two minima are equal
            // because every tracked HIT's armed time *is* its `next_arrival` (armed at
            // dispatch, re-armed after each poll), and untracked HITs have no finite
            // look-ahead in either mode.
            let next = if heap_mode {
                arrivals.next_time().unwrap_or(f64::INFINITY)
            } else {
                inflight
                    .iter()
                    .filter_map(|b| platform.next_arrival(b.collector.hit()))
                    .filter(|t| t.is_finite())
                    .fold(f64::INFINITY, f64::min)
            };
            let poll_at = if next.is_finite() {
                clock.advance_to(next)
            } else {
                // No future arrivals anywhere: drain whatever is left end-of-time.
                f64::INFINITY
            };

            // Heap mode: pop the due arrivals — the top entry plus its bit-equal ties, in
            // HIT-id order. Everything else stays armed and is *not* polled this tick.
            let mut due: BTreeSet<HitId> = BTreeSet::new();
            if heap_mode && poll_at.is_finite() {
                while let Some((t, hit)) = arrivals.peek() {
                    if t > poll_at {
                        break;
                    }
                    arrivals.pop();
                    due.insert(hit);
                }
            }

            let mut i = 0;
            while i < inflight.len() {
                let Some(entry) = inflight.get_mut(i) else {
                    break;
                };
                let hit = entry.collector.hit();
                if heap_mode {
                    // Poll only HITs with a due arrival, plus the scan-equivalence
                    // cases: freshly dispatched batches (their first, possibly empty,
                    // poll is when a collector seeds the shared registry) and untracked
                    // HITs (no finite look-ahead — the platform resolves their arrivals
                    // at poll time, so they get the scan loop's every-tick poll).
                    let untracked = !arrivals.tracks(hit);
                    if !(due.contains(&hit) || fresh.contains(&hit) || untracked) {
                        i += 1;
                        continue;
                    }
                }
                let cost_before = platform.total_cost();
                let answers = platform.poll(hit, poll_at);
                let charged = platform.total_cost() - cost_before;
                entry.collector.record_charge(charged);
                if charged != 0.0 {
                    if let Some(observer) = &self.observer {
                        observer.on_charge(JobId(entry.job), hit, charged, poll_at);
                    }
                }
                if poll_at.is_infinite() {
                    // End-of-time drain (a platform without arrival look-ahead): the
                    // answers carry their own arrival times, so move the clock to the
                    // latest one before stamping verdicts and completions with it.
                    if let Some(last) = answers.last() {
                        clock.advance_to(last.arrived_at);
                    }
                }
                let terminated =
                    entry
                        .collector
                        .ingest(&answers, clock.now(), Some(&self.cache))?;
                let exhausted = platform.next_arrival(hit).is_none();
                if !(terminated || exhausted) {
                    if heap_mode {
                        // Reschedule the HIT's next look-ahead. A non-finite look-ahead
                        // demotes it to untracked (polled every tick, like Scan); the
                        // re-arm of an unchanged time is a no-op.
                        match platform.next_arrival(hit).filter(|t| t.is_finite()) {
                            Some(t) => arrivals.arm(hit, t),
                            None => {
                                arrivals.cancel(hit);
                            }
                        }
                    }
                    i += 1;
                    continue;
                }
                let batch = inflight.remove(i);
                // Lazy deletion: the finished HIT leaves the arrival queue the moment it
                // leaves the in-flight set, so a stale heap entry can never fire a ghost
                // arrival for a cancelled or exhausted batch.
                arrivals.cancel(hit);
                let receipt = terminated.then(|| platform.cancel(hit, clock.now()));
                // `batch` (and with it the lease guard) drops at the end of this
                // iteration — after finalize, before the next tick's dispatch phase sees
                // the ledger — on the success and the `?` path alike.
                let clocked = batch
                    .collector
                    .finalize(clock.now(), receipt, Some(&self.cache))?;
                // Same provenance as the unclocked loop: the index is ours, so a miss
                // can only mean a corrupted in-flight set — skip, don't panic.
                let Some(state) = self.jobs.get_mut(batch.job) else {
                    continue;
                };
                state.completed_at = state.completed_at.max(clocked.completed_at);
                state.first_verdict_at = match (state.first_verdict_at, clocked.first_verdict_at) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                state.reclaimed_minutes += clocked.reclaimed_minutes;
                state.answers_cancelled += clocked.answers_cancelled;
                if let Some(observer) = &self.observer {
                    observer.on_commit(&BatchCommit {
                        job: JobId(batch.job),
                        seq: state.runs.len(),
                        hit,
                        range: batch.range.clone(),
                        charge: clocked.outcome.cost,
                        completed_at: clocked.completed_at,
                        first_verdict_at: clocked.first_verdict_at,
                        reclaimed_minutes: clocked.reclaimed_minutes,
                        answers_cancelled: clocked.answers_cancelled,
                        cancelled: clocked.cancelled,
                        outcome: clocked.outcome.clone(),
                    });
                }
                state.runs.push((batch.range, clocked.outcome));
            }
        }
        Ok(ticks)
    }

    /// Phase-1 dispatch for one job, shared by the unclocked and clocked loops: lease the
    /// job's workers, slice its next batch, publish to the leased workers, and record the
    /// dispatch at tick `tick` / simulated time `at`. Returns `None` — after recording
    /// the wait — when the ledger cannot satisfy the lease right now. On success the
    /// [`WorkerLease`] guard is handed to the caller, whose drop is the release.
    fn try_dispatch<P: CrowdPlatform>(
        &mut self,
        idx: usize,
        tick: usize,
        at: f64,
        platform: &mut P,
        dispatches: &mut Vec<DispatchRecord>,
    ) -> Result<Option<(std::ops::Range<usize>, BatchTicket, WorkerLease)>> {
        // Callers iterate `dispatch_order`, which only yields valid indices; an
        // unknown one simply dispatches nothing.
        let Some(state) = self.jobs.get_mut(idx) else {
            return Ok(None);
        };
        let needed = state.engine.decide_workers()?;
        match self.ledger.try_lease(needed, &mut self.rng) {
            None => {
                state.ticks_waited += 1;
                Ok(None)
            }
            Some(lease) => {
                let end = (state.cursor + state.spec.batch_size).min(state.spec.questions.len());
                let batch = state
                    .spec
                    .questions
                    .get(state.cursor..end)
                    .unwrap_or(&[])
                    .to_vec();
                let ticket = state
                    .engine
                    .publish_batch_to(platform, batch, lease.workers())?;
                let record = DispatchRecord {
                    tick,
                    job: JobId(idx),
                    hit: ticket.hit,
                    workers: lease.workers().to_vec(),
                    at,
                };
                if let Some(observer) = &self.observer {
                    observer.on_dispatch(&record);
                }
                dispatches.push(record);
                state.workers_seen.extend(lease.workers().iter().copied());
                let range = state.cursor..end;
                state.cursor = end;
                Ok(Some((range, ticket, lease)))
            }
        }
    }

    /// Up-front feasibility: a demand larger than `roster_len` would wait forever
    /// (`roster_len` is the whole ledger for sequential runs, one shard's partition for
    /// parallel ones).
    fn check_feasibility(&self, roster_len: usize) -> Result<()> {
        for state in &self.jobs {
            let needed = state.engine.decide_workers()?;
            if needed > roster_len {
                return Err(CdasError::PoolExhausted {
                    needed,
                    available: roster_len,
                });
            }
        }
        Ok(())
    }

    /// The facts a run loop knows about one shard; [`JobScheduler::report`] fills in the
    /// scored totals ([`ShardReport::questions`], cost, reclaimed minutes) from the
    /// per-job reports it builds anyway, so nothing is scored twice.
    fn seed_shard(&self, ticks: usize, makespan: f64, wall_seconds: f64) -> ShardSeed {
        ShardSeed {
            shard: 0,
            jobs: (0..self.jobs.len()).map(JobId).collect(),
            ticks,
            makespan,
            wall_seconds,
        }
    }

    /// Assemble the fleet report from completed job states.
    fn report(
        &self,
        ticks: usize,
        dispatches: Vec<DispatchRecord>,
        makespan: f64,
        shards: Vec<ShardSeed>,
    ) -> FleetReport {
        let jobs: Vec<JobReport> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(idx, state)| JobReport {
                job: JobId(idx),
                name: state.spec.job.name.clone(),
                kind: state.spec.job.kind,
                priority: state.spec.priority,
                report: score_hits(
                    state
                        .runs
                        .iter()
                        .map(|(r, o)| (state.spec.questions.get(r.clone()).unwrap_or(&[]), o)),
                ),
                hits: state.runs.len(),
                ticks_waited: state.ticks_waited,
                distinct_workers: state.workers_seen.len(),
                time_to_first_verdict: state.first_verdict_at,
                completed_at: state.completed_at,
                reclaimed_minutes: state.reclaimed_minutes,
                answers_cancelled: state.answers_cancelled,
            })
            .collect();
        let fleet = score_hits(self.jobs.iter().flat_map(|s| {
            s.runs
                .iter()
                .map(|(r, o)| (s.spec.questions.get(r.clone()).unwrap_or(&[]), o))
        }));
        let shards = shards
            .into_iter()
            .map(|seed| {
                let mut questions = 0usize;
                let mut cost = 0.0f64;
                let mut reclaimed_minutes = 0.0f64;
                let mut answers_cancelled = 0usize;
                for id in &seed.jobs {
                    // Shard seeds only carry ids of jobs in this scheduler.
                    let Some(job) = jobs.get(id.0) else {
                        continue;
                    };
                    questions += job.report.questions;
                    cost += job.report.cost;
                    reclaimed_minutes += job.reclaimed_minutes;
                    answers_cancelled += job.answers_cancelled;
                }
                ShardReport {
                    shard: seed.shard,
                    jobs: seed.jobs,
                    ticks: seed.ticks,
                    makespan: seed.makespan,
                    questions,
                    cost,
                    reclaimed_minutes,
                    answers_cancelled,
                    wall_seconds: seed.wall_seconds,
                }
            })
            .collect();
        FleetReport {
            jobs,
            fleet,
            shards,
            ticks,
            makespan,
            reclaimed_minutes: self.jobs.iter().map(|s| s.reclaimed_minutes).sum(),
            answers_cancelled: self.jobs.iter().map(|s| s.answers_cancelled).sum(),
            dispatches,
            registry_size: self.cache.shared().len(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkerCountPolicy;
    use crate::fixtures::demo_questions;
    use cdas_core::economics::CostModel;
    use cdas_crowd::pool::{PoolConfig, WorkerPool};
    use cdas_crowd::SimulatedPlatform;

    fn fixed_engine(n: usize) -> EngineConfig {
        EngineConfig {
            workers: WorkerCountPolicy::Fixed(n),
            domain_size: Some(3),
            ..EngineConfig::default()
        }
    }

    fn setup(pool_size: usize, seed: u64) -> (SimulatedPlatform, PoolLedger) {
        let pool = WorkerPool::generate(&PoolConfig::clean(pool_size, 0.8, seed));
        let ledger = PoolLedger::from_pool(&pool);
        (
            SimulatedPlatform::new(pool, CostModel::default(), seed),
            ledger,
        )
    }

    fn staggered_setup(
        pool_size: usize,
        accuracy: f64,
        seed: u64,
    ) -> (SimulatedPlatform, PoolLedger) {
        let pool = WorkerPool::generate(&cdas_crowd::pool::PoolConfig {
            latency: cdas_crowd::arrival::LatencyModel::Exponential { mean: 5.0 },
            ..cdas_crowd::pool::PoolConfig::clean(pool_size, accuracy, seed)
        });
        let ledger = PoolLedger::from_pool(&pool);
        (
            SimulatedPlatform::new(pool, CostModel::default(), seed),
            ledger,
        )
    }

    #[test]
    fn clocked_run_advances_simulated_time_and_keeps_quality() {
        let (mut platform, ledger) = staggered_setup(20, 0.8, 9);
        let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
        for name in ["a", "b"] {
            scheduler.submit(
                ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(10, 3))
                    .with_engine(fixed_engine(7))
                    .with_batch_size(5),
            );
        }
        let report = scheduler.run_clocked(&mut platform).unwrap();
        assert_eq!(report.fleet.questions, 20);
        assert!(report.fleet.accuracy > 0.7);
        assert!(report.makespan > 0.0, "simulated time passed");
        assert!(report.questions_per_minute() > 0.0);
        for job in &report.jobs {
            assert!(job.completed_at > 0.0);
            assert!(job.completed_at <= report.makespan + 1e-9);
            let first = job.time_to_first_verdict.expect("verdicts were produced");
            assert!(first <= job.completed_at);
        }
        // Dispatches carry their simulated time, monotonically within each job.
        for d in &report.dispatches {
            assert!(d.at >= 0.0);
        }
        let max_at = report.dispatches.iter().map(|d| d.at).fold(0.0, f64::max);
        assert!(max_at > 0.0, "later batches dispatch later than time zero");
    }

    #[test]
    fn clocked_termination_shortens_makespan_and_reclaims_minutes() {
        // A 9-worker pool and two 7-worker jobs: only one HIT fits in flight, so job B
        // can only start when job A's batch releases its lease. With early termination
        // that happens mid-flight — strictly earlier than the batch's natural makespan.
        let run = |termination: Option<TerminationStrategy>| {
            let (mut platform, ledger) = staggered_setup(9, 0.9, 33);
            let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
            for name in ["a", "b"] {
                scheduler.submit(
                    ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(6, 3))
                        .with_engine(EngineConfig {
                            termination,
                            ..fixed_engine(7)
                        })
                        .with_batch_size(9),
                );
            }
            let report = scheduler.run_clocked(&mut platform).unwrap();
            let platform_cost = platform.total_cost();
            (report, platform_cost)
        };
        use cdas_core::online::TerminationStrategy;
        let (baseline, baseline_cost) = run(None);
        let (early, early_cost) = run(Some(TerminationStrategy::ExpMax));
        assert_eq!(baseline.reclaimed_minutes, 0.0);
        assert!(early.reclaimed_minutes > 0.0, "leases came back mid-flight");
        assert!(early.answers_cancelled > 0);
        assert!(
            early.makespan < baseline.makespan,
            "termination makespan {} must beat the end-of-time {}",
            early.makespan,
            baseline.makespan
        );
        assert!(early.fleet.cost < baseline.fleet.cost, "real savings");
        // Engine-side accounting agrees with the platform ledger in both modes.
        assert!((early.fleet.cost - early_cost).abs() < 1e-9);
        assert!((baseline.fleet.cost - baseline_cost).abs() < 1e-9);
    }

    #[test]
    fn clocked_runs_are_deterministic_for_a_seed() {
        let run = || {
            let (mut platform, ledger) = staggered_setup(25, 0.8, 11);
            let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
            for name in ["x", "y"] {
                scheduler.submit(
                    ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(8, 2))
                        .with_engine(fixed_engine(7))
                        .with_batch_size(5),
                );
            }
            scheduler.run_clocked(&mut platform).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.dispatches, b.dispatches);
        assert_eq!(a.fleet, b.fleet);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn three_jobs_complete_over_one_pool() {
        let (mut platform, ledger) = setup(20, 9);
        let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
        for name in ["a", "b", "c"] {
            scheduler.submit(
                ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(12, 3))
                    .with_engine(fixed_engine(7))
                    .with_batch_size(5),
            );
        }
        let report = scheduler.run(&mut platform).unwrap();
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.fleet.questions, 36, "3 jobs × 12 real questions");
        for job in &report.jobs {
            assert!(job.hits >= 3, "{} ran in batches", job.name);
            assert!(job.report.accuracy > 0.8, "{} accuracy", job.name);
            assert!(job.distinct_workers >= 7);
        }
        // A 20-worker pool fits only two 7-worker HITs at once: contention happened.
        assert!(
            report.jobs.iter().any(|j| j.ticks_waited > 0),
            "expected at least one job to wait for the pool"
        );
        assert!(report.ticks > 1);
        assert!(report.registry_size > 0);
    }

    #[test]
    fn concurrent_leases_never_share_a_worker() {
        let (mut platform, ledger) = setup(30, 5);
        let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
        for name in ["a", "b", "c"] {
            scheduler.submit(
                ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(10, 2))
                    .with_engine(fixed_engine(9))
                    .with_batch_size(4),
            );
        }
        let report = scheduler.run(&mut platform).unwrap();
        // Group dispatches by tick; concurrently in-flight worker sets must be disjoint.
        for a in &report.dispatches {
            for b in &report.dispatches {
                if a.tick == b.tick && (a.job, a.hit) != (b.job, b.hit) {
                    assert!(
                        a.workers.iter().all(|w| !b.workers.contains(w)),
                        "tick {}: jobs {:?} and {:?} share a worker",
                        a.tick,
                        a.job,
                        b.job
                    );
                }
            }
            // And within one HIT every worker appears once.
            let mut ids: Vec<u64> = a.workers.iter().map(|w| w.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), a.workers.len());
        }
    }

    #[test]
    fn priority_jobs_drain_first_when_the_pool_fits_one_hit() {
        let (mut platform, ledger) = setup(10, 3);
        let mut scheduler = JobScheduler::new(
            SchedulerConfig {
                policy: DispatchPolicy::Priority,
                ..SchedulerConfig::default()
            },
            ledger,
        );
        let low = scheduler.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, "low", demo_questions(9, 3))
                .with_engine(fixed_engine(7))
                .with_batch_size(4)
                .with_priority(1),
        );
        let high = scheduler.submit(
            ScheduledJob::named(JobKind::ImageTagging, "high", demo_questions(9, 3))
                .with_engine(fixed_engine(7))
                .with_batch_size(4)
                .with_priority(9),
        );
        let report = scheduler.run(&mut platform).unwrap();
        let last_high = report
            .dispatches
            .iter()
            .filter(|d| d.job == high)
            .map(|d| d.tick)
            .max()
            .unwrap();
        let first_low = report
            .dispatches
            .iter()
            .filter(|d| d.job == low)
            .map(|d| d.tick)
            .min()
            .unwrap();
        assert!(
            last_high < first_low,
            "high-priority job must fully drain first (high last tick {last_high}, low first tick {first_low})"
        );
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let run = || {
            let (mut platform, ledger) = setup(25, 11);
            let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
            for name in ["x", "y"] {
                scheduler.submit(
                    ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(8, 2))
                        .with_engine(fixed_engine(7))
                        .with_batch_size(5),
                );
            }
            scheduler.run(&mut platform).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.dispatches, b.dispatches);
        assert_eq!(a.fleet, b.fleet);
        assert_eq!(a.ticks, b.ticks);
    }

    #[test]
    fn oversized_job_is_rejected_up_front() {
        let (mut platform, ledger) = setup(5, 1);
        let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
        scheduler.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, "huge", demo_questions(4, 1))
                .with_engine(fixed_engine(9)),
        );
        match scheduler.run(&mut platform) {
            Err(CdasError::PoolExhausted { needed, available }) => {
                assert_eq!(needed, 9);
                assert_eq!(available, 5);
            }
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
    }

    #[test]
    fn empty_scheduler_reports_an_empty_fleet() {
        let (mut platform, ledger) = setup(5, 1);
        let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
        let report = scheduler.run(&mut platform).unwrap();
        assert!(report.jobs.is_empty());
        assert_eq!(report.ticks, 0);
        assert_eq!(report.fleet.questions, 0);
    }

    #[test]
    fn one_shard_parallel_run_matches_run_clocked_byte_for_byte() {
        // The tentpole regression: `run_clocked` is the one-shard special case of the
        // parallel code path. Identical pools, seeds and jobs must produce identical
        // reports — dispatch timeline, verdict metrics, shard rollup, everything except
        // host wall-clock timing.
        let submit_jobs = |scheduler: &mut JobScheduler| {
            for name in ["a", "b", "c"] {
                scheduler.submit(
                    ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(10, 3))
                        .with_engine(fixed_engine(7))
                        .with_batch_size(5),
                );
            }
        };
        let pool = || {
            WorkerPool::generate(&cdas_crowd::pool::PoolConfig {
                latency: cdas_crowd::arrival::LatencyModel::Exponential { mean: 5.0 },
                ..cdas_crowd::pool::PoolConfig::clean(20, 0.8, 9)
            })
        };

        let mut sequential_platform = SimulatedPlatform::new(pool(), CostModel::default(), 9);
        let mut sequential =
            JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool()));
        submit_jobs(&mut sequential);
        let clocked = sequential.run_clocked(&mut sequential_platform).unwrap();

        let mut sharded =
            cdas_crowd::sharded::ShardedPlatform::split(&pool(), CostModel::default(), 9, 1);
        let mut parallel =
            JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool()));
        submit_jobs(&mut parallel);
        let par = parallel.run_parallel(&mut sharded).unwrap();

        assert_eq!(
            clocked.ignoring_wall_clock(),
            par.ignoring_wall_clock(),
            "1-shard run_parallel must be run_clocked"
        );
        assert_eq!(par.shards.len(), 1);
        assert_eq!(par.parallel_speedup(), 1.0);
        // The platform-side simulations agree too.
        assert!(
            (sequential_platform.total_cost() - sharded.total_cost()).abs() < 1e-12,
            "identical simulations must charge identically"
        );
    }

    #[test]
    fn parallel_fleet_spreads_jobs_over_shards() {
        let pool = WorkerPool::generate(&cdas_crowd::pool::PoolConfig {
            latency: cdas_crowd::arrival::LatencyModel::Exponential { mean: 5.0 },
            ..cdas_crowd::pool::PoolConfig::clean(32, 0.8, 21)
        });
        let mut platform =
            cdas_crowd::sharded::ShardedPlatform::split(&pool, CostModel::default(), 21, 4);
        let mut scheduler =
            JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
        for i in 0..8 {
            scheduler.submit(
                ScheduledJob::named(JobKind::SentimentAnalytics, format!("job-{i}"), {
                    demo_questions(8, 2)
                })
                .with_engine(fixed_engine(7))
                .with_batch_size(5),
            );
        }
        let report = scheduler.run_parallel(&mut platform).unwrap();
        assert_eq!(report.jobs.len(), 8);
        assert_eq!(report.shards.len(), 4);
        // Round-robin striping: shard s owns jobs s and s + 4.
        for (s, shard) in report.shards.iter().enumerate() {
            assert_eq!(shard.shard, s);
            assert_eq!(shard.jobs, vec![JobId(s), JobId(s + 4)]);
            assert_eq!(
                shard.questions, 16,
                "each shard resolved its jobs' questions"
            );
            assert!(shard.ticks > 0);
            assert!(shard.makespan > 0.0);
        }
        assert_eq!(report.fleet.questions, 64);
        assert!(report.fleet.accuracy > 0.7, "{}", report.fleet.accuracy);
        assert_eq!(
            report.ticks,
            report.shards.iter().map(|s| s.ticks).sum::<usize>()
        );
        let max_shard_makespan = report.shards.iter().map(|s| s.makespan).fold(0.0, f64::max);
        assert_eq!(report.makespan, max_shard_makespan);
        // Every job completed and is reassembled in submission order.
        for (i, job) in report.jobs.iter().enumerate() {
            assert_eq!(job.job, JobId(i));
            assert_eq!(job.report.questions, 8);
        }
        // Dispatch timeline: HIT ids are globally unique (disjoint shard namespaces) and
        // sorted by simulated time.
        let mut hits: Vec<u64> = report.dispatches.iter().map(|d| d.hit.0).collect();
        let total = hits.len();
        hits.sort_unstable();
        hits.dedup();
        assert_eq!(hits.len(), total, "two shards minted the same HIT id");
        assert!(report.dispatches.windows(2).all(|w| w[0].at <= w[1].at));
        // Workers served at most one shard: each job's distinct workers lie inside its
        // shard's roster.
        for (j, job) in report.jobs.iter().enumerate() {
            let shard = &platform.shards()[j % 4];
            for d in report.dispatches.iter().filter(|d| d.job == job.job) {
                assert!(d.workers.iter().all(|w| shard.roster().contains(w)));
            }
        }
    }

    #[test]
    fn parallel_runs_are_deterministic_per_shard() {
        // Shards are independent deterministic simulations; two identical parallel runs
        // must agree on every job report and the final registry, whatever the thread
        // interleaving did to the cross-shard read timing of *means* (the jobs here all
        // carry gold questions, so verification never consults a cross-shard mean).
        let run = || {
            let pool = WorkerPool::generate(&cdas_crowd::pool::PoolConfig {
                latency: cdas_crowd::arrival::LatencyModel::Exponential { mean: 5.0 },
                ..cdas_crowd::pool::PoolConfig::clean(24, 0.8, 5)
            });
            let mut platform =
                cdas_crowd::sharded::ShardedPlatform::split(&pool, CostModel::default(), 5, 3);
            let mut scheduler =
                JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
            for i in 0..6 {
                scheduler.submit(
                    ScheduledJob::named(
                        JobKind::SentimentAnalytics,
                        format!("j{i}"),
                        demo_questions(6, 2),
                    )
                    .with_engine(fixed_engine(7))
                    .with_batch_size(4),
                );
            }
            let report = scheduler.run_parallel(&mut platform).unwrap();
            (report, scheduler.shared_registry().snapshot())
        };
        let (a, registry_a) = run();
        let (b, registry_b) = run();
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.dispatches, b.dispatches);
        assert_eq!(a.fleet, b.fleet);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(registry_a, registry_b);
    }

    #[test]
    fn oversized_job_for_its_shard_is_rejected_up_front() {
        // 8 workers per shard after a 2-way split of 16: a 9-worker job fit the pool but
        // not its shard.
        let pool = WorkerPool::generate(&cdas_crowd::pool::PoolConfig::clean(16, 0.8, 2));
        let mut platform =
            cdas_crowd::sharded::ShardedPlatform::split(&pool, CostModel::default(), 2, 2);
        let mut scheduler =
            JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
        scheduler.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, "wide", demo_questions(4, 1))
                .with_engine(fixed_engine(9)),
        );
        match scheduler.run_parallel(&mut platform) {
            Err(CdasError::PoolExhausted { needed, available }) => {
                assert_eq!(needed, 9);
                assert_eq!(available, 8);
            }
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
    }

    #[test]
    fn externally_leased_workers_are_excluded_from_parallel_shards() {
        // The parent ledger is a concurrent table: workers checked out through another
        // handle when run_parallel starts must not be leased again by any shard thread.
        let pool = WorkerPool::generate(&cdas_crowd::pool::PoolConfig::clean(24, 0.8, 6));
        let ledger = PoolLedger::from_pool(&pool);
        let external = ledger.clone();
        let mut rng = StdRng::seed_from_u64(99);
        let held = external.try_lease(4, &mut rng).expect("external lease");

        let mut platform =
            cdas_crowd::sharded::ShardedPlatform::split(&pool, CostModel::default(), 6, 2);
        let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
        for name in ["a", "b"] {
            scheduler.submit(
                ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(6, 2))
                    .with_engine(fixed_engine(5)),
            );
        }
        let report = scheduler.run_parallel(&mut platform).unwrap();
        assert_eq!(report.fleet.questions, 12, "the fleet still completed");
        for dispatch in &report.dispatches {
            for w in held.workers() {
                assert!(
                    !dispatch.workers.contains(w),
                    "externally leased worker {w:?} was double-assigned by a shard"
                );
            }
        }
    }

    #[test]
    fn more_shards_than_jobs_leaves_trailing_shards_idle() {
        let pool = WorkerPool::generate(&cdas_crowd::pool::PoolConfig::clean(32, 0.8, 4));
        let mut platform =
            cdas_crowd::sharded::ShardedPlatform::split(&pool, CostModel::default(), 4, 4);
        let mut scheduler =
            JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
        scheduler.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, "only", demo_questions(6, 2))
                .with_engine(fixed_engine(5)),
        );
        let report = scheduler.run_parallel(&mut platform).unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.shards.len(), 4);
        assert_eq!(report.shards[0].questions, 6);
        for idle in &report.shards[1..] {
            assert_eq!(idle.questions, 0);
            assert_eq!(idle.ticks, 0);
            assert!(idle.jobs.is_empty());
        }
    }

    /// A platform whose event stream never dries up: `next_arrival` always promises a
    /// future event, so an untermenable batch stays in flight until the scheduler's
    /// stall valve fires — the regression scenario for lease leaks on the error path.
    struct NeverDraining {
        inner: SimulatedPlatform,
        fake_next: std::cell::Cell<f64>,
        cancels: std::cell::Cell<usize>,
    }

    impl CrowdPlatform for NeverDraining {
        fn publish(&mut self, request: cdas_crowd::hit::HitRequest) -> HitId {
            self.inner.publish(request)
        }
        fn publish_to(
            &mut self,
            request: cdas_crowd::hit::HitRequest,
            workers: &[WorkerId],
        ) -> HitId {
            self.inner.publish_to(request, workers)
        }
        fn advance_time(&mut self, now: f64) {
            self.inner.advance_time(now);
        }
        fn poll(&mut self, hit: HitId, now: f64) -> Vec<cdas_crowd::platform::WorkerAnswer> {
            self.inner.poll(hit, now)
        }
        fn next_arrival(&self, hit: HitId) -> Option<f64> {
            let real = self.inner.next_arrival(hit);
            let fake = self.fake_next.get() + 1.0;
            self.fake_next.set(fake);
            Some(real.unwrap_or(fake))
        }
        fn cancel(&mut self, hit: HitId, now: f64) -> cdas_crowd::platform::CancelReceipt {
            self.cancels.set(self.cancels.get() + 1);
            self.inner.cancel(hit, now)
        }
        fn total_cost(&self) -> f64 {
            self.inner.total_cost()
        }
    }

    #[test]
    fn stalled_clocked_fleet_leaves_the_ledger_empty_and_cancels_its_hits() {
        // Regression for the lease leak: `run_clocked` used to release leases only on
        // the happy path, so an early `?` return (here: SchedulerStalled from the stall
        // valve) stranded the in-flight batch's workers. With RAII guards the ledger
        // must come back whole, and the error teardown must cancel the orphaned HIT so
        // the platform stops charging for it.
        let pool = WorkerPool::generate(&PoolConfig::clean(10, 0.8, 13));
        let mut platform = NeverDraining {
            inner: SimulatedPlatform::new(pool.clone(), CostModel::default(), 13),
            fake_next: std::cell::Cell::new(0.0),
            cancels: std::cell::Cell::new(0),
        };
        let ledger = PoolLedger::from_pool(&pool);
        let observer = ledger.clone();
        let mut scheduler = JobScheduler::new(
            SchedulerConfig {
                max_ticks: 40,
                ..SchedulerConfig::default()
            },
            ledger,
        );
        scheduler.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, "stuck", demo_questions(4, 1))
                .with_engine(fixed_engine(7)),
        );
        match scheduler.run_clocked(&mut platform) {
            Err(CdasError::SchedulerStalled { .. }) => {}
            other => panic!("expected SchedulerStalled, got {other:?}"),
        }
        assert_eq!(
            observer.leased(),
            0,
            "the stalled batch's lease must have been released"
        );
        assert_eq!(observer.outstanding_leases(), 0);
        assert_eq!(observer.available(), 10, "the whole roster is back");
        assert!(
            platform.cancels.get() >= 1,
            "the orphaned in-flight HIT was cancelled during teardown"
        );
    }

    #[test]
    fn shared_registry_survives_for_a_second_fleet() {
        let (mut platform, ledger) = setup(15, 21);
        let mut first = JobScheduler::new(SchedulerConfig::default(), ledger.clone());
        first.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, "wave-1", demo_questions(6, 4))
                .with_engine(fixed_engine(7)),
        );
        first.run(&mut platform).unwrap();
        let carried = first.shared_registry().clone();
        assert!(!carried.is_empty());

        let mut second =
            JobScheduler::with_shared_registry(SchedulerConfig::default(), ledger, carried.clone());
        // Wave 2 has no gold questions at all: every estimate it verifies with was
        // learned by wave 1.
        let id = second.submit(
            ScheduledJob::named(JobKind::ImageTagging, "wave-2", demo_questions(6, 0))
                .with_engine(fixed_engine(7)),
        );
        let report = second.run(&mut platform).unwrap();
        assert!(report.fleet.accuracy > 0.5);
        let outcome = second.outcomes(id)[0].1;
        assert!(!outcome.registry.is_empty());
        assert!(outcome.registry.iter().all(|(_, e)| e.samples > 0));
    }
}
