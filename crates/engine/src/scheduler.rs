//! The multi-job scheduler: N concurrent analytics jobs over one shared worker pool.
//!
//! §2.1 describes a job manager that accepts *jobs* — plural — yet Algorithm 1 drives one
//! HIT batch at a time. This module generalizes the two-phase engine to a fleet: a
//! [`JobScheduler`] accepts any number of [`ScheduledJob`]s (TSA and IT mixed), splits each
//! into HIT batches, and dispatches them onto a single shared pool in *ticks*. Every tick
//! interleaves the two phases across jobs:
//!
//! 1. **Dispatch (phase 1)** — jobs are visited in [`DispatchPolicy`] order; each
//!    unfinished job tries to check its required workers out of the shared
//!    [`PoolLedger`]. Leases are disjoint, so two in-flight HITs never share a worker and
//!    no worker is ever assigned twice to one question. A job that cannot get a lease
//!    waits for the next tick (recorded as contention in its [`crate::metrics::JobReport`]).
//! 2. **Ingest (phase 2)** — every in-flight batch is collected: answers polled, gold
//!    estimates absorbed into one fleet-wide
//!    [`SharedAccuracyRegistry`] behind an
//!    [`AccuracyCache`], questions verified with the *shared* estimates (a worker's
//!    accuracy learned in job A immediately reweights their votes in job B), and the lease
//!    released.
//!
//! The run ends when every job has ingested its last batch, returning a
//! [`crate::metrics::FleetReport`] with per-job and fleet-wide accuracy/cost/throughput.
//!
//! [`JobScheduler::run`] polls every batch at the end of time — batches live exactly one
//! tick, and ticks are not time. [`JobScheduler::run_clocked`] is the discrete-event
//! variant: ticks advance a [`SimClock`] to the next answer arrival under the pool's
//! [`cdas_crowd::arrival::LatencyModel`], batches stay in flight while their workers are
//! genuinely working, early-terminated HITs are cancelled *mid-flight* with their leases
//! returned to the pool for other jobs to pick up, and the report additionally carries
//! makespan, time-to-first-verdict and worker-minutes reclaimed.
//!
//! ```
//! use cdas_core::economics::CostModel;
//! use cdas_crowd::lease::PoolLedger;
//! use cdas_crowd::pool::{PoolConfig, WorkerPool};
//! use cdas_crowd::SimulatedPlatform;
//! use cdas_engine::scheduler::{JobScheduler, ScheduledJob, SchedulerConfig};
//! use cdas_engine::job_manager::JobKind;
//!
//! let pool = WorkerPool::generate(&PoolConfig::clean(20, 0.8, 7));
//! let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 7);
//! let mut scheduler = JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
//!
//! let questions = cdas_engine::scheduler::demo_questions(10, 2);
//! scheduler.submit(ScheduledJob::named(JobKind::SentimentAnalytics, "demo", questions));
//! let report = scheduler.run(&mut platform).unwrap();
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.fleet.accuracy > 0.5);
//! ```

use std::collections::BTreeSet;

use cdas_core::sharing::{AccuracyCache, SharedAccuracyRegistry};
use cdas_core::types::{AnswerDomain, HitId, Label, QuestionId, WorkerId};
use cdas_core::{CdasError, Result};
use cdas_crowd::lease::{LeaseId, PoolLedger};
use cdas_crowd::platform::CrowdPlatform;
use cdas_crowd::question::CrowdQuestion;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use cdas_crowd::clock::SimClock;

use crate::clocked::ClockedCollector;
use crate::engine::{BatchTicket, CrowdsourcingEngine, EngineConfig, HitOutcome};
use crate::job_manager::{AnalyticsJob, JobKind};
use crate::metrics::{score_hits, FleetReport, JobReport};
use crate::query::Query;

/// Identifier of a submitted job (the submission index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub usize);

/// How the dispatch phase orders jobs when they compete for the same free workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Rotate which job gets first pick each tick — fair interleaving, the LogBase-style
    /// multi-tenant default.
    #[default]
    RoundRobin,
    /// Visit jobs by descending [`ScheduledJob::priority`]; equal priorities rotate
    /// round-robin. A starved low-priority job still runs once the pool frees up.
    Priority,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Dispatch ordering policy.
    pub policy: DispatchPolicy,
    /// Seed for the lease-selection RNG (worker checkout is randomized like §3.1's
    /// "n random workers", but only over the *free* part of the roster).
    pub seed: u64,
    /// Safety valve: abort with [`CdasError::SchedulerStalled`] after this many ticks.
    pub max_ticks: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            policy: DispatchPolicy::RoundRobin,
            seed: 42,
            max_ticks: 10_000,
        }
    }
}

/// One analytics job as the scheduler sees it: the registered [`AnalyticsJob`], its
/// rendered crowd questions, and the engine configuration its batches run with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledJob {
    /// The registered job (kind, query, name).
    pub job: AnalyticsJob,
    /// The human-part work items, already rendered to crowd questions (gold flagged).
    pub questions: Vec<CrowdQuestion>,
    /// Engine configuration for this job's batches.
    pub engine: EngineConfig,
    /// Questions per HIT batch (`B`).
    pub batch_size: usize,
    /// Dispatch priority (higher runs first under [`DispatchPolicy::Priority`]).
    pub priority: u8,
}

impl ScheduledJob {
    /// Schedule a registered job over its rendered questions.
    ///
    /// The engine defaults are derived from the job's query (required accuracy and domain
    /// size); override with [`with_engine`](Self::with_engine).
    pub fn new(job: AnalyticsJob, questions: Vec<CrowdQuestion>) -> Self {
        let engine = EngineConfig::for_job(job.query.required_accuracy, job.query.domain.size());
        ScheduledJob {
            job,
            questions,
            engine,
            batch_size: 20,
            priority: 0,
        }
    }

    /// Convenience for tests and examples: synthesize the [`AnalyticsJob`] from a kind, a
    /// name, and the questions themselves (the query domain is taken from the first
    /// question; required accuracy defaults to 0.9).
    pub fn named(kind: JobKind, name: impl Into<String>, questions: Vec<CrowdQuestion>) -> Self {
        let name = name.into();
        let domain = questions
            .first()
            .map(|q| q.domain.clone())
            .unwrap_or_else(|| AnswerDomain::from_strs(&["yes", "no"]));
        let query = Query::new(vec![name.clone()], 0.9, domain, 0.0, questions.len() as f64);
        Self::new(AnalyticsJob::new(kind, query, name), questions)
    }

    /// Replace the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Set the batch size `B`.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Set the dispatch priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// One phase-1 dispatch, kept for the fleet timeline: which job published which HIT with
/// which leased workers at which tick. The integration tests use this to prove leases of
/// concurrently in-flight HITs are disjoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchRecord {
    /// The tick the batch was published in (1-based).
    pub tick: usize,
    /// The publishing job.
    pub job: JobId,
    /// The platform HIT id.
    pub hit: HitId,
    /// The leased workers the HIT was restricted to.
    pub workers: Vec<WorkerId>,
    /// Simulated time of the dispatch (0.0 in unclocked runs, where ticks are not time).
    pub at: f64,
}

/// A batch published in the current tick's dispatch phase, awaiting this tick's ingest
/// phase. Batches live exactly one tick: dispatch leases and publishes, ingest collects
/// and releases, so leases are held only while HITs genuinely coexist.
struct Inflight {
    job: usize,
    /// The batch's range within its job's question list (avoids storing the questions
    /// twice — the ticket owns the published copy, the job owns the original).
    range: std::ops::Range<usize>,
    ticket: BatchTicket,
    lease: LeaseId,
}

/// A batch in flight in a **clocked** run. Unlike [`Inflight`], it lives across ticks:
/// the lease is held for exactly as long as the HIT is genuinely running, and is released
/// the moment the batch completes — naturally or by mid-flight cancellation — so other
/// jobs can lease the freed workers while slower HITs are still out.
struct ClockedInflight {
    job: usize,
    range: std::ops::Range<usize>,
    collector: ClockedCollector,
    lease: LeaseId,
}

struct JobState {
    spec: ScheduledJob,
    engine: CrowdsourcingEngine,
    cursor: usize,
    runs: Vec<(std::ops::Range<usize>, HitOutcome)>,
    ticks_waited: usize,
    workers_seen: BTreeSet<WorkerId>,
    // Clocked-run rollups; stay at their defaults in unclocked runs.
    completed_at: f64,
    first_verdict_at: Option<f64>,
    reclaimed_minutes: f64,
    answers_cancelled: usize,
}

impl JobState {
    fn finished(&self) -> bool {
        self.cursor >= self.spec.questions.len()
    }
}

/// The multi-job scheduler: submit N jobs, then [`run`](Self::run) them to completion
/// against one platform and one shared worker roster.
///
/// ```
/// use cdas_crowd::lease::PoolLedger;
/// use cdas_core::types::WorkerId;
/// use cdas_engine::scheduler::{JobScheduler, SchedulerConfig};
///
/// let ledger = PoolLedger::new((0..8).map(WorkerId));
/// let scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
/// assert_eq!(scheduler.job_count(), 0);
/// assert!(scheduler.shared_registry().is_empty());
/// ```
pub struct JobScheduler {
    config: SchedulerConfig,
    ledger: PoolLedger,
    cache: AccuracyCache,
    jobs: Vec<JobState>,
    rng: StdRng,
}

impl JobScheduler {
    /// A scheduler over the given worker roster, with a fresh (empty) shared registry.
    pub fn new(config: SchedulerConfig, ledger: PoolLedger) -> Self {
        Self::with_shared_registry(config, ledger, SharedAccuracyRegistry::new())
    }

    /// A scheduler whose jobs share (and extend) an existing registry — e.g. estimates
    /// carried over from a previous fleet run against the same crowd.
    pub fn with_shared_registry(
        config: SchedulerConfig,
        ledger: PoolLedger,
        shared: SharedAccuracyRegistry,
    ) -> Self {
        JobScheduler {
            config,
            ledger,
            cache: AccuracyCache::new(shared),
            jobs: Vec::new(),
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// Submit a job; returns its [`JobId`].
    ///
    /// ```
    /// use cdas_crowd::lease::PoolLedger;
    /// use cdas_core::types::WorkerId;
    /// use cdas_engine::job_manager::JobKind;
    /// use cdas_engine::scheduler::{demo_questions, JobScheduler, ScheduledJob, SchedulerConfig};
    ///
    /// let ledger = PoolLedger::new((0..10).map(WorkerId));
    /// let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
    /// let a = scheduler.submit(ScheduledJob::named(
    ///     JobKind::SentimentAnalytics, "job-a", demo_questions(6, 2)));
    /// let b = scheduler.submit(ScheduledJob::named(
    ///     JobKind::ImageTagging, "job-b", demo_questions(6, 0)));
    /// assert_ne!(a, b);
    /// assert_eq!(scheduler.job_count(), 2);
    /// ```
    pub fn submit(&mut self, spec: ScheduledJob) -> JobId {
        let engine = CrowdsourcingEngine::new(spec.engine.clone());
        self.jobs.push(JobState {
            spec,
            engine,
            cursor: 0,
            runs: Vec::new(),
            ticks_waited: 0,
            workers_seen: BTreeSet::new(),
            completed_at: 0.0,
            first_verdict_at: None,
            reclaimed_minutes: 0.0,
            answers_cancelled: 0,
        });
        JobId(self.jobs.len() - 1)
    }

    /// Number of submitted jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The fleet-wide shared accuracy registry (alive across runs; pass it to
    /// [`with_shared_registry`](Self::with_shared_registry) to seed a later fleet).
    pub fn shared_registry(&self) -> &SharedAccuracyRegistry {
        self.cache.shared()
    }

    /// A completed job's `(batch questions, outcome)` runs, in ingestion order. Empty for
    /// an unknown id or a job that has not run yet.
    pub fn outcomes(&self, job: JobId) -> Vec<(&[CrowdQuestion], &HitOutcome)> {
        self.jobs
            .get(job.0)
            .map(|j| {
                j.runs
                    .iter()
                    .map(|(range, outcome)| (&j.spec.questions[range.clone()], outcome))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Dispatch order for one tick: round-robin rotation, optionally stable-sorted by
    /// descending priority so rotation still breaks ties fairly.
    fn dispatch_order(&self, tick: usize) -> Vec<usize> {
        let n = self.jobs.len();
        let mut order: Vec<usize> = (0..n).collect();
        if n > 1 {
            order.rotate_left((tick - 1) % n);
        }
        if self.config.policy == DispatchPolicy::Priority {
            order.sort_by_key(|&i| std::cmp::Reverse(self.jobs[i].spec.priority));
        }
        order
    }

    /// Run every submitted job to completion, interleaving phase-1 publishes and phase-2
    /// ingestion across jobs each tick.
    ///
    /// Errors with [`CdasError::PoolExhausted`] when a job's worker demand exceeds the
    /// roster outright, and [`CdasError::SchedulerStalled`] if a tick ever makes no
    /// progress (a configuration the ledger can never satisfy).
    ///
    /// ```
    /// use cdas_core::economics::CostModel;
    /// use cdas_crowd::lease::PoolLedger;
    /// use cdas_crowd::pool::{PoolConfig, WorkerPool};
    /// use cdas_crowd::SimulatedPlatform;
    /// use cdas_engine::job_manager::JobKind;
    /// use cdas_engine::scheduler::{demo_questions, JobScheduler, ScheduledJob, SchedulerConfig};
    ///
    /// let pool = WorkerPool::generate(&PoolConfig::clean(12, 0.8, 3));
    /// let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 3);
    /// let mut scheduler =
    ///     JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
    /// // Two 5-worker jobs over a 12-worker pool: both fit in flight at once.
    /// for name in ["alpha", "beta"] {
    ///     scheduler.submit(ScheduledJob::named(
    ///         JobKind::SentimentAnalytics, name, demo_questions(8, 2)));
    /// }
    /// let report = scheduler.run(&mut platform).unwrap();
    /// assert_eq!(report.jobs.len(), 2);
    /// assert_eq!(report.fleet.questions, 16, "8 real questions per job");
    /// assert!(report.registry_size > 0, "gold estimates were shared");
    /// ```
    pub fn run<P: CrowdPlatform>(&mut self, platform: &mut P) -> Result<FleetReport> {
        self.check_feasibility()?;
        let mut dispatches: Vec<DispatchRecord> = Vec::new();
        let mut ticks = 0usize;
        while self.jobs.iter().any(|j| !j.finished()) {
            ticks += 1;
            if ticks > self.config.max_ticks {
                return Err(CdasError::SchedulerStalled { ticks });
            }
            // Phase 1: dispatch — one batch per unfinished job, policy order, for as long
            // as the ledger can satisfy the lease. The leases of this tick's batches are
            // all held simultaneously, which is what keeps concurrent HITs disjoint.
            let mut inflight: Vec<Inflight> = Vec::new();
            for idx in self.dispatch_order(ticks) {
                if self.jobs[idx].finished() {
                    continue;
                }
                if let Some((range, ticket, lease)) =
                    self.try_dispatch(idx, ticks, 0.0, platform, &mut dispatches)?
                {
                    inflight.push(Inflight {
                        job: idx,
                        range,
                        ticket,
                        lease,
                    });
                }
            }

            if inflight.is_empty() {
                // Unfinished jobs exist (loop condition) but none could lease: with all
                // leases released at tick end this can only be a progress bug.
                return Err(CdasError::SchedulerStalled { ticks });
            }

            // Phase 2: ingest every in-flight batch, sharing estimates as we go. Leases
            // are released unconditionally — even when a collect fails — so an error can
            // never leak workers out of the roster.
            let mut failure: Option<CdasError> = None;
            for batch in inflight {
                if failure.is_none() {
                    let state = &mut self.jobs[batch.job];
                    match state
                        .engine
                        .collect_batch_cached(platform, batch.ticket, &self.cache)
                    {
                        Ok(outcome) => state.runs.push((batch.range, outcome)),
                        Err(e) => failure = Some(e),
                    }
                }
                self.ledger.release(batch.lease);
            }
            if let Some(e) = failure {
                return Err(e);
            }
        }

        Ok(self.report(ticks, dispatches, 0.0))
    }

    /// Run every submitted job to completion under **simulated time**: a discrete-event
    /// loop in which every tick advances a [`SimClock`] to the next answer arrival across
    /// all in-flight HITs, polls incrementally, and — when a job's batch terminates early —
    /// cancels the HIT *mid-flight* and releases its [`cdas_crowd::lease::WorkerLease`]
    /// back to the shared [`PoolLedger`], so a waiting job picks those workers up in the
    /// same run. This is what makes early termination (§4.2.2) save wall-clock time and
    /// money rather than merely replaying history; the returned
    /// [`crate::metrics::FleetReport`] carries `makespan`, per-job time-to-first-verdict
    /// and the reclaimed worker-minutes.
    ///
    /// Each job keeps at most one batch in flight, so leases are held exactly while their
    /// HIT is genuinely running.
    ///
    /// ```
    /// use cdas_core::economics::CostModel;
    /// use cdas_crowd::arrival::LatencyModel;
    /// use cdas_crowd::lease::PoolLedger;
    /// use cdas_crowd::pool::{PoolConfig, WorkerPool};
    /// use cdas_crowd::SimulatedPlatform;
    /// use cdas_engine::job_manager::JobKind;
    /// use cdas_engine::scheduler::{demo_questions, JobScheduler, ScheduledJob, SchedulerConfig};
    ///
    /// let pool = WorkerPool::generate(&PoolConfig {
    ///     latency: LatencyModel::Exponential { mean: 5.0 },
    ///     ..PoolConfig::clean(12, 0.8, 3)
    /// });
    /// let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 3);
    /// let mut scheduler =
    ///     JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
    /// scheduler.submit(ScheduledJob::named(
    ///     JobKind::SentimentAnalytics, "clocked", demo_questions(8, 2)));
    /// let report = scheduler.run_clocked(&mut platform).unwrap();
    /// assert!(report.makespan > 0.0, "simulated time passed");
    /// assert_eq!(report.fleet.questions, 8);
    /// ```
    pub fn run_clocked<P: CrowdPlatform>(&mut self, platform: &mut P) -> Result<FleetReport> {
        self.check_feasibility()?;
        let mut clock = SimClock::new();
        let mut dispatches: Vec<DispatchRecord> = Vec::new();
        let mut inflight: Vec<ClockedInflight> = Vec::new();
        let result = self.clocked_loop(platform, &mut clock, &mut dispatches, &mut inflight);
        // Leases must never leak, even when a collect fails mid-run.
        for batch in inflight.drain(..) {
            self.ledger.release(batch.lease);
        }
        let ticks = result?;
        Ok(self.report(ticks, dispatches, clock.now()))
    }

    /// The discrete-event loop of [`run_clocked`](Self::run_clocked). On error, in-flight
    /// batches stay in `inflight` for the caller to release.
    fn clocked_loop<P: CrowdPlatform>(
        &mut self,
        platform: &mut P,
        clock: &mut SimClock,
        dispatches: &mut Vec<DispatchRecord>,
        inflight: &mut Vec<ClockedInflight>,
    ) -> Result<usize> {
        // Clocked ticks are arrival *events*, not dispatch rounds: a fleet ingests one
        // worker submission per tick at minimum, so the stall valve must scale with the
        // fleet's expected submission count or a large-but-progressing run would be
        // aborted mid-flight. `max_ticks` stays the floor for tiny fleets.
        let expected_events: usize = self
            .jobs
            .iter()
            .map(|s| {
                let batches = s.spec.questions.len().div_ceil(s.spec.batch_size).max(1);
                batches * s.engine.decide_workers().unwrap_or(1)
            })
            .sum();
        let max_ticks = self.config.max_ticks.max(expected_events.saturating_mul(2));

        let mut ticks = 0usize;
        while self.jobs.iter().any(|j| !j.finished()) || !inflight.is_empty() {
            ticks += 1;
            if ticks > max_ticks {
                return Err(CdasError::SchedulerStalled { ticks });
            }

            // Phase 1: dispatch at the current simulated time. A job keeps one batch in
            // flight; everyone else competes for the workers that are free *now* — which
            // includes workers a mid-flight cancellation released earlier this run.
            platform.advance_time(clock.now());
            let busy: BTreeSet<usize> = inflight.iter().map(|b| b.job).collect();
            for idx in self.dispatch_order(ticks) {
                if self.jobs[idx].finished() || busy.contains(&idx) {
                    continue;
                }
                if let Some((range, ticket, lease)) =
                    self.try_dispatch(idx, ticks, clock.now(), platform, dispatches)?
                {
                    let collector = self.jobs[idx].engine.begin_clocked(ticket, clock.now());
                    inflight.push(ClockedInflight {
                        job: idx,
                        range,
                        collector,
                        lease,
                    });
                }
            }

            if inflight.is_empty() {
                // Unfinished jobs but nothing in flight and nothing leasable: with every
                // lease already released this can only be a progress bug.
                return Err(CdasError::SchedulerStalled { ticks });
            }

            // Phase 2: advance the clock to the next arrival across all in-flight HITs
            // and ingest it. Completed batches are finalized immediately and their leases
            // released, so the next tick's dispatch phase sees the freed workers.
            let next = inflight
                .iter()
                .filter_map(|b| platform.next_arrival(b.collector.hit()))
                .filter(|t| t.is_finite())
                .fold(f64::INFINITY, f64::min);
            let poll_at = if next.is_finite() {
                clock.advance_to(next)
            } else {
                // No future arrivals anywhere: drain whatever is left end-of-time.
                f64::INFINITY
            };

            let mut i = 0;
            while i < inflight.len() {
                let hit = inflight[i].collector.hit();
                let cost_before = platform.total_cost();
                let answers = platform.poll(hit, poll_at);
                inflight[i]
                    .collector
                    .record_charge(platform.total_cost() - cost_before);
                if poll_at.is_infinite() {
                    // End-of-time drain (a platform without arrival look-ahead): the
                    // answers carry their own arrival times, so move the clock to the
                    // latest one before stamping verdicts and completions with it.
                    if let Some(last) = answers.last() {
                        clock.advance_to(last.arrived_at);
                    }
                }
                let terminated =
                    inflight[i]
                        .collector
                        .ingest(&answers, clock.now(), Some(&self.cache))?;
                let exhausted = platform.next_arrival(hit).is_none();
                if !(terminated || exhausted) {
                    i += 1;
                    continue;
                }
                let batch = inflight.remove(i);
                let receipt = terminated.then(|| platform.cancel(hit, clock.now()));
                let result = batch
                    .collector
                    .finalize(clock.now(), receipt, Some(&self.cache));
                self.ledger.release(batch.lease);
                let clocked = result?;
                let state = &mut self.jobs[batch.job];
                state.completed_at = state.completed_at.max(clocked.completed_at);
                state.first_verdict_at = match (state.first_verdict_at, clocked.first_verdict_at) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                state.reclaimed_minutes += clocked.reclaimed_minutes;
                state.answers_cancelled += clocked.answers_cancelled;
                state.runs.push((batch.range, clocked.outcome));
            }
        }
        Ok(ticks)
    }

    /// Phase-1 dispatch for one job, shared by the unclocked and clocked loops: lease the
    /// job's workers, slice its next batch, publish to the leased workers, and record the
    /// dispatch at tick `tick` / simulated time `at`. Returns `None` — after recording
    /// the wait — when the ledger cannot satisfy the lease right now.
    fn try_dispatch<P: CrowdPlatform>(
        &mut self,
        idx: usize,
        tick: usize,
        at: f64,
        platform: &mut P,
        dispatches: &mut Vec<DispatchRecord>,
    ) -> Result<Option<(std::ops::Range<usize>, BatchTicket, LeaseId)>> {
        let state = &mut self.jobs[idx];
        let needed = state.engine.decide_workers()?;
        match self.ledger.try_lease(needed, &mut self.rng) {
            None => {
                state.ticks_waited += 1;
                Ok(None)
            }
            Some(lease) => {
                let end = (state.cursor + state.spec.batch_size).min(state.spec.questions.len());
                let batch = state.spec.questions[state.cursor..end].to_vec();
                let ticket = state
                    .engine
                    .publish_batch_to(platform, batch, lease.workers())?;
                dispatches.push(DispatchRecord {
                    tick,
                    job: JobId(idx),
                    hit: ticket.hit,
                    workers: lease.workers().to_vec(),
                    at,
                });
                state.workers_seen.extend(lease.workers().iter().copied());
                let range = state.cursor..end;
                state.cursor = end;
                Ok(Some((range, ticket, lease.id)))
            }
        }
    }

    /// Up-front feasibility: a demand larger than the whole roster would wait forever.
    fn check_feasibility(&self) -> Result<()> {
        for state in &self.jobs {
            let needed = state.engine.decide_workers()?;
            if needed > self.ledger.roster_len() {
                return Err(CdasError::PoolExhausted {
                    needed,
                    available: self.ledger.roster_len(),
                });
            }
        }
        Ok(())
    }

    /// Assemble the fleet report from completed job states.
    fn report(&self, ticks: usize, dispatches: Vec<DispatchRecord>, makespan: f64) -> FleetReport {
        let jobs: Vec<JobReport> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(idx, state)| JobReport {
                job: JobId(idx),
                name: state.spec.job.name.clone(),
                kind: state.spec.job.kind,
                priority: state.spec.priority,
                report: score_hits(
                    state
                        .runs
                        .iter()
                        .map(|(r, o)| (&state.spec.questions[r.clone()], o)),
                ),
                hits: state.runs.len(),
                ticks_waited: state.ticks_waited,
                distinct_workers: state.workers_seen.len(),
                time_to_first_verdict: state.first_verdict_at,
                completed_at: state.completed_at,
                reclaimed_minutes: state.reclaimed_minutes,
                answers_cancelled: state.answers_cancelled,
            })
            .collect();
        let fleet = score_hits(self.jobs.iter().flat_map(|s| {
            s.runs
                .iter()
                .map(|(r, o)| (&s.spec.questions[r.clone()], o))
        }));
        FleetReport {
            jobs,
            fleet,
            ticks,
            makespan,
            reclaimed_minutes: self.jobs.iter().map(|s| s.reclaimed_minutes).sum(),
            answers_cancelled: self.jobs.iter().map(|s| s.answers_cancelled).sum(),
            dispatches,
            registry_size: self.cache.shared().len(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
        }
    }
}

/// Tiny deterministic sentiment batch used by doc-tests and examples: `real + gold`
/// three-way questions whose ground truth is always `"Positive"`, the first `gold` of
/// which are gold questions.
pub fn demo_questions(real: u64, gold: u64) -> Vec<CrowdQuestion> {
    (0..gold + real)
        .map(|i| {
            let q = CrowdQuestion::new(
                QuestionId(i),
                AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
                Label::from("Positive"),
            );
            if i < gold {
                q.as_gold()
            } else {
                q
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkerCountPolicy;
    use cdas_core::economics::CostModel;
    use cdas_crowd::pool::{PoolConfig, WorkerPool};
    use cdas_crowd::SimulatedPlatform;

    fn fixed_engine(n: usize) -> EngineConfig {
        EngineConfig {
            workers: WorkerCountPolicy::Fixed(n),
            domain_size: Some(3),
            ..EngineConfig::default()
        }
    }

    fn setup(pool_size: usize, seed: u64) -> (SimulatedPlatform, PoolLedger) {
        let pool = WorkerPool::generate(&PoolConfig::clean(pool_size, 0.8, seed));
        let ledger = PoolLedger::from_pool(&pool);
        (
            SimulatedPlatform::new(pool, CostModel::default(), seed),
            ledger,
        )
    }

    fn staggered_setup(
        pool_size: usize,
        accuracy: f64,
        seed: u64,
    ) -> (SimulatedPlatform, PoolLedger) {
        let pool = WorkerPool::generate(&cdas_crowd::pool::PoolConfig {
            latency: cdas_crowd::arrival::LatencyModel::Exponential { mean: 5.0 },
            ..cdas_crowd::pool::PoolConfig::clean(pool_size, accuracy, seed)
        });
        let ledger = PoolLedger::from_pool(&pool);
        (
            SimulatedPlatform::new(pool, CostModel::default(), seed),
            ledger,
        )
    }

    #[test]
    fn clocked_run_advances_simulated_time_and_keeps_quality() {
        let (mut platform, ledger) = staggered_setup(20, 0.8, 9);
        let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
        for name in ["a", "b"] {
            scheduler.submit(
                ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(10, 3))
                    .with_engine(fixed_engine(7))
                    .with_batch_size(5),
            );
        }
        let report = scheduler.run_clocked(&mut platform).unwrap();
        assert_eq!(report.fleet.questions, 20);
        assert!(report.fleet.accuracy > 0.7);
        assert!(report.makespan > 0.0, "simulated time passed");
        assert!(report.questions_per_minute() > 0.0);
        for job in &report.jobs {
            assert!(job.completed_at > 0.0);
            assert!(job.completed_at <= report.makespan + 1e-9);
            let first = job.time_to_first_verdict.expect("verdicts were produced");
            assert!(first <= job.completed_at);
        }
        // Dispatches carry their simulated time, monotonically within each job.
        for d in &report.dispatches {
            assert!(d.at >= 0.0);
        }
        let max_at = report.dispatches.iter().map(|d| d.at).fold(0.0, f64::max);
        assert!(max_at > 0.0, "later batches dispatch later than time zero");
    }

    #[test]
    fn clocked_termination_shortens_makespan_and_reclaims_minutes() {
        // A 9-worker pool and two 7-worker jobs: only one HIT fits in flight, so job B
        // can only start when job A's batch releases its lease. With early termination
        // that happens mid-flight — strictly earlier than the batch's natural makespan.
        let run = |termination: Option<TerminationStrategy>| {
            let (mut platform, ledger) = staggered_setup(9, 0.9, 33);
            let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
            for name in ["a", "b"] {
                scheduler.submit(
                    ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(6, 3))
                        .with_engine(EngineConfig {
                            termination,
                            ..fixed_engine(7)
                        })
                        .with_batch_size(9),
                );
            }
            let report = scheduler.run_clocked(&mut platform).unwrap();
            let platform_cost = platform.total_cost();
            (report, platform_cost)
        };
        use cdas_core::online::TerminationStrategy;
        let (baseline, baseline_cost) = run(None);
        let (early, early_cost) = run(Some(TerminationStrategy::ExpMax));
        assert_eq!(baseline.reclaimed_minutes, 0.0);
        assert!(early.reclaimed_minutes > 0.0, "leases came back mid-flight");
        assert!(early.answers_cancelled > 0);
        assert!(
            early.makespan < baseline.makespan,
            "termination makespan {} must beat the end-of-time {}",
            early.makespan,
            baseline.makespan
        );
        assert!(early.fleet.cost < baseline.fleet.cost, "real savings");
        // Engine-side accounting agrees with the platform ledger in both modes.
        assert!((early.fleet.cost - early_cost).abs() < 1e-9);
        assert!((baseline.fleet.cost - baseline_cost).abs() < 1e-9);
    }

    #[test]
    fn clocked_runs_are_deterministic_for_a_seed() {
        let run = || {
            let (mut platform, ledger) = staggered_setup(25, 0.8, 11);
            let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
            for name in ["x", "y"] {
                scheduler.submit(
                    ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(8, 2))
                        .with_engine(fixed_engine(7))
                        .with_batch_size(5),
                );
            }
            scheduler.run_clocked(&mut platform).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.dispatches, b.dispatches);
        assert_eq!(a.fleet, b.fleet);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn three_jobs_complete_over_one_pool() {
        let (mut platform, ledger) = setup(20, 9);
        let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
        for name in ["a", "b", "c"] {
            scheduler.submit(
                ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(12, 3))
                    .with_engine(fixed_engine(7))
                    .with_batch_size(5),
            );
        }
        let report = scheduler.run(&mut platform).unwrap();
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.fleet.questions, 36, "3 jobs × 12 real questions");
        for job in &report.jobs {
            assert!(job.hits >= 3, "{} ran in batches", job.name);
            assert!(job.report.accuracy > 0.8, "{} accuracy", job.name);
            assert!(job.distinct_workers >= 7);
        }
        // A 20-worker pool fits only two 7-worker HITs at once: contention happened.
        assert!(
            report.jobs.iter().any(|j| j.ticks_waited > 0),
            "expected at least one job to wait for the pool"
        );
        assert!(report.ticks > 1);
        assert!(report.registry_size > 0);
    }

    #[test]
    fn concurrent_leases_never_share_a_worker() {
        let (mut platform, ledger) = setup(30, 5);
        let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
        for name in ["a", "b", "c"] {
            scheduler.submit(
                ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(10, 2))
                    .with_engine(fixed_engine(9))
                    .with_batch_size(4),
            );
        }
        let report = scheduler.run(&mut platform).unwrap();
        // Group dispatches by tick; concurrently in-flight worker sets must be disjoint.
        for a in &report.dispatches {
            for b in &report.dispatches {
                if a.tick == b.tick && (a.job, a.hit) != (b.job, b.hit) {
                    assert!(
                        a.workers.iter().all(|w| !b.workers.contains(w)),
                        "tick {}: jobs {:?} and {:?} share a worker",
                        a.tick,
                        a.job,
                        b.job
                    );
                }
            }
            // And within one HIT every worker appears once.
            let mut ids: Vec<u64> = a.workers.iter().map(|w| w.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), a.workers.len());
        }
    }

    #[test]
    fn priority_jobs_drain_first_when_the_pool_fits_one_hit() {
        let (mut platform, ledger) = setup(10, 3);
        let mut scheduler = JobScheduler::new(
            SchedulerConfig {
                policy: DispatchPolicy::Priority,
                ..SchedulerConfig::default()
            },
            ledger,
        );
        let low = scheduler.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, "low", demo_questions(9, 3))
                .with_engine(fixed_engine(7))
                .with_batch_size(4)
                .with_priority(1),
        );
        let high = scheduler.submit(
            ScheduledJob::named(JobKind::ImageTagging, "high", demo_questions(9, 3))
                .with_engine(fixed_engine(7))
                .with_batch_size(4)
                .with_priority(9),
        );
        let report = scheduler.run(&mut platform).unwrap();
        let last_high = report
            .dispatches
            .iter()
            .filter(|d| d.job == high)
            .map(|d| d.tick)
            .max()
            .unwrap();
        let first_low = report
            .dispatches
            .iter()
            .filter(|d| d.job == low)
            .map(|d| d.tick)
            .min()
            .unwrap();
        assert!(
            last_high < first_low,
            "high-priority job must fully drain first (high last tick {last_high}, low first tick {first_low})"
        );
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let run = || {
            let (mut platform, ledger) = setup(25, 11);
            let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
            for name in ["x", "y"] {
                scheduler.submit(
                    ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(8, 2))
                        .with_engine(fixed_engine(7))
                        .with_batch_size(5),
                );
            }
            scheduler.run(&mut platform).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.dispatches, b.dispatches);
        assert_eq!(a.fleet, b.fleet);
        assert_eq!(a.ticks, b.ticks);
    }

    #[test]
    fn oversized_job_is_rejected_up_front() {
        let (mut platform, ledger) = setup(5, 1);
        let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
        scheduler.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, "huge", demo_questions(4, 1))
                .with_engine(fixed_engine(9)),
        );
        match scheduler.run(&mut platform) {
            Err(CdasError::PoolExhausted { needed, available }) => {
                assert_eq!(needed, 9);
                assert_eq!(available, 5);
            }
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
    }

    #[test]
    fn empty_scheduler_reports_an_empty_fleet() {
        let (mut platform, ledger) = setup(5, 1);
        let mut scheduler = JobScheduler::new(SchedulerConfig::default(), ledger);
        let report = scheduler.run(&mut platform).unwrap();
        assert!(report.jobs.is_empty());
        assert_eq!(report.ticks, 0);
        assert_eq!(report.fleet.questions, 0);
    }

    #[test]
    fn shared_registry_survives_for_a_second_fleet() {
        let (mut platform, ledger) = setup(15, 21);
        let mut first = JobScheduler::new(SchedulerConfig::default(), ledger.clone());
        first.submit(
            ScheduledJob::named(JobKind::SentimentAnalytics, "wave-1", demo_questions(6, 4))
                .with_engine(fixed_engine(7)),
        );
        first.run(&mut platform).unwrap();
        let carried = first.shared_registry().clone();
        assert!(!carried.is_empty());

        let mut second =
            JobScheduler::with_shared_registry(SchedulerConfig::default(), ledger, carried.clone());
        // Wave 2 has no gold questions at all: every estimate it verifies with was
        // learned by wave 1.
        let id = second.submit(
            ScheduledJob::named(JobKind::ImageTagging, "wave-2", demo_questions(6, 0))
                .with_engine(fixed_engine(7)),
        );
        let report = second.run(&mut platform).unwrap();
        assert!(report.fleet.accuracy > 0.5);
        let outcome = second.outcomes(id)[0].1;
        assert!(!outcome.registry.is_empty());
        assert!(outcome.registry.iter().all(|(_, e)| e.samples > 0));
    }
}
