//! The two applications the paper deploys on CDAS to validate the answering model:
//! Twitter Sentiment Analytics ([`tsa`]) and Image Tagging ([`it`]).

pub mod it;
pub mod tsa;

pub use it::{ImageTaggingApp, ItConfig, ItRunReport};
pub use tsa::{TsaApp, TsaConfig, TsaRunReport};
