//! The Image Tagging application (§5.2), end to end: turn synthetic image descriptors into
//! crowd questions (candidate tags with injected noise), run the engine, and compare
//! against the automatic tagger baseline.

use cdas_baselines::image::AutoTagger;
use cdas_core::sampling::SamplingPlan;
use cdas_core::Result;
use cdas_crowd::platform::CrowdPlatform;
use cdas_crowd::question::CrowdQuestion;
use cdas_workloads::it::images::SyntheticImage;
use serde::{Deserialize, Serialize};

use crate::engine::{CrowdsourcingEngine, EngineConfig, HitOutcome};
use crate::metrics::{score_hits, AccuracyReport};

/// Configuration of an IT run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItConfig {
    /// Engine configuration.
    pub engine: EngineConfig,
    /// Images per HIT.
    pub batch_size: usize,
    /// Gold-question sampling rate.
    pub sampling_rate: f64,
}

impl Default for ItConfig {
    fn default() -> Self {
        ItConfig {
            engine: EngineConfig::default(),
            batch_size: 10,
            sampling_rate: 0.2,
        }
    }
}

/// Report of one IT run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItRunReport {
    /// Accuracy metrics of the crowdsourced tags against ground truth.
    pub crowd: AccuracyReport,
    /// Accuracy of the automatic tagger on the same images (when supplied).
    pub machine_accuracy: Option<f64>,
    /// Number of HITs published.
    pub hits: usize,
}

/// The image-tagging application.
#[derive(Debug, Clone)]
pub struct ImageTaggingApp {
    config: ItConfig,
}

impl ImageTaggingApp {
    /// Create the application.
    pub fn new(config: ItConfig) -> Self {
        ImageTaggingApp { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ItConfig {
        &self.config
    }

    /// Convert images into crowd questions with per-image candidate-tag domains.
    pub fn build_questions(&self, images: &[&SyntheticImage]) -> Vec<CrowdQuestion> {
        let plan = SamplingPlan::new(
            images.len().max(1),
            self.config.sampling_rate.clamp(0.01, 1.0),
        )
        .unwrap_or_else(|_| SamplingPlan::paper_default());
        images
            .iter()
            .enumerate()
            .map(|(i, img)| {
                let q = CrowdQuestion::new(img.id, img.domain(), img.truth_label())
                    .with_difficulty(img.difficulty)
                    .with_reasons(vec![img.subject.clone()]);
                if plan.is_gold(i) {
                    q.as_gold()
                } else {
                    q
                }
            })
            .collect()
    }

    /// Run the full pipeline over the given images.
    pub fn run<P: CrowdPlatform>(
        &self,
        platform: &mut P,
        images: &[&SyntheticImage],
        baseline: Option<&AutoTagger>,
    ) -> Result<ItRunReport> {
        let engine = CrowdsourcingEngine::new(self.config.engine.clone());
        let mut runs: Vec<(Vec<CrowdQuestion>, HitOutcome)> = Vec::new();
        for chunk in images.chunks(self.config.batch_size.max(1)) {
            let questions = self.build_questions(chunk);
            let outcome = engine.run_hit(platform, questions.clone())?;
            runs.push((questions, outcome));
        }
        let crowd = score_hits(runs.iter().map(|(q, o)| (q.as_slice(), o)));
        let machine_accuracy = baseline.map(|tagger| {
            let mut total = 0usize;
            let mut correct = 0usize;
            for img in images {
                total += 1;
                if tagger.annotate(img) == img.truth_label() {
                    correct += 1;
                }
            }
            if total == 0 {
                0.0
            } else {
                correct as f64 / total as f64
            }
        });
        Ok(ItRunReport {
            crowd,
            machine_accuracy,
            hits: runs.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_core::economics::CostModel;
    use cdas_crowd::pool::{PoolConfig, WorkerPool};
    use cdas_crowd::SimulatedPlatform;
    use cdas_workloads::it::images::{ImageGenerator, ImageGeneratorConfig};
    use cdas_workloads::it::FIGURE17_SUBJECTS;

    fn images(seed: u64, per_subject: usize) -> Vec<SyntheticImage> {
        let mut g = ImageGenerator::new(ImageGeneratorConfig {
            seed,
            ..ImageGeneratorConfig::default()
        });
        let mut all = Vec::new();
        for s in FIGURE17_SUBJECTS {
            all.extend(g.generate(s, per_subject));
        }
        all
    }

    fn platform(accuracy: f64, seed: u64) -> SimulatedPlatform {
        let pool = WorkerPool::generate(&PoolConfig::clean(60, accuracy, seed));
        SimulatedPlatform::new(pool, CostModel::default(), seed)
    }

    #[test]
    fn questions_use_per_image_domains() {
        let app = ImageTaggingApp::new(ItConfig::default());
        let imgs = images(1, 4);
        let refs: Vec<&SyntheticImage> = imgs.iter().collect();
        let questions = app.build_questions(&refs);
        assert_eq!(questions.len(), 20);
        for (q, img) in questions.iter().zip(imgs.iter()) {
            assert_eq!(q.domain.size(), img.candidates.len());
            assert!(q.domain.contains(&img.truth_label()));
        }
        assert!(questions.iter().any(|q| q.is_gold));
    }

    #[test]
    fn crowd_beats_the_automatic_tagger() {
        // The Figure 17 comparison: even a single decent worker beats ALIPR; here 5 workers
        // with 0.85 accuracy against the noisy-feature tagger.
        let mut tagger = AutoTagger::new();
        let train = images(2, 10);
        tagger.train(&train);
        let app = ImageTaggingApp::new(ItConfig {
            engine: EngineConfig {
                workers: crate::engine::WorkerCountPolicy::Fixed(5),
                ..EngineConfig::default()
            },
            batch_size: 10,
            sampling_rate: 0.2,
        });
        let test = images(3, 8);
        let refs: Vec<&SyntheticImage> = test.iter().collect();
        let mut p = platform(0.85, 7);
        let report = app.run(&mut p, &refs, Some(&tagger)).unwrap();
        let machine = report.machine_accuracy.unwrap();
        assert!(machine < 0.5, "auto tagger unexpectedly strong: {machine}");
        assert!(
            report.crowd.accuracy > machine + 0.3,
            "crowd {} vs machine {machine}",
            report.crowd.accuracy
        );
        assert_eq!(report.hits, 4);
    }
}
