//! The Twitter Sentiment Analytics application (§2.2, §5.1), end to end:
//! generate/ingest tweets, filter by query, batch into HITs with gold questions, run the
//! crowdsourcing engine, and score the results against ground truth and the machine
//! baseline.

use cdas_baselines::text::NaiveBayesClassifier;
use cdas_core::presentation::{AnswerSummary, QuestionOutcome, ResultPresenter};
use cdas_core::sampling::SamplingPlan;
use cdas_core::types::Label;
use cdas_core::Result;
use cdas_crowd::platform::CrowdPlatform;
use cdas_crowd::question::CrowdQuestion;
use cdas_workloads::tsa::tweets::Tweet;
use cdas_workloads::tsa::{sentiment_domain, Sentiment};
use serde::{Deserialize, Serialize};

use crate::engine::{CrowdsourcingEngine, EngineConfig, HitOutcome};
use crate::metrics::{score_hits, AccuracyReport};

/// Configuration of a TSA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsaConfig {
    /// Engine configuration (verification strategy, worker policy, termination, ...).
    pub engine: EngineConfig,
    /// Questions per HIT (`B`).
    pub batch_size: usize,
    /// Gold-question sampling rate (`α`).
    pub sampling_rate: f64,
}

impl Default for TsaConfig {
    fn default() -> Self {
        TsaConfig {
            engine: EngineConfig {
                domain_size: Some(3),
                ..EngineConfig::default()
            },
            batch_size: 20,
            sampling_rate: 0.2,
        }
    }
}

/// The report of one TSA run over a set of tweets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsaRunReport {
    /// Accuracy metrics of the crowdsourced answers against ground truth.
    pub crowd: AccuracyReport,
    /// Accuracy of the machine baseline on the same tweets (when one was supplied).
    pub machine_accuracy: Option<f64>,
    /// The Figure-4-style summary: percentage and reasons per sentiment.
    pub summary: Vec<AnswerSummary>,
    /// Number of HITs published.
    pub hits: usize,
}

/// The TSA application.
#[derive(Debug, Clone)]
pub struct TsaApp {
    config: TsaConfig,
}

impl TsaApp {
    /// Create the application.
    pub fn new(config: TsaConfig) -> Self {
        TsaApp { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TsaConfig {
        &self.config
    }

    /// Convert tweets into crowd questions; gold questions are taken from the tweet list
    /// itself (their ground truth is assumed known to the requester, as the paper does by
    /// pre-labelling a small sample).
    pub fn build_questions(&self, tweets: &[&Tweet]) -> Vec<CrowdQuestion> {
        let plan = SamplingPlan::new(
            tweets.len().max(1),
            self.config.sampling_rate.clamp(0.01, 1.0),
        )
        .unwrap_or_else(|_| SamplingPlan::paper_default());
        tweets
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let q = CrowdQuestion::new(t.id, sentiment_domain(), t.truth_label())
                    .with_difficulty(t.difficulty)
                    .with_reasons(t.reason_keywords.iter().cloned());
                if plan.is_gold(i) {
                    q.as_gold()
                } else {
                    q
                }
            })
            .collect()
    }

    /// Run the full pipeline over the given tweets: batch, publish, verify, score.
    ///
    /// `baseline` optionally scores the machine classifier on the same (non-gold) tweets.
    pub fn run<P: CrowdPlatform>(
        &self,
        platform: &mut P,
        tweets: &[&Tweet],
        baseline: Option<&NaiveBayesClassifier>,
    ) -> Result<TsaRunReport> {
        let engine = CrowdsourcingEngine::new(self.config.engine.clone());
        let mut runs: Vec<(Vec<CrowdQuestion>, HitOutcome)> = Vec::new();
        for chunk in tweets.chunks(self.config.batch_size.max(1)) {
            let questions = self.build_questions(chunk);
            let outcome = engine.run_hit(platform, questions.clone())?;
            runs.push((questions, outcome));
        }
        let crowd = score_hits(runs.iter().map(|(q, o)| (q.as_slice(), o)));

        // Machine baseline accuracy over the same real questions.
        let machine_accuracy = baseline.map(|nb| {
            let mut total = 0usize;
            let mut correct = 0usize;
            for t in tweets {
                total += 1;
                if nb.classify(&t.text) == t.sentiment {
                    correct += 1;
                }
            }
            if total == 0 {
                0.0
            } else {
                correct as f64 / total as f64
            }
        });

        // Presentation: percentages and reasons per sentiment (Figure 4).
        let mut presenter = ResultPresenter::new();
        for (_, outcome) in &runs {
            for verdict in outcome.real_verdicts() {
                match verdict.verdict.label() {
                    Some(label) => {
                        presenter.push_outcome(QuestionOutcome::Accepted {
                            label: label.clone(),
                        });
                        presenter.push_keywords(label, verdict.reasons.iter().map(|s| s.as_str()));
                    }
                    None => presenter.push_outcome(QuestionOutcome::Pending {
                        confidences: Vec::new(),
                    }),
                }
            }
        }
        let domain: Vec<Label> = Sentiment::ALL.iter().map(|s| s.label()).collect();
        let summary = presenter.summarize(&domain);

        Ok(TsaRunReport {
            crowd,
            machine_accuracy,
            summary,
            hits: runs.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_core::economics::CostModel;
    use cdas_crowd::pool::{PoolConfig, WorkerPool};
    use cdas_crowd::SimulatedPlatform;
    use cdas_workloads::tsa::tweets::{TweetGenerator, TweetGeneratorConfig};

    fn tweets(seed: u64, count: usize) -> Vec<Tweet> {
        let mut g = TweetGenerator::new(TweetGeneratorConfig {
            seed,
            ..TweetGeneratorConfig::default()
        });
        g.generate("Thor", count)
    }

    fn platform(accuracy: f64, seed: u64) -> SimulatedPlatform {
        let pool = WorkerPool::generate(&PoolConfig::clean(80, accuracy, seed));
        SimulatedPlatform::new(pool, CostModel::default(), seed)
    }

    #[test]
    fn questions_carry_truth_difficulty_and_gold_flags() {
        let app = TsaApp::new(TsaConfig::default());
        let ts = tweets(1, 40);
        let refs: Vec<&Tweet> = ts.iter().collect();
        let questions = app.build_questions(&refs);
        assert_eq!(questions.len(), 40);
        let gold = questions.iter().filter(|q| q.is_gold).count();
        assert_eq!(gold, 8, "20% of 40");
        for (q, t) in questions.iter().zip(ts.iter()) {
            assert_eq!(q.ground_truth, t.truth_label());
            assert_eq!(q.id, t.id);
            assert_eq!(q.domain.size(), 3);
        }
    }

    #[test]
    fn end_to_end_run_beats_the_required_band() {
        let app = TsaApp::new(TsaConfig {
            engine: EngineConfig {
                workers: crate::engine::WorkerCountPolicy::Fixed(9),
                domain_size: Some(3),
                ..EngineConfig::default()
            },
            batch_size: 25,
            sampling_rate: 0.2,
        });
        let ts = tweets(2, 50);
        let refs: Vec<&Tweet> = ts.iter().collect();
        let mut p = platform(0.8, 5);
        let report = app.run(&mut p, &refs, None).unwrap();
        assert_eq!(report.hits, 2);
        assert!(report.crowd.questions >= 40);
        assert!(
            report.crowd.accuracy > 0.85,
            "crowd accuracy {}",
            report.crowd.accuracy
        );
        assert!(report.machine_accuracy.is_none());
        // Summary covers the three sentiments and sums to ≤ 1.
        assert_eq!(report.summary.len(), 3);
        let total: f64 = report.summary.iter().map(|s| s.percentage).sum();
        assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn machine_baseline_is_scored_on_the_same_tweets() {
        let train = tweets(3, 300);
        let mut nb = NaiveBayesClassifier::new();
        nb.train(&train);
        let app = TsaApp::new(TsaConfig {
            engine: EngineConfig {
                workers: crate::engine::WorkerCountPolicy::Fixed(5),
                domain_size: Some(3),
                ..EngineConfig::default()
            },
            batch_size: 30,
            sampling_rate: 0.2,
        });
        let test = tweets(4, 60);
        let refs: Vec<&Tweet> = test.iter().collect();
        let mut p = platform(0.85, 6);
        let report = app.run(&mut p, &refs, Some(&nb)).unwrap();
        let machine = report.machine_accuracy.unwrap();
        assert!(machine > 0.3 && machine <= 1.0);
        // The headline claim of Figure 5: the crowd beats the machine baseline.
        assert!(
            report.crowd.accuracy >= machine - 0.05,
            "crowd {} vs machine {machine}",
            report.crowd.accuracy
        );
    }
}
