//! The front door of CDAS: a [`Fleet`] facade over the crowd, the engine and the
//! scheduler.
//!
//! CDAS is pitched as a *system* users hand a job to, yet the layers beneath this module
//! — [`WorkerPool`](cdas_crowd::pool::WorkerPool) →
//! [`SimulatedPlatform`](cdas_crowd::SimulatedPlatform) /
//! [`ShardedPlatform`] →
//! [`PoolLedger`](cdas_crowd::lease::PoolLedger) → [`JobScheduler`] →
//! [`ScheduledJob`] — ask every caller to hand-wire five structs and pick one of three
//! divergent entry points (`run` / `run_clocked` / `run_parallel`). The facade collapses
//! that into three moves:
//!
//! 1. **describe the crowd once** with a [`CrowdSpec`] and build the fleet with the
//!    typestate [`FleetBuilder`] (a fleet without a crowd does not compile, and
//!    misconfigurations — empty crowd, zero workers, more shards than workers — are typed
//!    [`CdasError`]s, not panics),
//! 2. **submit [`JobSpec`]s** whose settings layer over the fleet's defaults
//!    (fleet [`engine defaults`](FleetBuilder::engine_defaults) → per-job overrides), and
//! 3. **call [`Fleet::run`] with one [`ExecutionMode`]** — `EndOfTime`, `Clocked` or
//!    `Parallel { shards }` — which dispatches to the existing scheduler paths. Those
//!    paths remain public as the advanced layer; the facade adds no second engine room.
//!
//! [`Fleet::run`] returns a [`FleetRun`]: the familiar [`FleetReport`] plus a **streaming
//! side** — an ordered list of [`FleetEvent`]s (job started, HIT dispatched, first
//! verdict, question terminated, lease reclaimed, job completed) fed from the
//! [`DispatchRecord`](crate::scheduler::DispatchRecord) timeline and per-batch outcome data the scheduler already produces,
//! so monitoring no longer requires post-hoc report spelunking.
//!
//! A fleet is **re-runnable**: every `run` derives a fresh platform, ledger and registry
//! from the spec, so the same fleet can be executed under several modes over bit-identical
//! crowds and the reports compared (the integration tests pin `run(Clocked)` equal to a
//! hand-wired [`JobScheduler::run_clocked`] via
//! [`FleetReport::ignoring_wall_clock`]).
//!
//! ```
//! use cdas_crowd::spec::CrowdSpec;
//! use cdas_engine::fixtures::demo_questions;
//! use cdas_engine::fleet::{ExecutionMode, Fleet, JobSpec};
//! use cdas_engine::scheduler::DispatchPolicy;
//!
//! let mut fleet = Fleet::builder()
//!     .crowd(CrowdSpec::clean(16, 0.85).seed(7))
//!     .policy(DispatchPolicy::Priority)
//!     .build()
//!     .unwrap();
//! fleet.submit(JobSpec::sentiment("demo", demo_questions(10, 2)).workers(5)).unwrap();
//! let run = fleet.run(ExecutionMode::EndOfTime).unwrap();
//! assert_eq!(run.report().fleet.questions, 10);
//! assert!(run.verdicts().count() == 10, "one streamed verdict per real question");
//! ```

#![deny(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cdas_core::online::TerminationStrategy;
use cdas_core::types::{HitId, QuestionId};
use cdas_core::verification::Verdict;
use cdas_core::{CdasError, Result};
use cdas_crowd::failpoint::{Failpoint, FailpointPlatform};
use cdas_crowd::platform::CrowdPlatform;
use cdas_crowd::question::CrowdQuestion;
use cdas_crowd::sharded::ShardedPlatform;
use cdas_crowd::spec::CrowdSpec;
use serde::{Deserialize, Serialize};

use crate::engine::{CrowdsourcingEngine, EngineConfig, VerificationStrategy, WorkerCountPolicy};
use crate::job_manager::{AnalyticsJob, JobKind, ProcessingPlan};
use crate::journal::recovery::{JournalReplay, JournalSink, RecoveryObserver};
use crate::journal::{Journal, JournalConfig, JournalRecord, RecoveryReport, RunConfig};
use crate::metrics::FleetReport;
use crate::scheduler::{
    ArrivalDiscovery, DispatchPolicy, JobId, JobScheduler, RunObserver, ScheduledJob,
    SchedulerConfig,
};

/// How [`Fleet::run`] executes the submitted jobs. All three modes drive the same
/// scheduler over the same crowd — they differ only in how time and threads are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Poll every batch at the end of time ([`JobScheduler::run`]): ticks are dispatch
    /// rounds, not time. The fastest mode; no latency or makespan is simulated.
    EndOfTime,
    /// Discrete-event simulated time ([`JobScheduler::run_clocked`]): answers arrive
    /// under the crowd's latency model, early-terminated HITs are cancelled mid-flight,
    /// and the report carries makespan / time-to-first-verdict / reclaimed minutes.
    Clocked,
    /// The clocked loop across OS threads ([`JobScheduler::run_parallel`]), one thread
    /// per platform shard. `Parallel { shards: 1 }` reproduces [`Clocked`](Self::Clocked)
    /// byte for byte (host wall-clock aside).
    Parallel {
        /// How many shards (= OS threads) to split the crowd into. Must satisfy
        /// `1 <= shards <= worker count` or the run fails with
        /// [`CdasError::InvalidShardCount`].
        shards: usize,
    },
}

/// One analytics job as the facade accepts it: what to ask the crowd, plus *optional*
/// overrides that layer over the fleet's defaults. Anything left unset falls through to
/// the fleet ([`FleetBuilder::engine_defaults`] / [`FleetBuilder::batch_size`]) and from
/// there to the engine defaults derived from the job's own query — the same derivation
/// [`ScheduledJob::named`] has always used, so a facade job and a hand-wired job resolve
/// to identical [`ScheduledJob`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    kind: JobKind,
    name: String,
    questions: Vec<CrowdQuestion>,
    analytics: Option<AnalyticsJob>,
    priority: u8,
    batch_size: Option<usize>,
    engine: Option<EngineConfig>,
    workers: Option<WorkerCountPolicy>,
    verification: Option<VerificationStrategy>,
    termination: Option<Option<TerminationStrategy>>,
    required_accuracy: Option<f64>,
    domain_size: Option<Option<usize>>,
    deadline_minutes: Option<f64>,
}

impl JobSpec {
    /// A job of the given kind over pre-rendered crowd questions (gold flagged).
    pub fn new(kind: JobKind, name: impl Into<String>, questions: Vec<CrowdQuestion>) -> Self {
        JobSpec {
            kind,
            name: name.into(),
            questions,
            analytics: None,
            priority: 0,
            batch_size: None,
            engine: None,
            workers: None,
            verification: None,
            termination: None,
            required_accuracy: None,
            domain_size: None,
            deadline_minutes: None,
        }
    }

    /// A Twitter-sentiment job ([`JobKind::SentimentAnalytics`]).
    pub fn sentiment(name: impl Into<String>, questions: Vec<CrowdQuestion>) -> Self {
        Self::new(JobKind::SentimentAnalytics, name, questions)
    }

    /// An image-tagging job ([`JobKind::ImageTagging`]).
    pub fn tagging(name: impl Into<String>, questions: Vec<CrowdQuestion>) -> Self {
        Self::new(JobKind::ImageTagging, name, questions)
    }

    /// A job derived from a registered [`AnalyticsJob`] and its §2.1 [`ProcessingPlan`]:
    /// the engine configuration and batch size come from the plan, exactly as
    /// [`crate::job_manager::JobManager::schedule`] derives them.
    pub fn from_plan(
        job: AnalyticsJob,
        plan: &ProcessingPlan,
        questions: Vec<CrowdQuestion>,
    ) -> Self {
        let mut spec = Self::new(job.kind, job.name.clone(), questions);
        spec.engine = Some(plan.engine_config());
        spec.batch_size = Some(plan.human.sampling.batch_size());
        spec.analytics = Some(job);
        spec
    }

    /// Request a fixed worker count per HIT ([`WorkerCountPolicy::Fixed`]).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(WorkerCountPolicy::Fixed(n));
        self
    }

    /// Request an explicit worker-count policy (e.g. the prediction model's `g(C)`).
    pub fn worker_policy(mut self, policy: WorkerCountPolicy) -> Self {
        self.workers = Some(policy);
        self
    }

    /// Override the verification strategy.
    pub fn verification(mut self, verification: VerificationStrategy) -> Self {
        self.verification = Some(verification);
        self
    }

    /// Enable online early termination with the given strategy.
    pub fn termination(mut self, termination: TerminationStrategy) -> Self {
        self.termination = Some(Some(termination));
        self
    }

    /// Disable early termination (wait for all answers), even if the fleet's engine
    /// defaults enable it.
    pub fn no_termination(mut self) -> Self {
        self.termination = Some(None);
        self
    }

    /// Override the user-required accuracy `C`.
    pub fn required_accuracy(mut self, required: f64) -> Self {
        self.required_accuracy = Some(required);
        self
    }

    /// Fix the answer-domain size `m` (e.g. 3 for sentiment).
    pub fn domain_size(mut self, m: usize) -> Self {
        self.domain_size = Some(Some(m));
        self
    }

    /// Estimate the answer-domain size per observation instead of fixing it.
    pub fn estimated_domain_size(mut self) -> Self {
        self.domain_size = Some(None);
        self
    }

    /// Override the questions-per-HIT batch size `B`.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size);
        self
    }

    /// Set the dispatch priority (higher drains first under
    /// [`DispatchPolicy::Priority`]).
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Replace the *whole* engine configuration. Field-level overrides
    /// ([`workers`](Self::workers), [`termination`](Self::termination), …) still apply on
    /// top of it.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Ask the service layer ([`crate::service::FleetService`]) to finish this job
    /// within the given simulated-minutes deadline. Admission control rejects the job
    /// outright when even an idle crowd could not meet it, and queues (rather than
    /// accepts) it while the live mix would push its predicted makespan past it. A
    /// plain [`Fleet`] run ignores the deadline.
    pub fn deadline_minutes(mut self, minutes: f64) -> Self {
        self.deadline_minutes = Some(minutes);
        self
    }

    /// The service-level deadline, if one was requested.
    pub fn deadline(&self) -> Option<f64> {
        self.deadline_minutes
    }

    /// The job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many crowd questions (gold included) the job carries.
    pub fn question_count(&self) -> usize {
        self.questions.len()
    }

    /// Resolve the layered configuration into the [`ScheduledJob`] the scheduler runs:
    /// job override → fleet default → the query-derived default.
    fn resolve(&self, defaults: &FleetDefaults) -> Result<ScheduledJob> {
        if self.questions.is_empty() {
            return Err(CdasError::EmptyJob {
                name: self.name.clone(),
            });
        }
        let batch_size = self.batch_size.or(defaults.batch_size);
        if batch_size == Some(0) {
            return Err(CdasError::NonPositive { what: "batch size" });
        }
        let mut scheduled = match &self.analytics {
            Some(job) => ScheduledJob::new(job.clone(), self.questions.clone()),
            None => ScheduledJob::named(self.kind, self.name.clone(), self.questions.clone()),
        };
        let mut engine = self
            .engine
            .clone()
            .or_else(|| defaults.engine.clone())
            .unwrap_or_else(|| scheduled.engine.clone());
        if let Some(workers) = self.workers {
            engine.workers = workers;
        }
        if let Some(verification) = self.verification {
            engine.verification = verification;
        }
        if let Some(termination) = self.termination {
            engine.termination = termination;
        }
        if let Some(required) = self.required_accuracy {
            engine.required_accuracy = required;
        }
        if let Some(domain_size) = self.domain_size {
            engine.domain_size = domain_size;
        }
        scheduled = scheduled.with_engine(engine).with_priority(self.priority);
        if let Some(batch_size) = batch_size {
            scheduled = scheduled.with_batch_size(batch_size);
        }
        Ok(scheduled)
    }

    /// Resolve against *empty* fleet defaults — the resolution a fleet without
    /// [`FleetBuilder::engine_defaults`] / [`FleetBuilder::batch_size`] performs. The
    /// service layer admits jobs before any fleet exists, so it predicts from exactly
    /// the [`ScheduledJob`] a default-configured epoch fleet will run.
    pub(crate) fn resolve_default(&self) -> Result<ScheduledJob> {
        self.resolve(&FleetDefaults::default())
    }
}

impl From<ScheduledJob> for JobSpec {
    /// Lift a hand-wired [`ScheduledJob`] into the facade unchanged: resolving the
    /// returned spec reproduces the original job exactly, whatever the fleet defaults.
    fn from(scheduled: ScheduledJob) -> Self {
        let mut spec = Self::new(
            scheduled.job.kind,
            scheduled.job.name.clone(),
            scheduled.questions,
        );
        spec.analytics = Some(scheduled.job);
        spec.engine = Some(scheduled.engine);
        spec.batch_size = Some(scheduled.batch_size);
        spec.priority = scheduled.priority;
        spec
    }
}

/// Fleet-wide defaults a [`JobSpec`] falls back to when it does not override a setting.
#[derive(Debug, Clone, PartialEq, Default)]
struct FleetDefaults {
    engine: Option<EngineConfig>,
    batch_size: Option<usize>,
}

/// Typestate marker: the builder has no crowd yet, so [`FleetBuilder::build`] does not
/// exist — a fleet without workers is unrepresentable at compile time.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeedsCrowd;

/// The typestate builder behind [`Fleet::builder`].
///
/// Starts as `FleetBuilder<NeedsCrowd>`; [`crowd`](Self::crowd) moves it to
/// `FleetBuilder<CrowdSpec>`, on which [`build`](Self::build) becomes available. Every
/// other knob is callable in either state, so the call order is free.
#[derive(Debug, Clone)]
pub struct FleetBuilder<Crowd = NeedsCrowd> {
    crowd: Crowd,
    scheduler: SchedulerConfig,
    shards: usize,
    defaults: FleetDefaults,
    jobs: Vec<JobSpec>,
    journal: Option<PathBuf>,
    journal_config: JournalConfig,
}

impl Default for FleetBuilder<NeedsCrowd> {
    fn default() -> Self {
        FleetBuilder {
            crowd: NeedsCrowd,
            scheduler: SchedulerConfig::default(),
            shards: 1,
            defaults: FleetDefaults::default(),
            jobs: Vec::new(),
            journal: None,
            journal_config: JournalConfig::default(),
        }
    }
}

impl FleetBuilder<NeedsCrowd> {
    /// Describe the crowd this fleet runs against. This is the one mandatory builder
    /// step: it moves the builder into the buildable state.
    pub fn crowd(self, spec: CrowdSpec) -> FleetBuilder<CrowdSpec> {
        FleetBuilder {
            crowd: spec,
            scheduler: self.scheduler,
            shards: self.shards,
            defaults: self.defaults,
            jobs: self.jobs,
            journal: self.journal,
            journal_config: self.journal_config,
        }
    }
}

impl<Crowd> FleetBuilder<Crowd> {
    /// Set the dispatch policy (default [`DispatchPolicy::RoundRobin`]).
    pub fn policy(mut self, policy: DispatchPolicy) -> Self {
        self.scheduler.policy = policy;
        self
    }

    /// Set the *scheduler's* lease-selection RNG seed (default 42, matching
    /// [`SchedulerConfig::default`]). This is deliberately not called `seed`: the crowd's
    /// seed lives on the [`CrowdSpec`] (`CrowdSpec::seed`), and the two drive different
    /// RNGs — one shuffles lease checkout, the other generates the worker population.
    pub fn scheduler_seed(mut self, seed: u64) -> Self {
        self.scheduler.seed = seed;
        self
    }

    /// Set the scheduler's stall valve (default [`SchedulerConfig::default`]'s).
    pub fn max_ticks(mut self, max_ticks: usize) -> Self {
        self.scheduler.max_ticks = max_ticks;
        self
    }

    /// Set how the clocked loops discover the next arrival event (default
    /// [`ArrivalDiscovery::Heap`]). [`ArrivalDiscovery::Scan`] is the pre-heap
    /// per-tick scan, retained as the differential-testing oracle and the benchmark
    /// baseline; both produce bit-identical reports.
    pub fn arrival_discovery(mut self, discovery: ArrivalDiscovery) -> Self {
        self.scheduler.discovery = discovery;
        self
    }

    /// Set the default shard count [`Fleet::run_parallel`] uses (default 1; validated
    /// against the crowd at [`build`](FleetBuilder::build), and above 1 it tightens
    /// [`Fleet::submit`]'s feasibility check to each job's shard roster).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the fleet-wide default [`EngineConfig`] jobs layer their overrides onto.
    /// Without one, each job derives its engine defaults from its own query, exactly as
    /// [`ScheduledJob::named`] does.
    pub fn engine_defaults(mut self, engine: EngineConfig) -> Self {
        self.defaults.engine = Some(engine);
        self
    }

    /// Set the fleet-wide default batch size `B` (without one, jobs default to
    /// [`ScheduledJob`]'s 20).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.defaults.batch_size = Some(batch_size);
        self
    }

    /// Journal every run of this fleet into the given directory: a write-ahead,
    /// CRC-checked [`Journal`] of the run's configuration, dispatches, charges, batch
    /// commits and events, from which [`Fleet::recover`] can resume a half-finished run.
    /// [`Fleet::run`] wipes any previous run's segments from the directory first — one
    /// directory holds one run.
    pub fn journal(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal = Some(dir.into());
        self
    }

    /// Tune the journal ([`JournalConfig`]: segment size, fsync policy, and the
    /// byte-level write-kill failpoint the durability tests use). Only meaningful
    /// together with [`journal`](Self::journal).
    pub fn journal_config(mut self, config: JournalConfig) -> Self {
        self.journal_config = config;
        self
    }

    /// Queue a job for submission at [`build`](FleetBuilder::build) time. Jobs can also
    /// be submitted after building via [`Fleet::submit`].
    pub fn job(mut self, job: JobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// Queue several jobs at once.
    pub fn jobs(mut self, jobs: impl IntoIterator<Item = JobSpec>) -> Self {
        self.jobs.extend(jobs);
        self
    }
}

impl FleetBuilder<CrowdSpec> {
    /// Validate the configuration and assemble the [`Fleet`].
    ///
    /// Misconfigurations come back as typed errors instead of panics or silent
    /// misbehaviour later: a crowd with no workers is [`CdasError::EmptyFleet`], an
    /// unservable shard count is [`CdasError::InvalidShardCount`], a job without
    /// questions is [`CdasError::EmptyJob`], a zero batch size or zero worker count is
    /// [`CdasError::NonPositive`], and a job demanding more workers than the crowd holds
    /// is [`CdasError::PoolExhausted`].
    pub fn build(self) -> Result<Fleet> {
        let workers = self.crowd.worker_count();
        if workers == 0 {
            return Err(CdasError::EmptyFleet);
        }
        validate_shards(self.shards, workers)?;
        let fleet = Fleet {
            crowd: self.crowd,
            scheduler: self.scheduler,
            shards: self.shards,
            defaults: self.defaults,
            jobs: Vec::new(),
            journal: self.journal,
            journal_config: self.journal_config,
        };
        let mut fleet = fleet;
        for job in self.jobs {
            fleet.submit(job)?;
        }
        Ok(fleet)
    }
}

fn validate_shards(shards: usize, workers: usize) -> Result<()> {
    if shards == 0 || shards > workers {
        return Err(CdasError::InvalidShardCount { shards, workers });
    }
    Ok(())
}

/// The assembled fleet: one crowd, one scheduler configuration, N jobs, and a single
/// [`run`](Self::run) entry point. See the [module docs](self) for the full tour.
#[derive(Debug, Clone)]
pub struct Fleet {
    crowd: CrowdSpec,
    scheduler: SchedulerConfig,
    shards: usize,
    defaults: FleetDefaults,
    jobs: Vec<JobSpec>,
    journal: Option<PathBuf>,
    journal_config: JournalConfig,
}

/// Where (if anywhere) a [`Fleet::run_with_failpoints`] run injects a platform crash.
/// The platform of every run is wrapped in a [`FailpointPlatform`]; an unarmed
/// failpoint is a transparent pass-through, so `run` and `run_with_failpoints(…,
/// FleetFailpoints::none())` are the same run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetFailpoints {
    platform: Failpoint,
    shard: usize,
}

impl FleetFailpoints {
    /// No injected faults (the default).
    pub fn none() -> Self {
        FleetFailpoints::default()
    }

    /// Arm a failpoint on the run's platform (shard 0 under
    /// [`ExecutionMode::Parallel`]).
    pub fn platform(failpoint: Failpoint) -> Self {
        FleetFailpoints {
            platform: failpoint,
            shard: 0,
        }
    }

    /// Arm a failpoint on one specific shard of a [`ExecutionMode::Parallel`] run —
    /// that shard's thread dies mid-run (the kill -9 drill) while the others finish
    /// their polls. Under the single-platform modes only shard 0 exists, so a failpoint
    /// armed on any other shard never fires.
    pub fn on_shard(shard: usize, failpoint: Failpoint) -> Self {
        FleetFailpoints {
            platform: failpoint,
            shard,
        }
    }

    fn for_shard(&self, shard: usize) -> Failpoint {
        if shard == self.shard {
            self.platform
        } else {
            Failpoint::never()
        }
    }
}

impl Fleet {
    /// Start building a fleet. [`FleetBuilder::crowd`] is the one mandatory step.
    pub fn builder() -> FleetBuilder<NeedsCrowd> {
        FleetBuilder::default()
    }

    /// Submit a job, validating it eagerly: its layered configuration is resolved now,
    /// so an empty question list, a zero batch size, a zero worker count or a demand the
    /// crowd can never satisfy is rejected here as a typed [`CdasError`] rather than
    /// surfacing mid-run. With a default shard count above 1 ([`FleetBuilder::shards`]),
    /// the demand is checked against the *shard* this job would be striped onto — a
    /// fleet that would only fail inside [`run_parallel`](Self::run_parallel) is
    /// rejected up front. (A run-time [`ExecutionMode::Parallel`] override with a
    /// different shard count is re-checked by the scheduler before anything dispatches.)
    pub fn submit(&mut self, job: JobSpec) -> Result<JobId> {
        let scheduled = job.resolve(&self.defaults)?;
        let needed = CrowdsourcingEngine::new(scheduled.engine).decide_workers()?;
        let workers = self.crowd.worker_count();
        // The shard this job lands on under `run_parallel` striping (job j → shard
        // j % n) and its round-robin partition size (worker i → shard i % n).
        let shard = self.jobs.len() % self.shards;
        let shard_roster = workers / self.shards + usize::from(shard < workers % self.shards);
        let available = if self.shards > 1 {
            shard_roster
        } else {
            workers
        };
        if needed > available {
            return Err(CdasError::PoolExhausted { needed, available });
        }
        self.jobs.push(job);
        Ok(JobId(self.jobs.len() - 1))
    }

    /// The crowd this fleet runs against.
    pub fn crowd(&self) -> &CrowdSpec {
        &self.crowd
    }

    /// Number of submitted jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The submitted job specs, in [`JobId`] order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// The default shard count [`run_parallel`](Self::run_parallel) uses.
    pub fn default_shards(&self) -> usize {
        self.shards
    }

    /// Run every submitted job to completion under the given [`ExecutionMode`].
    ///
    /// Each run derives a **fresh** platform, ledger and shared registry from the
    /// [`CrowdSpec`], so runs are independent and deterministic: running the same fleet
    /// twice — or under `Clocked` and `Parallel { shards: 1 }` — produces equal reports
    /// (host wall-clock aside; compare via [`FleetReport::ignoring_wall_clock`]).
    ///
    /// With [`FleetBuilder::journal`] set, the run is write-ahead journaled: the
    /// resolved [`RunConfig`] is persisted before anything dispatches, every dispatch /
    /// charge / batch commit is appended as it happens, and the event stream plus a
    /// `RunCompleted` trailer land after the run. [`Fleet::recover`] turns that journal
    /// back into a finished run after a crash.
    pub fn run(&self, mode: ExecutionMode) -> Result<FleetRun> {
        self.run_with_failpoints(mode, FleetFailpoints::none())
    }

    /// [`run`](Self::run) with fault injection: the run's platform(s) are wrapped in
    /// [`FailpointPlatform`]s armed per [`FleetFailpoints`]. An armed failpoint
    /// **panics** mid-run — callers catch it with `std::panic::catch_unwind`, then hand
    /// the journal directory to [`Fleet::recover`], exactly as a supervisor would after
    /// a real crash. Journal appends hit the OS unbuffered, so everything appended
    /// before the panic survives it.
    pub fn run_with_failpoints(
        &self,
        mode: ExecutionMode,
        failpoints: FleetFailpoints,
    ) -> Result<FleetRun> {
        let sink = match &self.journal {
            None => None,
            Some(dir) => {
                let mut journal = Journal::create(dir, self.journal_config.clone())?;
                journal.append(&JournalRecord::RunStarted(self.run_config(mode)?))?;
                Some(Arc::new(JournalSink::new(journal)))
            }
        };
        let observer = sink.clone().map(|sink| sink as Arc<dyn RunObserver>);
        let (report, platform_cost, events) = self.execute(mode, &failpoints, observer)?;
        if let Some(sink) = sink {
            for event in &events {
                sink.append(&JournalRecord::Event(event.clone()));
            }
            sink.append(&JournalRecord::RunCompleted {
                cost: report.fleet.cost,
                questions: report.fleet.questions,
                makespan: report.makespan,
            });
            sink.sync();
            if let Some(failure) = sink.take_failure() {
                return Err(failure);
            }
        }
        Ok(FleetRun {
            report,
            events,
            platform_cost,
        })
    }

    /// The fully-resolved configuration a run under `mode` executes — the pure-function
    /// input that, journaled as the `RunStarted` record, lets [`Fleet::recover`] rebuild
    /// this fleet from disk alone.
    pub fn run_config(&self, mode: ExecutionMode) -> Result<RunConfig> {
        Ok(RunConfig {
            crowd: self.crowd.clone(),
            scheduler: self.scheduler,
            mode,
            jobs: self.resolved_jobs()?,
        })
    }

    /// Rebuild a fleet from a journaled [`RunConfig`] (the inverse of
    /// [`run_config`](Self::run_config)): resolved jobs lift back into the facade via
    /// [`JobSpec::from`], so re-resolving them reproduces the original run's jobs
    /// exactly.
    pub fn from_run_config(config: RunConfig) -> Result<Fleet> {
        let workers = config.crowd.worker_count();
        if workers == 0 {
            return Err(CdasError::EmptyFleet);
        }
        let shards = match config.mode {
            ExecutionMode::Parallel { shards } => shards,
            _ => 1,
        };
        validate_shards(shards, workers)?;
        let mut fleet = Fleet {
            crowd: config.crowd,
            scheduler: config.scheduler,
            shards,
            defaults: FleetDefaults::default(),
            jobs: Vec::new(),
            journal: None,
            journal_config: JournalConfig::default(),
        };
        for job in config.jobs {
            fleet.submit(JobSpec::from(job))?;
        }
        Ok(fleet)
    }

    /// Recover the run journaled in `dir` and resume it to completion.
    ///
    /// A run is a pure function of its journaled [`RunConfig`], so recovery re-executes
    /// it deterministically while a [`RecoveryObserver`] cross-checks every dispatch,
    /// charge and commit against the journaled prefix: journaled work is *recovered*
    /// (matched, **not** re-appended and not re-paid — see
    /// [`RecoveryReport::recovered_cost`]), post-crash work is *resumed* (appended
    /// exactly as a live run would have). A torn final frame — the signature of dying
    /// mid-write — is dropped and the journal repaired in place; any substantive
    /// mismatch aborts with [`CdasError::JournalDiverged`], and corruption anywhere
    /// except the tail with [`CdasError::JournalCorrupt`]. The returned [`FleetRun`] is
    /// bit-identical (wall clock aside) to the run the crash interrupted, and the
    /// journal is left complete — recovering again is a no-op resume
    /// ([`RecoveryReport::was_complete`]).
    pub fn recover(dir: impl AsRef<Path>) -> Result<(FleetRun, RecoveryReport)> {
        Self::recover_with_config(dir, JournalConfig::default())
    }

    /// [`recover`](Self::recover) with an explicit [`JournalConfig`] for the re-opened
    /// journal — the hook the durability tests use to crash the journal *again* during
    /// a resume ([`JournalConfig::fail_writes_after`]) or to tune rotation/fsync of the
    /// resumed tail.
    pub fn recover_with_config(
        dir: impl AsRef<Path>,
        config: JournalConfig,
    ) -> Result<(FleetRun, RecoveryReport)> {
        let (journal, contents) = Journal::open_append(&dir, config)?;
        let replay = JournalReplay::assemble(&contents)?;
        let run_config = replay.config.clone();
        let mode = run_config.mode;
        let fleet = Fleet::from_run_config(run_config)?;
        let observer = Arc::new(RecoveryObserver::new(journal, replay));
        let (report, platform_cost, events) = fleet.execute(
            mode,
            &FleetFailpoints::none(),
            Some(Arc::clone(&observer) as Arc<dyn RunObserver>),
        )?;
        let recovery = observer.finish(
            &events,
            report.fleet.cost,
            report.fleet.questions,
            report.makespan,
        )?;
        Ok((
            FleetRun {
                report,
                events,
                platform_cost,
            },
            recovery,
        ))
    }

    fn resolved_jobs(&self) -> Result<Vec<ScheduledJob>> {
        self.jobs
            .iter()
            .map(|job| job.resolve(&self.defaults))
            .collect()
    }

    /// The engine room shared by [`run_with_failpoints`](Self::run_with_failpoints) and
    /// [`recover`](Self::recover): build a scheduler, attach the observer, run under
    /// `mode` on failpoint-wrapped platforms, and assemble the event stream.
    fn execute(
        &self,
        mode: ExecutionMode,
        failpoints: &FleetFailpoints,
        observer: Option<Arc<dyn RunObserver>>,
    ) -> Result<(FleetReport, f64, Vec<FleetEvent>)> {
        let mut scheduler = JobScheduler::new(self.scheduler, self.crowd.build_ledger());
        for job in self.resolved_jobs()? {
            scheduler.submit(job);
        }
        if let Some(observer) = observer {
            scheduler.attach_observer(observer);
        }
        let (report, platform_cost) = match mode {
            ExecutionMode::EndOfTime => {
                let mut platform =
                    FailpointPlatform::new(self.crowd.build_platform(), failpoints.for_shard(0));
                let report = scheduler.run(&mut platform)?;
                let cost = platform.total_cost();
                (report, cost)
            }
            ExecutionMode::Clocked => {
                let mut platform =
                    FailpointPlatform::new(self.crowd.build_platform(), failpoints.for_shard(0));
                let report = scheduler.run_clocked(&mut platform)?;
                let cost = platform.total_cost();
                (report, cost)
            }
            ExecutionMode::Parallel { shards } => {
                validate_shards(shards, self.crowd.worker_count())?;
                let mut platform = ShardedPlatform::from_parts(
                    self.crowd
                        .build_sharded(shards)
                        .into_shards()
                        .into_iter()
                        .enumerate()
                        .map(|(s, shard)| {
                            let (inner, roster) = shard.into_parts();
                            (
                                FailpointPlatform::new(inner, failpoints.for_shard(s)),
                                roster,
                            )
                        }),
                );
                let report = scheduler.run_parallel(&mut platform)?;
                let cost = platform.total_cost();
                (report, cost)
            }
        };
        let events = stream_events(&report, &scheduler);
        Ok((report, platform_cost, events))
    }

    /// [`run`](Self::run) under [`ExecutionMode::Parallel`] with the builder's default
    /// shard count ([`FleetBuilder::shards`]).
    pub fn run_parallel(&self) -> Result<FleetRun> {
        self.run(ExecutionMode::Parallel {
            shards: self.shards,
        })
    }
}

/// One entry of a [`FleetRun`]'s event stream, in simulated-time order. Events are fed
/// from the data the scheduler already records — the [`DispatchRecord`](crate::scheduler::DispatchRecord) timeline, the
/// per-batch outcomes, and the per-job clocked rollups — so they cost nothing extra to
/// produce. In `EndOfTime` runs every `at` is `0.0` (ticks are not time there) and the
/// stream falls back to dispatch order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// A job's first batch was dispatched.
    JobStarted {
        /// The job.
        job: JobId,
        /// The job's name.
        name: String,
        /// Simulated minute of the first dispatch.
        at: f64,
    },
    /// A HIT batch was published to leased workers.
    HitDispatched {
        /// The publishing job.
        job: JobId,
        /// The platform HIT id.
        hit: HitId,
        /// How many workers the HIT was restricted to.
        workers: usize,
        /// Simulated minute of the dispatch.
        at: f64,
    },
    /// A real (non-gold) question reached its final verdict.
    QuestionTerminated {
        /// The owning job.
        job: JobId,
        /// The question.
        question: QuestionId,
        /// The accepted answer (or `NoAnswer`).
        verdict: Verdict,
        /// Reason keywords collected from the workers that voted for the accepted
        /// answer — enough to feed a Figure-4-style presentation straight off the
        /// stream.
        reasons: Vec<String>,
        /// Answers consumed before the decision.
        answers_used: usize,
        /// Whether termination fired before every assigned worker answered.
        early: bool,
        /// Simulated minute the question's *batch* was dispatched. The scheduler records
        /// termination instants at job granularity, not per question, so this anchors
        /// the event into the timeline at the earliest point it could have happened.
        at: f64,
    },
    /// A job produced its first final verdict on a real question (clocked runs only).
    FirstVerdict {
        /// The job.
        job: JobId,
        /// Simulated minute of the verdict.
        at: f64,
    },
    /// A mid-flight cancellation handed worker-minutes back to the pool (clocked runs
    /// only).
    LeaseReclaimed {
        /// The cancelling job.
        job: JobId,
        /// Simulated worker-minutes reclaimed across the job's cancellations.
        minutes: f64,
        /// Simulated minute of the job's completion (the rollup is per job).
        at: f64,
    },
    /// A job ingested its last batch.
    JobCompleted {
        /// The job.
        job: JobId,
        /// Real questions the job resolved.
        questions: usize,
        /// The job's real accuracy against ground truth.
        accuracy: f64,
        /// Simulated minute of completion (`0.0` in `EndOfTime` runs).
        at: f64,
    },
}

impl FleetEvent {
    /// The simulated minute this event is anchored to (`0.0` throughout `EndOfTime`
    /// runs).
    pub fn at(&self) -> f64 {
        match self {
            FleetEvent::JobStarted { at, .. }
            | FleetEvent::HitDispatched { at, .. }
            | FleetEvent::QuestionTerminated { at, .. }
            | FleetEvent::FirstVerdict { at, .. }
            | FleetEvent::LeaseReclaimed { at, .. }
            | FleetEvent::JobCompleted { at, .. } => *at,
        }
    }

    /// The job this event belongs to.
    pub fn job(&self) -> JobId {
        match self {
            FleetEvent::JobStarted { job, .. }
            | FleetEvent::HitDispatched { job, .. }
            | FleetEvent::QuestionTerminated { job, .. }
            | FleetEvent::FirstVerdict { job, .. }
            | FleetEvent::LeaseReclaimed { job, .. }
            | FleetEvent::JobCompleted { job, .. } => *job,
        }
    }
}

/// The result of one [`Fleet::run`]: the aggregate [`FleetReport`] plus the streaming
/// side — the ordered [`FleetEvent`]s and a per-question verdict iterator.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    report: FleetReport,
    events: Vec<FleetEvent>,
    platform_cost: f64,
}

impl FleetRun {
    /// The aggregate report (jobs, fleet rollup, shards, dispatch timeline).
    pub fn report(&self) -> &FleetReport {
        &self.report
    }

    /// Consume the run, yielding the report.
    pub fn into_report(self) -> FleetReport {
        self.report
    }

    /// The event stream, ordered by simulated time (dispatch order in `EndOfTime` runs).
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }

    /// Replay the event stream through a callback — the monitoring hook for callers that
    /// want to observe the run without walking the report.
    pub fn replay<F: FnMut(&FleetEvent)>(&self, mut observer: F) {
        for event in &self.events {
            observer(event);
        }
    }

    /// The streaming verdict view: every real question's final verdict, in event-stream
    /// order, as `(job, question, verdict)`.
    pub fn verdicts(&self) -> impl Iterator<Item = (JobId, QuestionId, &Verdict)> + '_ {
        self.events.iter().filter_map(|event| match event {
            FleetEvent::QuestionTerminated {
                job,
                question,
                verdict,
                ..
            } => Some((*job, *question, verdict)),
            _ => None,
        })
    }

    /// Dollars the platform(s) charged during this run. Equal to
    /// `report().fleet.cost` — the engine-side and platform-side ledgers agree by the
    /// PR 3 accounting contract — but measured independently on the platform.
    pub fn platform_cost(&self) -> f64 {
        self.platform_cost
    }
}

/// Assemble the event stream from what the scheduler already recorded.
fn stream_events(report: &FleetReport, scheduler: &JobScheduler) -> Vec<FleetEvent> {
    let mut events: Vec<FleetEvent> = Vec::new();
    let mut started: BTreeSet<usize> = BTreeSet::new();
    for dispatch in &report.dispatches {
        if started.insert(dispatch.job.0) {
            // Dispatches only ever name jobs the report carries.
            if let Some(job) = report.jobs.get(dispatch.job.0) {
                events.push(FleetEvent::JobStarted {
                    job: dispatch.job,
                    name: job.name.clone(),
                    at: dispatch.at,
                });
            }
        }
        events.push(FleetEvent::HitDispatched {
            job: dispatch.job,
            hit: dispatch.hit,
            workers: dispatch.workers.len(),
            at: dispatch.at,
        });
    }
    let dispatched_at: BTreeMap<HitId, f64> =
        report.dispatches.iter().map(|d| (d.hit, d.at)).collect();
    for job in &report.jobs {
        for (_questions, outcome) in scheduler.outcomes(job.job) {
            let at = dispatched_at.get(&outcome.hit).copied().unwrap_or(0.0);
            for verdict in outcome.real_verdicts() {
                events.push(FleetEvent::QuestionTerminated {
                    job: job.job,
                    question: verdict.question,
                    verdict: verdict.verdict.clone(),
                    reasons: verdict.reasons.clone(),
                    answers_used: verdict.answers_used,
                    early: verdict.answers_used < outcome.workers_assigned,
                    at,
                });
            }
        }
        if let Some(at) = job.time_to_first_verdict {
            events.push(FleetEvent::FirstVerdict { job: job.job, at });
        }
        if job.reclaimed_minutes > 0.0 {
            events.push(FleetEvent::LeaseReclaimed {
                job: job.job,
                minutes: job.reclaimed_minutes,
                at: job.completed_at,
            });
        }
        events.push(FleetEvent::JobCompleted {
            job: job.job,
            questions: job.report.questions,
            accuracy: job.report.accuracy,
            at: job.completed_at,
        });
    }
    // Stable: equal-time events keep their insertion order, which is dispatch order for
    // the timeline and per-job order for the rollup events — exactly what an observer of
    // an unclocked run (all `at == 0.0`) should see.
    events.sort_by(|a, b| a.at().total_cmp(&b.at()));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::demo_questions;
    use cdas_core::economics::CostModel;
    use cdas_crowd::arrival::LatencyModel;
    use cdas_crowd::lease::PoolLedger;
    use cdas_crowd::pool::{PoolConfig, WorkerPool};
    use cdas_crowd::SimulatedPlatform;

    fn spec() -> CrowdSpec {
        CrowdSpec::clean(16, 0.85)
            .seed(7)
            .latency(LatencyModel::Exponential { mean: 5.0 })
    }

    fn demo_fleet() -> Fleet {
        let mut fleet = Fleet::builder().crowd(spec()).shards(2).build().unwrap();
        for name in ["a", "b"] {
            fleet
                .submit(
                    JobSpec::sentiment(name, demo_questions(8, 2))
                        .workers(5)
                        .domain_size(3)
                        .batch_size(5),
                )
                .unwrap();
        }
        fleet
    }

    #[test]
    fn builder_without_jobs_runs_an_empty_fleet() {
        let fleet = Fleet::builder().crowd(spec()).build().unwrap();
        let run = fleet.run(ExecutionMode::EndOfTime).unwrap();
        assert!(run.report().jobs.is_empty());
        assert!(run.events().is_empty());
        assert_eq!(run.verdicts().count(), 0);
    }

    // The build()/submit()-time misuse matrix (empty crowd, bad shard counts, empty
    // job, batch 0, workers 0) is pinned once, at the prelude surface, in
    // `tests/fleet_facade.rs`. The cases below are the ones only unit scope can reach.

    #[test]
    fn run_time_shard_override_is_validated() {
        let fleet = Fleet::builder().crowd(spec()).build().unwrap();
        match fleet.run(ExecutionMode::Parallel { shards: 99 }) {
            Err(CdasError::InvalidShardCount { shards: 99, .. }) => {}
            other => panic!("expected InvalidShardCount, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_demand_is_rejected_at_submit() {
        // Against the whole crowd…
        let mut fleet = Fleet::builder().crowd(spec()).build().unwrap();
        match fleet.submit(JobSpec::sentiment("wide", demo_questions(4, 1)).workers(40)) {
            Err(CdasError::PoolExhausted {
                needed: 40,
                available: 16,
            }) => {}
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
        assert_eq!(fleet.job_count(), 0, "no failed submission was kept");
        // …and against the job's shard when the fleet defaults to parallel striping: a
        // 7-worker job fits the 16-worker crowd but not its 4-worker shard, so it must
        // be rejected here, not mid-`run_parallel`.
        let mut sharded = Fleet::builder().crowd(spec()).shards(4).build().unwrap();
        match sharded.submit(JobSpec::sentiment("wide", demo_questions(4, 1)).workers(7)) {
            Err(CdasError::PoolExhausted {
                needed: 7,
                available: 4,
            }) => {}
            other => panic!("expected per-shard PoolExhausted, got {other:?}"),
        }
        sharded
            .submit(JobSpec::sentiment("fits", demo_questions(4, 1)).workers(4))
            .unwrap();
    }

    #[test]
    fn facade_clocked_run_matches_a_hand_wired_scheduler() {
        let fleet = demo_fleet();
        let facade = fleet.run(ExecutionMode::Clocked).unwrap();

        // The hand-wired equivalent, built exactly as PR 2–4 callers always did.
        let pool = WorkerPool::generate(&PoolConfig {
            latency: LatencyModel::Exponential { mean: 5.0 },
            ..PoolConfig::clean(16, 0.85, 7)
        });
        let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 7);
        let mut scheduler =
            JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
        for name in ["a", "b"] {
            let mut engine =
                ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(8, 2)).engine;
            engine.workers = WorkerCountPolicy::Fixed(5);
            engine.domain_size = Some(3);
            scheduler.submit(
                ScheduledJob::named(JobKind::SentimentAnalytics, name, demo_questions(8, 2))
                    .with_engine(engine)
                    .with_batch_size(5),
            );
        }
        let direct = scheduler.run_clocked(&mut platform).unwrap();
        assert_eq!(
            facade.report().ignoring_wall_clock(),
            direct.ignoring_wall_clock(),
            "facade Clocked must be the hand-wired run_clocked"
        );
        assert!((facade.platform_cost() - platform.total_cost()).abs() < 1e-12);
    }

    #[test]
    fn all_three_modes_resolve_every_question() {
        let fleet = demo_fleet();
        for mode in [
            ExecutionMode::EndOfTime,
            ExecutionMode::Clocked,
            ExecutionMode::Parallel { shards: 2 },
        ] {
            let run = fleet.run(mode).unwrap();
            assert_eq!(run.report().fleet.questions, 16, "{mode:?}");
            assert_eq!(run.verdicts().count(), 16, "{mode:?}");
        }
    }

    #[test]
    fn parallel_one_shard_matches_clocked() {
        let fleet = demo_fleet();
        let clocked = fleet.run(ExecutionMode::Clocked).unwrap();
        let parallel = fleet.run(ExecutionMode::Parallel { shards: 1 }).unwrap();
        assert_eq!(
            clocked.report().ignoring_wall_clock(),
            parallel.report().ignoring_wall_clock()
        );
        // The event streams agree too, because they derive from the same records.
        assert_eq!(clocked.events(), parallel.events());
    }

    #[test]
    fn event_stream_is_ordered_and_complete() {
        let fleet = demo_fleet();
        let run = fleet.run(ExecutionMode::Clocked).unwrap();
        let events = run.events();
        assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));
        let starts = events
            .iter()
            .filter(|e| matches!(e, FleetEvent::JobStarted { .. }))
            .count();
        let completions = events
            .iter()
            .filter(|e| matches!(e, FleetEvent::JobCompleted { .. }))
            .count();
        assert_eq!(starts, 2);
        assert_eq!(completions, 2);
        let dispatches = events
            .iter()
            .filter(|e| matches!(e, FleetEvent::HitDispatched { .. }))
            .count();
        assert_eq!(dispatches, run.report().dispatches.len());
        let verdicts = events
            .iter()
            .filter(|e| matches!(e, FleetEvent::QuestionTerminated { .. }))
            .count();
        assert_eq!(verdicts, 16, "one per real question, gold excluded");
        // A clocked run knows when each job first answered something.
        assert!(events
            .iter()
            .any(|e| matches!(e, FleetEvent::FirstVerdict { .. })));
        // Replay visits every event in order.
        let mut seen = 0usize;
        run.replay(|_| seen += 1);
        assert_eq!(seen, events.len());
    }

    #[test]
    fn termination_emits_reclaimed_lease_events() {
        let mut fleet = Fleet::builder()
            .crowd(
                CrowdSpec::clean(9, 0.9)
                    .seed(33)
                    .latency(LatencyModel::Exponential { mean: 5.0 }),
            )
            .build()
            .unwrap();
        for name in ["a", "b"] {
            fleet
                .submit(
                    JobSpec::sentiment(name, demo_questions(6, 3))
                        .workers(7)
                        .domain_size(3)
                        .termination(TerminationStrategy::ExpMax)
                        .batch_size(9),
                )
                .unwrap();
        }
        let run = fleet.run(ExecutionMode::Clocked).unwrap();
        assert!(run
            .events()
            .iter()
            .any(|e| matches!(e, FleetEvent::LeaseReclaimed { minutes, .. } if *minutes > 0.0)));
        assert!(run
            .events()
            .iter()
            .any(|e| matches!(e, FleetEvent::QuestionTerminated { early: true, .. })));
    }

    #[test]
    fn layered_defaults_fleet_then_job() {
        // Fleet default: 5 workers, ExpMax termination. Job b overrides the worker count.
        let mut fleet = Fleet::builder()
            .crowd(spec())
            .engine_defaults(EngineConfig {
                workers: WorkerCountPolicy::Fixed(5),
                termination: Some(TerminationStrategy::ExpMax),
                domain_size: Some(3),
                ..EngineConfig::default()
            })
            .batch_size(4)
            .build()
            .unwrap();
        fleet
            .submit(JobSpec::sentiment("default", demo_questions(4, 1)))
            .unwrap();
        fleet
            .submit(
                JobSpec::sentiment("override", demo_questions(4, 1))
                    .workers(7)
                    .no_termination(),
            )
            .unwrap();
        let a = fleet.jobs()[0].resolve(&fleet.defaults).unwrap();
        let b = fleet.jobs()[1].resolve(&fleet.defaults).unwrap();
        assert_eq!(a.engine.workers, WorkerCountPolicy::Fixed(5));
        assert_eq!(a.engine.termination, Some(TerminationStrategy::ExpMax));
        assert_eq!(a.batch_size, 4, "fleet default batch size");
        assert_eq!(b.engine.workers, WorkerCountPolicy::Fixed(7));
        assert_eq!(b.engine.termination, None, "job override wins");
    }

    #[test]
    fn scheduled_job_round_trips_through_the_facade() {
        let scheduled =
            ScheduledJob::named(JobKind::ImageTagging, "round-trip", demo_questions(6, 2))
                .with_batch_size(3)
                .with_priority(4);
        let spec = JobSpec::from(scheduled.clone());
        // Whatever the fleet defaults say, a lifted ScheduledJob resolves to itself.
        let defaults = FleetDefaults {
            engine: Some(EngineConfig {
                workers: WorkerCountPolicy::Fixed(13),
                ..EngineConfig::default()
            }),
            batch_size: Some(11),
        };
        assert_eq!(spec.resolve(&defaults).unwrap(), scheduled);
    }

    #[test]
    fn runs_are_independent_and_repeatable() {
        let fleet = demo_fleet();
        let a = fleet.run(ExecutionMode::Clocked).unwrap();
        let b = fleet.run(ExecutionMode::Clocked).unwrap();
        assert_eq!(
            a.report().ignoring_wall_clock(),
            b.report().ignoring_wall_clock()
        );
        assert_eq!(a.events(), b.events());
    }
}
