//! Clocked phase 2: discrete-event ingestion of a HIT batch (§4.2 with real time).
//!
//! [`CrowdsourcingEngine::collect_batch`] polls the platform at the end of time: every
//! answer is delivered (and paid for) before the first verdict is computed, so "early
//! termination" only replays history. This module is the time-aware counterpart. A
//! [`ClockedCollector`] is created when the batch is published and then *fed* answers as
//! they arrive, advancing a [`SimClock`] from arrival event to arrival event:
//!
//! 1. each arriving worker submission is first scored against the batch's gold questions
//!    (Algorithm 4 becomes incremental — a worker's weight reflects their own gold score
//!    the moment their submission lands),
//! 2. the real questions' votes stream into per-question [`OnlineProcessor`]s
//!    (Algorithm 5), and
//! 3. the moment *every* question's termination condition has fired, the caller cancels
//!    the HIT mid-flight: undelivered assignments are never charged
//!    ([`cdas_crowd::platform::CancelReceipt`]), and the workers still typing get their
//!    remaining simulated minutes back — which a scheduler can immediately re-lease to
//!    another job ([`crate::scheduler::JobScheduler::run_clocked`]).
//!
//! Strategies without an online termination signal (the voting strategies, or
//! probabilistic verification without a [`cdas_core::online::TerminationStrategy`]) still
//! benefit: answers
//! are ingested incrementally and the batch completes at its natural makespan, with
//! verdicts identical to the end-of-time path. The engine-side cost of a clocked batch is
//! *by construction* what the platform charged — the per-delivered-answer price — closing
//! the terminated-HIT accounting divergence of the legacy path.

use std::collections::BTreeMap;

use cdas_core::accuracy::AccuracyRegistry;
use cdas_core::online::OnlineProcessor;
use cdas_core::sampling::SamplingEstimator;
use cdas_core::sharing::AccuracyCache;
use cdas_core::types::{HitId, Label, QuestionId, Vote, WorkerId};
use cdas_core::verification::Verdict;
use cdas_core::Result;
use cdas_crowd::clock::SimClock;
use cdas_crowd::platform::{CancelReceipt, CrowdPlatform, WorkerAnswer};
use cdas_crowd::question::CrowdQuestion;
use serde::{Deserialize, Serialize};

use crate::engine::{
    AccuracySource, BatchTicket, CrowdsourcingEngine, EngineConfig, HitOutcome, QuestionVerdict,
    VerificationStrategy,
};

/// The outcome of one clocked batch: the ordinary [`HitOutcome`] plus the temporal facts
/// the end-of-time path cannot produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockedOutcome {
    /// The verdicts, registry and cost, exactly as [`HitOutcome`] reports them. The cost
    /// equals what the platform charged for the delivered answers — a cancelled HIT is
    /// genuinely cheaper here, not merely re-priced.
    pub outcome: HitOutcome,
    /// Simulated time the batch was published at.
    pub published_at: f64,
    /// Simulated time the batch finished: the mid-flight termination instant, or the last
    /// arrival when the batch ran to its natural makespan.
    pub completed_at: f64,
    /// Simulated time of the first final verdict on a *real* question (`None` when no real
    /// question received an accepted answer).
    pub first_verdict_at: Option<f64>,
    /// Whether the batch was cancelled mid-flight by early termination.
    pub cancelled: bool,
    /// Per-question answers actually delivered (and charged).
    pub answers_delivered: usize,
    /// Per-question answers cancelled before delivery (never charged).
    pub answers_cancelled: usize,
    /// Distinct workers whose submission was cut off by the cancellation.
    pub workers_cancelled: usize,
    /// Simulated worker-minutes reclaimed by the cancellation (zero without one).
    pub reclaimed_minutes: f64,
}

impl ClockedOutcome {
    /// Wall-clock latency of the batch, publication to completion, in simulated minutes.
    pub fn latency(&self) -> f64 {
        (self.completed_at - self.published_at).max(0.0)
    }
}

/// Incremental phase-2 state for one published batch.
///
/// Create with [`CrowdsourcingEngine::begin_clocked`], feed with
/// [`ingest`](Self::ingest) after every poll, and redeem with
/// [`finalize`](Self::finalize) once ingestion reports termination or the platform has no
/// arrivals left. The single-batch composition of those steps is
/// [`CrowdsourcingEngine::collect_batch_clocked`].
#[derive(Debug, Clone)]
pub struct ClockedCollector {
    config: EngineConfig,
    hit: HitId,
    questions: Vec<CrowdQuestion>,
    workers_assigned: usize,
    published_at: f64,
    gold_truth: BTreeMap<QuestionId, Label>,
    estimator: SamplingEstimator,
    /// The Laplace-smoothed registry over this batch's gold tallies, maintained
    /// incrementally (one `set` per arriving submission) so hot-path lookups never
    /// rebuild the whole estimator.
    local_registry: AccuracyRegistry,
    /// Dollars the platform charged for this batch's polls so far, reported by the
    /// caller via [`ClockedCollector::record_charge`].
    charged: f64,
    /// Per-question online processors, created at each question's first vote. Only
    /// populated for probabilistic verification with a termination strategy — the other
    /// strategies verify once at finalize.
    processors: BTreeMap<QuestionId, OnlineProcessor>,
    votes: BTreeMap<QuestionId, Vec<WorkerAnswer>>,
    answers_delivered: usize,
    first_verdict_at: Option<f64>,
    terminated_at: Option<f64>,
    seeded_shared: bool,
}

impl CrowdsourcingEngine {
    /// Begin clocked ingestion of a batch published at simulated time `published_at`.
    pub fn begin_clocked(&self, ticket: BatchTicket, published_at: f64) -> ClockedCollector {
        let BatchTicket {
            hit,
            questions,
            workers_assigned,
        } = ticket;
        let gold_truth = questions
            .iter()
            .filter(|q| q.is_gold)
            .map(|q| (q.id, q.ground_truth.clone()))
            .collect();
        ClockedCollector {
            config: self.config().clone(),
            hit,
            questions,
            workers_assigned,
            published_at,
            gold_truth,
            estimator: SamplingEstimator::new(),
            local_registry: AccuracyRegistry::new(),
            charged: 0.0,
            processors: BTreeMap::new(),
            votes: BTreeMap::new(),
            answers_delivered: 0,
            first_verdict_at: None,
            terminated_at: None,
            seeded_shared: false,
        }
    }

    /// Phase 2, clocked: ingest one batch by advancing `clock` from arrival event to
    /// arrival event, and cancel the HIT mid-flight as soon as every question's
    /// termination condition fires. The clock ends at the batch's completion time.
    ///
    /// On a platform without arrival look-ahead ([`CrowdPlatform::next_arrival`] returns
    /// `None`), this degrades to a single end-of-time poll — equivalent to
    /// [`collect_batch`](Self::collect_batch) with clocked bookkeeping.
    pub fn collect_batch_clocked<P: CrowdPlatform>(
        &self,
        platform: &mut P,
        ticket: BatchTicket,
        clock: &mut SimClock,
    ) -> Result<ClockedOutcome> {
        self.drive_clocked(platform, ticket, clock, None)
    }

    /// Clocked phase 2 with cross-job accuracy sharing: gold estimates are absorbed into
    /// the shared registry behind `cache` *as submissions arrive*, and votes are weighted
    /// with the fleet-wide estimates.
    pub fn collect_batch_clocked_cached<P: CrowdPlatform>(
        &self,
        platform: &mut P,
        ticket: BatchTicket,
        clock: &mut SimClock,
        cache: &AccuracyCache,
    ) -> Result<ClockedOutcome> {
        self.drive_clocked(platform, ticket, clock, Some(cache))
    }

    fn drive_clocked<P: CrowdPlatform>(
        &self,
        platform: &mut P,
        ticket: BatchTicket,
        clock: &mut SimClock,
        cache: Option<&AccuracyCache>,
    ) -> Result<ClockedOutcome> {
        let mut collector = self.begin_clocked(ticket, clock.now());
        loop {
            match platform
                .next_arrival(collector.hit())
                .filter(|t| t.is_finite())
            {
                None => {
                    // No look-ahead (foreign platform) or nothing further arrives: drain
                    // whatever the platform still holds and finalize at the last arrival.
                    let cost_before = platform.total_cost();
                    let answers = platform.poll(collector.hit(), f64::INFINITY);
                    collector.record_charge(platform.total_cost() - cost_before);
                    if let Some(last) = answers.last() {
                        clock.advance_to(last.arrived_at);
                    }
                    collector.ingest(&answers, clock.now(), cache)?;
                    return collector.finalize(clock.now(), None, cache);
                }
                Some(t) => {
                    clock.advance_to(t);
                    let cost_before = platform.total_cost();
                    let answers = platform.poll(collector.hit(), clock.now());
                    collector.record_charge(platform.total_cost() - cost_before);
                    if collector.ingest(&answers, clock.now(), cache)? {
                        let receipt = platform.cancel(collector.hit(), clock.now());
                        return collector.finalize(clock.now(), Some(receipt), cache);
                    }
                }
            }
        }
    }
}

impl ClockedCollector {
    /// The platform HIT this collector ingests.
    pub fn hit(&self) -> HitId {
        self.hit
    }

    /// Simulated time the batch was published at.
    pub fn published_at(&self) -> f64 {
        self.published_at
    }

    /// Per-question answers delivered (and charged) so far.
    pub fn answers_delivered(&self) -> usize {
        self.answers_delivered
    }

    /// Whether every question's termination condition has fired.
    pub fn is_terminated(&self) -> bool {
        self.terminated_at.is_some()
    }

    /// Record what the platform charged for one of this batch's polls: snapshot
    /// `platform.total_cost()` around the poll and pass the difference. This is what
    /// makes `HitOutcome::cost` equal the platform ledger *by construction*, whatever
    /// cost model the platform uses — the engine never re-prices.
    /// [`CrowdsourcingEngine::collect_batch_clocked`] and the clocked scheduler do this
    /// for you; only direct `ingest` users need to call it.
    pub fn record_charge(&mut self, amount: f64) {
        if amount.is_finite() && amount > 0.0 {
            self.charged += amount;
        }
    }

    /// Whether the online path (probabilistic verification with a termination strategy)
    /// is active; other configurations ingest incrementally but verify at finalize.
    fn online(&self) -> bool {
        self.config.verification == VerificationStrategy::Probabilistic
            && self.config.termination.is_some()
    }

    /// Feed the answers of one poll, stamped with the poll time `now`.
    ///
    /// Returns whether the whole batch has terminated — the caller should then cancel the
    /// HIT on the platform and [`finalize`](Self::finalize). Answers are processed one
    /// worker submission at a time: the submission's gold answers are scored first, so the
    /// worker's own vote weight already reflects their gold score.
    pub fn ingest(
        &mut self,
        answers: &[WorkerAnswer],
        now: f64,
        cache: Option<&AccuracyCache>,
    ) -> Result<bool> {
        if let Some(cache) = cache {
            if !self.seeded_shared {
                // A configured registry (simulation oracle, prior deployment) seeds the
                // fleet registry as injected estimates, exactly like the legacy cached
                // path; gold-sampled estimates always outrank them.
                if let AccuracySource::Registry(r) = &self.config.accuracy_source {
                    cache.shared().absorb(r);
                }
                self.seeded_shared = true;
            }
        }
        for submission in group_by_worker(answers) {
            self.ingest_submission(&submission, now, cache)?;
        }
        if self.terminated_at.is_none() && self.online() && self.all_questions_terminated() {
            self.terminated_at = Some(now);
        }
        Ok(self.is_terminated())
    }

    /// One worker's complete submission (workers answer every question of the batch at
    /// their single completion time).
    fn ingest_submission(
        &mut self,
        submission: &[WorkerAnswer],
        now: f64,
        cache: Option<&AccuracyCache>,
    ) -> Result<()> {
        let Some(worker) = submission.first().map(|a| a.worker) else {
            return Ok(());
        };
        // Algorithm 4, incrementally: score this submission's gold answers...
        for answer in submission {
            if let Some(truth) = self.gold_truth.get(&answer.question) {
                self.estimator
                    .record(answer.worker, answer.question, &answer.label, truth);
            }
        }
        // ...fold the refreshed estimate into the batch-local registry, and share exactly
        // this worker's estimate with the fleet before weighting their votes. Each worker
        // submits once per batch, so the shared registry absorbs one sampled estimate per
        // (worker, batch) — same pooling semantics as the legacy once-per-batch absorb.
        // (Absorbing the whole local registry here would re-pool every earlier worker's
        // samples on every submission and inflate their weight fleet-wide.)
        if let Some(tally) = self.estimator.tally(worker) {
            if let Some(smoothed) = tally.smoothed_accuracy() {
                self.local_registry.set(worker, smoothed, tally.total);
                if let Some(cache) = cache {
                    cache.shared().record(worker, smoothed, tally.total);
                }
            }
        }
        let accuracy = self.accuracy_for(worker, cache);

        let online = self.online();
        let mean = if online {
            self.running_mean(cache)
        } else {
            0.0
        };
        for answer in submission {
            self.answers_delivered += 1;
            self.votes
                .entry(answer.question)
                .or_default()
                .push(answer.clone());
            if !online {
                continue;
            }
            let processor = match self.processors.get_mut(&answer.question) {
                Some(p) => p,
                None => {
                    // `online` is true only when a termination strategy is
                    // configured; if that invariant ever breaks, skip online
                    // processing for the answer instead of panicking the run.
                    let Some(strategy) = self.config.termination else {
                        continue;
                    };
                    let domain = self.config.domain_size.unwrap_or_else(|| {
                        self.questions
                            .iter()
                            .find(|q| q.id == answer.question)
                            .map(|q| q.domain.size())
                            .unwrap_or(2)
                    });
                    let p = OnlineProcessor::new(self.workers_assigned, mean, strategy)?
                        .with_domain_size(domain);
                    self.processors.entry(answer.question).or_insert(p)
                }
            };
            if processor.is_terminated() {
                // This question already has its verdict; later answers for it were only
                // delivered because *other* questions kept the HIT alive.
                continue;
            }
            let vote = Vote::new(worker, answer.label.clone(), accuracy)
                .with_keywords(answer.keywords.iter().cloned());
            let outcome = processor.consume(vote)?;
            if outcome.terminated
                && self.first_verdict_at.is_none()
                && !self.gold_truth.contains_key(&answer.question)
            {
                self.first_verdict_at = Some(now);
            }
        }
        Ok(())
    }

    /// Whether every question of the batch has a terminated processor.
    fn all_questions_terminated(&self) -> bool {
        self.questions.iter().all(|q| {
            self.processors
                .get(&q.id)
                .map(|p| p.is_terminated())
                .unwrap_or(false)
        })
    }

    /// The accuracy this worker's votes are weighted with *right now*: the fleet estimate
    /// when sharing, the local gold estimate (Laplace-smoothed) otherwise, the configured
    /// registry when sampling is disabled — falling back to the configured default.
    fn accuracy_for(&self, worker: WorkerId, cache: Option<&AccuracyCache>) -> f64 {
        let estimate = match (cache, &self.config.accuracy_source) {
            (Some(cache), _) => cache.accuracy_of(worker),
            (None, AccuracySource::Registry(r)) => r.accuracy_of(worker),
            (None, AccuracySource::GoldSampling) => self.local_registry.accuracy_of(worker),
        };
        estimate.unwrap_or(self.config.default_worker_accuracy)
    }

    /// The population-mean accuracy assumed for not-yet-seen workers when a processor is
    /// created (smoothed, so one perfect or hopeless early gold score cannot push the
    /// termination bounds to an extreme).
    fn running_mean(&self, cache: Option<&AccuracyCache>) -> f64 {
        self.local_registry
            .mean_accuracy()
            .or_else(|| match &self.config.accuracy_source {
                AccuracySource::Registry(r) => r.mean_accuracy(),
                AccuracySource::GoldSampling => None,
            })
            .or_else(|| cache.and_then(|c| c.shared().mean_accuracy()))
            .unwrap_or(self.config.default_worker_accuracy)
    }

    /// Redeem the collector into a [`ClockedOutcome`] at simulated time `completed_at`,
    /// with the platform's [`CancelReceipt`] when the batch was cancelled mid-flight.
    pub fn finalize(
        self,
        completed_at: f64,
        cancel: Option<CancelReceipt>,
        cache: Option<&AccuracyCache>,
    ) -> Result<ClockedOutcome> {
        let (registry, estimated_mean) = self.final_registry(cache);
        let online = self.online();
        let engine = CrowdsourcingEngine::new(self.config.clone());

        let mut verdicts = Vec::with_capacity(self.questions.len());
        let mut any_real_accepted = false;
        for question in &self.questions {
            let votes = self.votes.get(&question.id).cloned().unwrap_or_default();
            let (verdict, answers_used, reasons) = if online {
                self.online_verdict(question, &votes)?
            } else {
                let refs: Vec<&WorkerAnswer> = votes.iter().collect();
                engine.verify_question(
                    question,
                    &refs,
                    self.workers_assigned,
                    &registry,
                    estimated_mean,
                )?
            };
            if !question.is_gold && verdict.is_accepted() {
                any_real_accepted = true;
            }
            verdicts.push(QuestionVerdict {
                question: question.id,
                verdict,
                answers_used,
                is_gold: question.is_gold,
                reasons,
            });
        }

        // The engine-side price of a clocked batch is exactly what the platform charged
        // for its polls (accumulated via `record_charge`), never a re-pricing — so the
        // accounting agrees with `platform.total_cost()` even when the engine's own cost
        // model differs from the platform's.
        let cost = self.charged;

        let receipt = cancel.unwrap_or_default();
        let first_verdict_at = self
            .first_verdict_at
            .or_else(|| any_real_accepted.then_some(completed_at));
        Ok(ClockedOutcome {
            outcome: HitOutcome {
                hit: self.hit,
                verdicts,
                workers_assigned: self.workers_assigned,
                estimated_mean_accuracy: estimated_mean,
                registry,
                cost,
            },
            published_at: self.published_at,
            completed_at: completed_at.max(self.published_at),
            first_verdict_at,
            cancelled: receipt.cancelled_anything(),
            answers_delivered: self.answers_delivered,
            answers_cancelled: receipt.answers_cancelled,
            workers_cancelled: receipt.workers_cancelled,
            reclaimed_minutes: receipt.reclaimed_minutes,
        })
    }

    /// The verdict of one question under the online path: the processor's final ranking,
    /// consumed up to its termination point.
    fn online_verdict(
        &self,
        question: &CrowdQuestion,
        votes: &[WorkerAnswer],
    ) -> Result<(Verdict, usize, Vec<String>)> {
        let Some(processor) = self.processors.get(&question.id) else {
            return Ok((Verdict::NoAnswer, 0, Vec::new()));
        };
        let outcome = processor.current()?;
        let answers_used = processor
            .terminated_at()
            .unwrap_or_else(|| processor.answers_received());
        let verdict = match outcome.best {
            Some((label, confidence)) => Verdict::Accepted { label, confidence },
            None => Verdict::NoAnswer,
        };
        let reasons = match verdict.label() {
            Some(accepted) => votes
                .iter()
                .take(answers_used)
                .filter(|a| &a.label == accepted)
                .flat_map(|a| a.keywords.iter().cloned())
                .collect(),
            None => Vec::new(),
        };
        Ok((verdict, answers_used, reasons))
    }

    /// The registry and mean estimate verification runs with, mirroring the legacy
    /// phase-2 sources (fleet snapshot, configured registry, or local gold estimates).
    fn final_registry(&self, cache: Option<&AccuracyCache>) -> (AccuracyRegistry, Option<f64>) {
        let local_mean = self.estimator.stats().ok().map(|s| s.mean);
        match (cache, &self.config.accuracy_source) {
            (Some(cache), _) => {
                let registry = cache
                    .snapshot()
                    .with_default_accuracy(self.config.default_worker_accuracy);
                let mean = local_mean.or_else(|| registry.mean_accuracy());
                (registry, mean)
            }
            (None, AccuracySource::Registry(r)) => {
                let mean = r.mean_accuracy();
                (
                    r.clone()
                        .with_default_accuracy(self.config.default_worker_accuracy),
                    mean,
                )
            }
            (None, AccuracySource::GoldSampling) => (
                self.local_registry
                    .clone()
                    .with_default_accuracy(self.config.default_worker_accuracy),
                local_mean,
            ),
        }
    }
}

/// Split a poll's answers into per-worker submissions, preserving arrival order. A worker
/// submits all their answers at one completion time, so submissions are contiguous runs;
/// the fold tolerates interleavings anyway by appending to an existing run.
fn group_by_worker(answers: &[WorkerAnswer]) -> Vec<Vec<WorkerAnswer>> {
    let mut groups: Vec<Vec<WorkerAnswer>> = Vec::new();
    let mut index: BTreeMap<WorkerId, usize> = BTreeMap::new();
    for answer in answers {
        match index.get(&answer.worker).and_then(|&i| groups.get_mut(i)) {
            Some(group) => group.push(answer.clone()),
            None => {
                index.insert(answer.worker, groups.len());
                groups.push(vec![answer.clone()]);
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkerCountPolicy;
    use cdas_core::economics::CostModel;
    use cdas_core::online::TerminationStrategy;
    use cdas_core::types::AnswerDomain;
    use cdas_crowd::arrival::LatencyModel;
    use cdas_crowd::pool::{PoolConfig, WorkerPool};
    use cdas_crowd::SimulatedPlatform;

    fn question(id: u64, gold: bool) -> CrowdQuestion {
        let q = CrowdQuestion::new(
            QuestionId(id),
            AnswerDomain::from_strs(&["Positive", "Neutral", "Negative"]),
            Label::from("Positive"),
        );
        if gold {
            q.as_gold()
        } else {
            q
        }
    }

    fn batch(real: u64, gold: u64) -> Vec<CrowdQuestion> {
        let mut qs: Vec<CrowdQuestion> = (0..gold).map(|i| question(i, true)).collect();
        qs.extend((gold..gold + real).map(|i| question(i, false)));
        qs
    }

    fn platform(accuracy: f64, seed: u64) -> SimulatedPlatform {
        let pool = WorkerPool::generate(&PoolConfig {
            latency: LatencyModel::Exponential { mean: 5.0 },
            ..PoolConfig::clean(60, accuracy, seed)
        });
        SimulatedPlatform::new(pool, CostModel::default(), seed)
    }

    fn engine(termination: Option<TerminationStrategy>) -> CrowdsourcingEngine {
        CrowdsourcingEngine::new(EngineConfig {
            workers: WorkerCountPolicy::Fixed(9),
            verification: VerificationStrategy::Probabilistic,
            termination,
            domain_size: Some(3),
            ..EngineConfig::default()
        })
    }

    #[test]
    fn clocked_collection_without_termination_matches_end_of_time_verdicts() {
        // Same platform seed, same batch: the clocked path must reproduce the offline
        // verdicts exactly when no termination strategy is configured.
        let e = engine(None);
        let mut p = platform(0.8, 5);
        let ticket = e.publish_batch(&mut p, batch(10, 3)).unwrap();
        let legacy = e.collect_batch(&mut p, ticket).unwrap();

        let mut p = platform(0.8, 5);
        let mut clock = SimClock::new();
        let ticket = e.publish_batch(&mut p, batch(10, 3)).unwrap();
        let clocked = e.collect_batch_clocked(&mut p, ticket, &mut clock).unwrap();

        // Cost is the platform-ledger delta in both paths; the clocked path accumulates
        // it per poll, so allow float-summation noise before comparing the rest exactly.
        assert!((clocked.outcome.cost - legacy.cost).abs() < 1e-12);
        let mut normalized = clocked.outcome.clone();
        normalized.cost = legacy.cost;
        assert_eq!(normalized, legacy, "offline verdicts must be identical");
        assert!(!clocked.cancelled);
        assert_eq!(clocked.answers_cancelled, 0);
        assert_eq!(clocked.reclaimed_minutes, 0.0);
        assert!(clocked.completed_at > 0.0, "time passed");
        assert_eq!(
            clock.now(),
            clocked.completed_at,
            "the clock ends at the batch's makespan"
        );
        assert_eq!(clocked.first_verdict_at, Some(clocked.completed_at));
    }

    #[test]
    fn clocked_termination_cancels_mid_flight_and_saves_money_and_minutes() {
        let online = engine(Some(TerminationStrategy::ExpMax));
        let offline = engine(None);

        let mut p_off = platform(0.9, 11);
        let ticket = offline.publish_batch(&mut p_off, batch(8, 4)).unwrap();
        let mut clock_off = SimClock::new();
        let baseline = offline
            .collect_batch_clocked(&mut p_off, ticket, &mut clock_off)
            .unwrap();

        let mut p_on = platform(0.9, 11);
        let ticket = online.publish_batch(&mut p_on, batch(8, 4)).unwrap();
        let mut clock_on = SimClock::new();
        let early = online
            .collect_batch_clocked(&mut p_on, ticket, &mut clock_on)
            .unwrap();

        assert!(early.cancelled, "a 0.9-accuracy crowd terminates early");
        assert!(early.answers_cancelled > 0);
        assert!(early.reclaimed_minutes > 0.0, "minutes were reclaimed");
        assert!(
            early.completed_at < baseline.completed_at,
            "termination finished at {} but the full batch ran to {}",
            early.completed_at,
            baseline.completed_at
        );
        assert!(early.outcome.cost < baseline.outcome.cost, "real savings");
        assert!(
            (early.outcome.cost - p_on.total_cost()).abs() < 1e-9,
            "engine cost equals platform cost under termination"
        );
        assert!(early.first_verdict_at.unwrap() <= early.completed_at);
        // Quality holds: most real questions still answered correctly.
        let correct = early
            .outcome
            .real_verdicts()
            .filter(|v| v.verdict.label().map(|l| l.as_str()) == Some("Positive"))
            .count();
        assert!(correct >= 6, "only {correct}/8 correct after termination");
    }

    #[test]
    fn clocked_cost_tracks_the_platform_ledger_not_the_engine_cost_model() {
        // The engine keeps its default cost model while the platform charges 5x. The
        // outcome must report what the platform ledger charged — the engine never
        // re-prices — so the accounting invariant holds even when the two models diverge.
        let e = engine(Some(TerminationStrategy::ExpMax));
        let pool = WorkerPool::generate(&PoolConfig {
            latency: LatencyModel::Exponential { mean: 5.0 },
            ..PoolConfig::clean(60, 0.9, 13)
        });
        let mut p = SimulatedPlatform::new(pool, CostModel::new(0.05, 0.0).unwrap(), 13);
        let mut clock = SimClock::new();
        let ticket = e.publish_batch(&mut p, batch(6, 2)).unwrap();
        let out = e.collect_batch_clocked(&mut p, ticket, &mut clock).unwrap();
        assert!(out.outcome.cost > 0.0);
        assert!(
            (out.outcome.cost - p.total_cost()).abs() < 1e-12,
            "engine reported {} but the platform charged {}",
            out.outcome.cost,
            p.total_cost()
        );
    }

    #[test]
    fn per_submission_sharing_does_not_inflate_sample_counts() {
        use cdas_core::sharing::SharedAccuracyRegistry;

        // Each worker answers the batch's gold questions exactly once; the shared
        // registry must record their estimate backed by exactly that many samples.
        // (Absorbing the whole local registry per submission used to re-pool every
        // earlier worker's samples on every arrival, inflating their fleet-wide weight.)
        let e = engine(None);
        let mut p = platform(0.8, 47);
        let cache = AccuracyCache::new(SharedAccuracyRegistry::new());
        let mut clock = SimClock::new();
        let gold = 4;
        let ticket = e.publish_batch(&mut p, batch(6, gold)).unwrap();
        e.collect_batch_clocked_cached(&mut p, ticket, &mut clock, &cache)
            .unwrap();
        let snapshot = cache.shared().snapshot();
        assert!(!snapshot.is_empty());
        assert!(
            snapshot.iter().all(|(_, e)| e.samples == gold as usize),
            "sample counts must equal the gold questions each worker answered"
        );
    }

    #[test]
    fn clocked_collection_is_deterministic() {
        let run = || {
            let e = engine(Some(TerminationStrategy::ExpMax));
            let mut p = platform(0.85, 23);
            let mut clock = SimClock::new();
            let ticket = e.publish_batch(&mut p, batch(6, 2)).unwrap();
            e.collect_batch_clocked(&mut p, ticket, &mut clock).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clocked_cached_collection_shares_estimates_mid_flight() {
        use cdas_core::sharing::SharedAccuracyRegistry;

        let e = engine(None);
        let mut p = platform(0.8, 31);
        let cache = AccuracyCache::new(SharedAccuracyRegistry::new());
        let mut clock = SimClock::new();
        let ticket = e.publish_batch(&mut p, batch(6, 3)).unwrap();
        let out = e
            .collect_batch_clocked_cached(&mut p, ticket, &mut clock, &cache)
            .unwrap();
        assert!(
            !cache.shared().is_empty(),
            "gold estimates reached the fleet registry during ingestion"
        );
        assert!(out.outcome.estimated_mean_accuracy.is_some());
        // A second, gold-free batch verifies entirely with estimates learned by the first.
        let ticket = e.publish_batch(&mut p, batch(6, 0)).unwrap();
        let out = e
            .collect_batch_clocked_cached(&mut p, ticket, &mut clock, &cache)
            .unwrap();
        assert!(!out.outcome.registry.is_empty());
        assert!(out.outcome.registry.iter().all(|(_, e)| e.samples > 0));
    }

    #[test]
    fn group_by_worker_preserves_order_and_merges_runs() {
        let mk = |w: u64, q: u64| WorkerAnswer {
            hit: HitId(0),
            worker: WorkerId(w),
            question: QuestionId(q),
            label: Label::from("a"),
            keywords: Vec::new(),
            arrived_at: w as f64,
            approval_rate: 1.0,
        };
        let groups = group_by_worker(&[mk(1, 0), mk(1, 1), mk(2, 0), mk(1, 2), mk(2, 1)]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 3, "worker 1's answers merge into one run");
        assert_eq!(groups[1].len(), 2);
        assert!(group_by_worker(&[]).is_empty());
    }
}
