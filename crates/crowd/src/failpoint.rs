//! Fault injection for crash-recovery testing.
//!
//! A [`FailpointPlatform`] wraps any [`CrowdPlatform`] and panics after a configured
//! number of polls, simulating a process (or shard thread) dying mid-run. Combined with
//! the journal's byte-level write kill ([`fail_writes_after`]) and the tail
//! truncation/corruption helpers, this is the harness the durability proptests use to
//! assert that `Fleet::recover` + resume is indistinguishable from a run that never
//! crashed.
//!
//! The panic deliberately fires *inside* `poll` — the instant a real crash is most
//! harmful: after HITs were published (money committed) but before their outcomes were
//! committed to the journal.
//!
//! [`fail_writes_after`]: https://en.wikipedia.org/wiki/Fault_injection

use cdas_core::types::{HitId, WorkerId};

use crate::hit::HitRequest;
use crate::platform::{CancelReceipt, CrowdPlatform, WorkerAnswer};

/// The panic message an armed failpoint aborts with; tests match on it to distinguish
/// injected crashes from genuine bugs.
pub const FAILPOINT_PANIC: &str = "failpoint: injected platform crash";

/// When (if ever) a [`FailpointPlatform`] kills its thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Failpoint {
    after_polls: Option<u64>,
}

impl Failpoint {
    /// A failpoint that never fires (the wrapper becomes a transparent pass-through).
    pub fn never() -> Self {
        Failpoint { after_polls: None }
    }

    /// Panic on the `n + 1`-th poll — i.e. allow `n` polls to complete, then die at the
    /// next one. `after_polls(0)` dies on the very first poll.
    pub fn after_polls(n: u64) -> Self {
        Failpoint {
            after_polls: Some(n),
        }
    }

    /// Whether this failpoint can ever fire.
    pub fn is_armed(&self) -> bool {
        self.after_polls.is_some()
    }

    /// The number of polls the failpoint lets through, if armed.
    pub fn polls_allowed(&self) -> Option<u64> {
        self.after_polls
    }
}

/// A [`CrowdPlatform`] decorator that injects a crash (panic) after a configured number
/// of polls, leaving every already-published HIT in flight — exactly the state a
/// kill -9 leaves a real fleet in.
#[derive(Debug)]
pub struct FailpointPlatform<P> {
    inner: P,
    failpoint: Failpoint,
    polls: u64,
}

impl<P> FailpointPlatform<P> {
    /// Wrap `inner` with the given failpoint.
    pub fn new(inner: P, failpoint: Failpoint) -> Self {
        FailpointPlatform {
            inner,
            failpoint,
            polls: 0,
        }
    }

    /// The number of polls served so far.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// The wrapped platform.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwrap back into the inner platform.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: CrowdPlatform> CrowdPlatform for FailpointPlatform<P> {
    fn publish(&mut self, request: HitRequest) -> HitId {
        self.inner.publish(request)
    }

    fn publish_to(&mut self, request: HitRequest, workers: &[WorkerId]) -> HitId {
        self.inner.publish_to(request, workers)
    }

    fn advance_time(&mut self, now: f64) {
        self.inner.advance_time(now);
    }

    fn poll(&mut self, hit: HitId, now: f64) -> Vec<WorkerAnswer> {
        if let Some(allowed) = self.failpoint.polls_allowed() {
            if self.polls >= allowed {
                // cdas-allow(panic_freedom): panicking on cue is this harness's entire purpose
                panic!("{FAILPOINT_PANIC}");
            }
        }
        self.polls += 1;
        self.inner.poll(hit, now)
    }

    fn next_arrival(&self, hit: HitId) -> Option<f64> {
        self.inner.next_arrival(hit)
    }

    fn cancel(&mut self, hit: HitId, now: f64) -> CancelReceipt {
        self.inner.cancel(hit, now)
    }

    fn total_cost(&self) -> f64 {
        self.inner.total_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_core::economics::CostModel;
    use cdas_core::types::{AnswerDomain, Label, QuestionId};

    use crate::platform::SimulatedPlatform;
    use crate::pool::{PoolConfig, WorkerPool};
    use crate::question::CrowdQuestion;

    fn platform() -> SimulatedPlatform {
        let pool = WorkerPool::generate(&PoolConfig {
            size: 4,
            ..PoolConfig::default()
        });
        SimulatedPlatform::new(pool, CostModel::default(), 7)
    }

    fn request() -> HitRequest {
        let domain = AnswerDomain::from_strs(&["a", "b"]);
        let question = CrowdQuestion {
            id: QuestionId(0),
            domain: domain.clone(),
            ground_truth: Label::new("a"),
            difficulty: 0.0,
            is_gold: false,
            reason_keywords: Vec::new(),
        };
        HitRequest::new(vec![question], 2, 0.01)
    }

    #[test]
    fn unarmed_failpoint_is_transparent() {
        let mut wrapped = FailpointPlatform::new(platform(), Failpoint::never());
        let hit = wrapped.publish(request());
        let answers = wrapped.poll(hit, f64::INFINITY);
        assert_eq!(answers.len(), 2);
        assert_eq!(wrapped.polls(), 1);
        assert!(wrapped.total_cost() > 0.0);
    }

    #[test]
    fn armed_failpoint_kills_the_configured_poll() {
        let mut wrapped = FailpointPlatform::new(platform(), Failpoint::after_polls(1));
        let hit = wrapped.publish(request());
        let _ = wrapped.poll(hit, f64::INFINITY);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wrapped.poll(hit, f64::INFINITY)
        }));
        let payload = result.expect_err("second poll dies");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(message, FAILPOINT_PANIC);
    }

    #[test]
    fn after_polls_zero_dies_immediately() {
        let mut wrapped = FailpointPlatform::new(platform(), Failpoint::after_polls(0));
        let hit = wrapped.publish(request());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wrapped.poll(hit, 0.0)
        }))
        .is_err());
    }
}
