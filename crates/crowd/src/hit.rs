//! HITs (Human Intelligence Tasks) as the platform sees them.
//!
//! A HIT bundles a batch of questions (in TSA: `B` tweets about one movie, `αB` of which
//! are gold samples) and asks for `n` assignments, i.e. `n` distinct workers each answering
//! every question in the batch.

use cdas_core::sampling::SamplingPlan;
use cdas_core::types::HitId;
use serde::{Deserialize, Serialize};

use crate::question::CrowdQuestion;

/// A request to publish a HIT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HitRequest {
    /// The questions in the batch, in presentation order.
    pub questions: Vec<CrowdQuestion>,
    /// Number of workers (assignments) requested, the `n` from the prediction model.
    pub assignments: usize,
    /// Reward per assignment in dollars (the `m_c` of the economic model).
    pub reward: f64,
}

impl HitRequest {
    /// Build a request.
    pub fn new(questions: Vec<CrowdQuestion>, assignments: usize, reward: f64) -> Self {
        HitRequest {
            questions,
            assignments,
            reward,
        }
    }

    /// Number of questions in the batch (`B`).
    pub fn batch_size(&self) -> usize {
        self.questions.len()
    }

    /// Number of gold questions in the batch (`αB`).
    pub fn gold_count(&self) -> usize {
        self.questions.iter().filter(|q| q.is_gold).count()
    }

    /// Whether the gold questions in this batch agree with a sampling plan's positions.
    pub fn matches_plan(&self, plan: &SamplingPlan) -> bool {
        if self.questions.len() != plan.batch_size() {
            return false;
        }
        self.questions
            .iter()
            .enumerate()
            .all(|(i, q)| q.is_gold == plan.is_gold(i))
    }
}

/// A HIT accepted by the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedHit {
    /// The platform-assigned identifier.
    pub id: HitId,
    /// The original request.
    pub request: HitRequest,
    /// Simulated wall-clock time at which the HIT was published.
    pub published_at: f64,
}

impl PublishedHit {
    /// Total number of answers the platform will eventually deliver if the HIT is not
    /// cancelled: one answer per question per assignment.
    pub fn expected_answers(&self) -> usize {
        self.request.assignments * self.request.questions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_core::types::{AnswerDomain, Label, QuestionId};

    fn question(i: u64, gold: bool) -> CrowdQuestion {
        let q = CrowdQuestion::new(
            QuestionId(i),
            AnswerDomain::from_strs(&["a", "b"]),
            Label::from("a"),
        );
        if gold {
            q.as_gold()
        } else {
            q
        }
    }

    #[test]
    fn request_counts_gold_questions() {
        let request = HitRequest::new(
            vec![question(0, true), question(1, false), question(2, false)],
            5,
            0.01,
        );
        assert_eq!(request.batch_size(), 3);
        assert_eq!(request.gold_count(), 1);
    }

    #[test]
    fn request_matches_sampling_plan() {
        let plan = SamplingPlan::new(10, 0.2).unwrap();
        let questions: Vec<CrowdQuestion> = (0..10)
            .map(|i| question(i as u64, plan.is_gold(i)))
            .collect();
        let request = HitRequest::new(questions, 3, 0.01);
        assert!(request.matches_plan(&plan));
        // Wrong batch size does not match.
        let short = HitRequest::new(vec![question(0, true)], 3, 0.01);
        assert!(!short.matches_plan(&plan));
    }

    #[test]
    fn published_hit_expected_answers() {
        let hit = PublishedHit {
            id: HitId(1),
            request: HitRequest::new(vec![question(0, false), question(1, false)], 7, 0.01),
            published_at: 0.0,
        };
        assert_eq!(hit.expected_answers(), 14);
    }
}
