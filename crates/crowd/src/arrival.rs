//! Asynchronous answer arrival (§4.2: "workers finish their jobs asynchronously").
//!
//! Each worker's completion time is drawn from a latency model; sorting the completion
//! times yields the *arrival sequence* in which the online processor consumes answers.
//! Figure 11 of the paper shows that the quality of the approximate result depends heavily
//! on this sequence, which is why the simulator exposes it explicitly.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of the time a worker takes to return a HIT, in simulated minutes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Always exactly this long.
    Constant(f64),
    /// Uniform between the two bounds.
    Uniform {
        /// Minimum latency.
        lo: f64,
        /// Maximum latency.
        hi: f64,
    },
    /// Exponential with the given mean (memoryless worker arrivals, the default).
    Exponential {
        /// Mean latency.
        mean: f64,
    },
    /// Log-normal with the given location and scale of the underlying normal; models the
    /// heavy tail of workers who pick up a HIT much later.
    LogNormal {
        /// Location parameter μ of the underlying normal.
        mu: f64,
        /// Scale parameter σ of the underlying normal.
        sigma: f64,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Exponential { mean: 5.0 }
    }
}

impl LatencyModel {
    /// Sample one latency (always strictly positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = match self {
            LatencyModel::Constant(v) => *v,
            LatencyModel::Uniform { lo, hi } => {
                if (hi - lo).abs() < f64::EPSILON {
                    *lo
                } else {
                    rng.random_range(*lo..*hi)
                }
            }
            LatencyModel::Exponential { mean } => {
                let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                -mean * u.ln()
            }
            LatencyModel::LogNormal { mu, sigma } => {
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mu + sigma * z).exp()
            }
        };
        v.max(1e-6)
    }
}

/// An arrival schedule: which worker (by index into the assignment) finishes at what time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSchedule {
    /// `(worker_index, completion_time)` sorted by completion time.
    entries: Vec<(usize, f64)>,
}

impl ArrivalSchedule {
    /// Build a schedule from per-worker completion times. `total_cmp` keeps the sort total
    /// even for NaN times (which order last), so a degenerate latency model cannot panic
    /// the arrival path.
    pub fn from_times(times: Vec<f64>) -> Self {
        let mut entries: Vec<(usize, f64)> = times.into_iter().enumerate().collect();
        entries.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        ArrivalSchedule { entries }
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(worker_index, completion_time)` in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The arrival order as worker indices.
    pub fn order(&self) -> Vec<usize> {
        self.entries.iter().map(|(i, _)| *i).collect()
    }

    /// Completion time of the last arrival (the HIT's makespan).
    pub fn makespan(&self) -> f64 {
        self.entries.last().map(|(_, t)| *t).unwrap_or(0.0)
    }

    /// The arrivals that have happened by time `t`.
    pub fn arrived_by(&self, t: f64) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.entries
            .iter()
            .copied()
            .take_while(move |(_, at)| *at <= t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        let models = [
            LatencyModel::Constant(2.0),
            LatencyModel::Uniform { lo: 1.0, hi: 4.0 },
            LatencyModel::Exponential { mean: 3.0 },
            LatencyModel::LogNormal {
                mu: 1.0,
                sigma: 0.5,
            },
        ];
        for m in models {
            for _ in 0..1000 {
                assert!(m.sample(&mut rng) > 0.0);
            }
        }
    }

    #[test]
    fn exponential_mean_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LatencyModel::Exponential { mean: 5.0 };
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| m.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn schedule_sorts_by_completion_time() {
        let schedule = ArrivalSchedule::from_times(vec![5.0, 1.0, 3.0]);
        assert_eq!(schedule.order(), vec![1, 2, 0]);
        assert_eq!(schedule.len(), 3);
        assert!(!schedule.is_empty());
        assert_eq!(schedule.makespan(), 5.0);
        let early: Vec<usize> = schedule.arrived_by(3.5).map(|(i, _)| i).collect();
        assert_eq!(early, vec![1, 2]);
        let times: Vec<f64> = schedule.iter().map(|(_, t)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn nan_times_sort_last_instead_of_panicking() {
        let schedule = ArrivalSchedule::from_times(vec![2.0, f64::NAN, 1.0]);
        assert_eq!(schedule.order(), vec![2, 0, 1]);
        let finite: Vec<usize> = schedule.arrived_by(10.0).map(|(i, _)| i).collect();
        assert_eq!(finite, vec![2, 0], "a NaN arrival never 'arrives'");
    }

    #[test]
    fn empty_schedule() {
        let schedule = ArrivalSchedule::from_times(vec![]);
        assert!(schedule.is_empty());
        assert_eq!(schedule.makespan(), 0.0);
        assert_eq!(schedule.order(), Vec::<usize>::new());
    }
}
