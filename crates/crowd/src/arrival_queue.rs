//! The arrival priority queue at the heart of the event-heap scheduler core.
//!
//! The clocked scheduler used to discover "what happens next" by scanning every
//! in-flight HIT per tick and folding their [`CrowdPlatform::next_arrival`] look-aheads
//! into a minimum — O(inflight) work per arrival event. [`ArrivalQueue`] replaces that
//! scan with a binary min-heap keyed by arrival time, so each event costs O(log n):
//!
//! ```text
//!               arm(hit, at)                     pop() / next_time()
//!                    │                                   ▲
//!                    ▼                                   │ skims stale entries
//!            ┌───────────────┐  lazily deleted   ┌───────┴───────┐
//!            │ live map      │  entries stay in  │ binary heap   │
//!            │ HitId -> at   │─────────────────▶ │ (at, HitId)   │
//!            └───────────────┘  the heap until   └───────────────┘
//!                    ▲          they surface
//!                    │
//!               cancel(hit)   — removes from the live map only
//! ```
//!
//! **Lazy deletion.** A binary heap cannot remove an interior entry cheaply, so
//! [`cancel`](ArrivalQueue::cancel) and re-[`arm`](ArrivalQueue::arm) never touch the
//! heap: they only update the `live` side map. Heap entries that no longer match the
//! live map are *stale* and are discarded when they reach the top. This is what lets a
//! mid-flight [`CrowdPlatform::cancel`] drop a HIT from the event stream in O(log n)
//! without ever firing a ghost arrival for it.
//!
//! **Deterministic tie-break.** Simultaneous arrivals (exactly equal `f64` times) pop
//! in ascending [`HitId`] order, so two schedulers fed the same timeline process ties
//! identically — a requirement for the bit-identical differential suite in
//! `tests/event_heap_equivalence.rs`.
//!
//! [`CrowdPlatform::next_arrival`]: crate::platform::CrowdPlatform::next_arrival
//! [`CrowdPlatform::cancel`]: crate::platform::CrowdPlatform::cancel

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use cdas_core::types::HitId;

/// One scheduled arrival: HIT `hit` has an answer landing at simulated minute `at`.
///
/// Ordered so that a *max*-heap of entries pops the **earliest** time first, breaking
/// exact ties by ascending [`HitId`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    at: f64,
    hit: HitId,
}

// `at` is guaranteed finite by `ArrivalQueue::arm`, so equality is total in practice.
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on both keys: `BinaryHeap` is a max-heap, and we want the earliest
        // time (then the smallest HIT id) on top.
        other
            .at
            .total_cmp(&self.at)
            .then_with(|| other.hit.cmp(&self.hit))
    }
}

/// A min-heap of upcoming answer arrivals with O(log n) lazy deletion.
///
/// See the [module docs](self) for the design. The queue tracks **at most one** arrival
/// per HIT — re-arming replaces the previous entry, mirroring how
/// [`CrowdPlatform::next_arrival`](crate::platform::CrowdPlatform::next_arrival)
/// exposes only the *next* pending answer.
///
/// ```
/// use cdas_core::types::HitId;
/// use cdas_crowd::ArrivalQueue;
///
/// let mut queue = ArrivalQueue::new();
/// queue.arm(HitId(2), 5.0);
/// queue.arm(HitId(1), 5.0); // simultaneous: ties pop in HIT-id order
/// queue.arm(HitId(3), 4.0);
/// queue.cancel(HitId(3)); // lazy deletion: never pops
/// assert_eq!(queue.pop(), Some((5.0, HitId(1))));
/// assert_eq!(queue.pop(), Some((5.0, HitId(2))));
/// assert_eq!(queue.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ArrivalQueue {
    heap: BinaryHeap<Entry>,
    /// The authoritative schedule: the heap is just an index over this map, and a heap
    /// entry is live iff it matches the map exactly.
    live: BTreeMap<HitId, f64>,
}

impl ArrivalQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule (or reschedule) `hit`'s next arrival at simulated minute `at`.
    ///
    /// Re-arming replaces the previous schedule; the superseded heap entry goes stale
    /// and is skimmed off when it surfaces. Arming an already-identical `(hit, at)`
    /// pair is a no-op, so per-tick re-arms don't grow the heap.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not finite — infinite look-aheads mean "no arrival" and must
    /// be kept out of the queue by the caller.
    pub fn arm(&mut self, hit: HitId, at: f64) {
        assert!(
            at.is_finite(),
            "arrival time for {hit} must be finite, got {at}"
        );
        if self.live.get(&hit) == Some(&at) {
            return;
        }
        self.live.insert(hit, at);
        self.heap.push(Entry { at, hit });
    }

    /// Drop `hit` from the schedule. Returns whether it was tracked.
    ///
    /// This is the lazy-deletion path: only the live map is touched, and the HIT's heap
    /// entry (if any) dies as a stale skim later. After `cancel`, no [`pop`](Self::pop)
    /// will ever return this HIT unless it is re-armed.
    pub fn cancel(&mut self, hit: HitId) -> bool {
        self.live.remove(&hit).is_some()
    }

    /// Whether `hit` currently has a scheduled arrival.
    pub fn tracks(&self, hit: HitId) -> bool {
        self.live.contains_key(&hit)
    }

    /// Number of HITs with a scheduled arrival (stale heap entries don't count).
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no arrivals are scheduled.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Discard stale entries until the heap's top is live (or the heap is empty).
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.live.get(&top.hit) == Some(&top.at) {
                return;
            }
            self.heap.pop();
        }
    }

    /// The earliest scheduled `(time, hit)` without removing it.
    pub fn peek(&mut self) -> Option<(f64, HitId)> {
        self.skim();
        self.heap.peek().map(|e| (e.at, e.hit))
    }

    /// The earliest scheduled arrival time, if any.
    pub fn next_time(&mut self) -> Option<f64> {
        self.peek().map(|(at, _)| at)
    }

    /// Remove and return the earliest scheduled `(time, hit)`.
    ///
    /// Ties (bit-equal times) pop in ascending [`HitId`] order. The popped HIT leaves
    /// the live map, so it won't pop again until re-armed.
    pub fn pop(&mut self) -> Option<(f64, HitId)> {
        self.skim();
        let entry = self.heap.pop()?;
        self.live.remove(&entry.hit);
        Some((entry.at, entry.hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = ArrivalQueue::new();
        q.arm(HitId(1), 9.0);
        q.arm(HitId(2), 3.0);
        q.arm(HitId(3), 6.0);
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_time(), Some(3.0));
        assert_eq!(q.pop(), Some((3.0, HitId(2))));
        assert_eq!(q.pop(), Some((6.0, HitId(3))));
        assert_eq!(q.pop(), Some((9.0, HitId(1))));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_arrivals_tie_break_by_hit_id() {
        let mut q = ArrivalQueue::new();
        for hit in [4u64, 1, 3, 2] {
            q.arm(HitId(hit), 7.5);
        }
        let order: Vec<HitId> = std::iter::from_fn(|| q.pop().map(|(_, h)| h)).collect();
        assert_eq!(order, [HitId(1), HitId(2), HitId(3), HitId(4)]);
    }

    #[test]
    fn cancel_suppresses_the_arrival_without_touching_the_heap() {
        let mut q = ArrivalQueue::new();
        q.arm(HitId(1), 2.0);
        q.arm(HitId(2), 4.0);
        assert!(q.cancel(HitId(1)));
        assert!(!q.cancel(HitId(1)), "cancel is idempotent");
        assert!(!q.tracks(HitId(1)));
        assert_eq!(q.len(), 1);
        // The stale entry for HIT 1 is still physically in the heap; pop skims past it.
        assert_eq!(q.pop(), Some((4.0, HitId(2))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rearm_replaces_the_previous_schedule() {
        let mut q = ArrivalQueue::new();
        q.arm(HitId(1), 10.0);
        q.arm(HitId(1), 2.0); // earlier re-arm wins
        assert_eq!(q.pop(), Some((2.0, HitId(1))));
        assert_eq!(q.pop(), None, "the superseded 10.0 entry is stale");

        q.arm(HitId(1), 2.0);
        q.arm(HitId(1), 10.0); // later re-arm wins too
        assert_eq!(q.pop(), Some((10.0, HitId(1))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn identical_rearm_is_a_no_op_and_never_double_pops() {
        let mut q = ArrivalQueue::new();
        for _ in 0..100 {
            q.arm(HitId(1), 5.0); // per-tick re-arm pattern from the scheduler
        }
        assert_eq!(q.pop(), Some((5.0, HitId(1))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn infinite_arrival_times_are_rejected() {
        ArrivalQueue::new().arm(HitId(1), f64::INFINITY);
    }

    /// The satellite oracle: a queue with no index at all — `pop` min-scans a map the
    /// way the pre-heap scheduler min-scanned the in-flight list.
    #[derive(Default)]
    struct NaiveQueue {
        live: BTreeMap<HitId, f64>,
    }

    impl NaiveQueue {
        fn arm(&mut self, hit: HitId, at: f64) {
            self.live.insert(hit, at);
        }
        fn cancel(&mut self, hit: HitId) -> bool {
            self.live.remove(&hit).is_some()
        }
        fn peek(&self) -> Option<(f64, HitId)> {
            // Min by time then HIT id; BTreeMap iteration already ascends by id, so a
            // strict `<` keeps the first (smallest-id) holder of the minimal time.
            let mut best: Option<(f64, HitId)> = None;
            for (&hit, &at) in &self.live {
                if best.map(|(t, _)| at < t).unwrap_or(true) {
                    best = Some((at, hit));
                }
            }
            best
        }
        fn pop(&mut self) -> Option<(f64, HitId)> {
            let top = self.peek()?;
            self.live.remove(&top.1);
            Some(top)
        }
    }

    /// One step of the interleaved workload: arm / cancel / pop / peek.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Arm { hit: u64, at: f64 },
        Cancel { hit: u64 },
        Pop,
        Peek,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // HIT ids from a tiny universe and arrival times snapped to a coarse grid, so
        // re-arms, cancels of tracked HITs, ties, and simultaneous arrivals all happen
        // constantly rather than almost never.
        prop_oneof![
            (0u64..6, 0usize..8).prop_map(|(hit, slot)| Op::Arm {
                hit,
                at: slot as f64 * 2.5,
            }),
            (0u64..6).prop_map(|hit| Op::Cancel { hit }),
            Just(Op::Pop),
            Just(Op::Pop), // weight pops up so queues drain and refill
            Just(Op::Peek),
        ]
    }

    proptest! {
        /// Satellite: under interleaved arm/pop/cancel — ties included — the lazy-deletion
        /// heap agrees with the naive min-scan oracle at every step.
        #[test]
        fn heap_matches_the_naive_min_scan_oracle(
            ops in prop::collection::vec(op_strategy(), 1..120)
        ) {
            let mut heap = ArrivalQueue::new();
            let mut oracle = NaiveQueue::default();
            for op in ops {
                match op {
                    Op::Arm { hit, at } => {
                        heap.arm(HitId(hit), at);
                        oracle.arm(HitId(hit), at);
                    }
                    Op::Cancel { hit } => {
                        prop_assert_eq!(heap.cancel(HitId(hit)), oracle.cancel(HitId(hit)));
                    }
                    Op::Pop => {
                        prop_assert_eq!(heap.pop(), oracle.pop());
                    }
                    Op::Peek => {
                        prop_assert_eq!(heap.peek(), oracle.peek());
                    }
                }
                prop_assert_eq!(heap.len(), oracle.live.len());
                prop_assert_eq!(heap.is_empty(), oracle.live.is_empty());
                for hit in 0u64..6 {
                    prop_assert_eq!(heap.tracks(HitId(hit)), oracle.live.contains_key(&HitId(hit)));
                }
            }
            // Drain both to the end: every surviving schedule pops, in the same order.
            loop {
                let (a, b) = (heap.pop(), oracle.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
