//! [`BinCodec`] implementations for the crowd-layer types that end up inside journal
//! records: the crowd specification a run was started with and the questions inside a
//! dispatched batch.
//!
//! These live here (not in `cdas-engine`) because Rust's orphan rules require the impl
//! in the crate that owns the type. The encodings follow the conventions documented in
//! [`cdas_core::codec`].

use cdas_core::codec::{BinCodec, CodecError, CodecResult};
use cdas_core::economics::CostModel;
use cdas_core::types::{AnswerDomain, Label, QuestionId};

use crate::approval::ApprovalModel;
use crate::arrival::LatencyModel;
use crate::distribution::AccuracyDistribution;
use crate::pool::PoolConfig;
use crate::question::CrowdQuestion;
use crate::spec::CrowdSpec;

impl BinCodec for ApprovalModel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.auto_approval_fraction.encode(out);
        self.accuracy_weight.encode(out);
        self.noise.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(ApprovalModel {
            auto_approval_fraction: f64::decode(input)?,
            accuracy_weight: f64::decode(input)?,
            noise: f64::decode(input)?,
        })
    }
}

impl BinCodec for LatencyModel {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LatencyModel::Constant(minutes) => {
                out.push(0);
                minutes.encode(out);
            }
            LatencyModel::Uniform { lo, hi } => {
                out.push(1);
                lo.encode(out);
                hi.encode(out);
            }
            LatencyModel::Exponential { mean } => {
                out.push(2);
                mean.encode(out);
            }
            LatencyModel::LogNormal { mu, sigma } => {
                out.push(3);
                mu.encode(out);
                sigma.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(LatencyModel::Constant(f64::decode(input)?)),
            1 => Ok(LatencyModel::Uniform {
                lo: f64::decode(input)?,
                hi: f64::decode(input)?,
            }),
            2 => Ok(LatencyModel::Exponential {
                mean: f64::decode(input)?,
            }),
            3 => Ok(LatencyModel::LogNormal {
                mu: f64::decode(input)?,
                sigma: f64::decode(input)?,
            }),
            other => Err(CodecError::new(format!("invalid LatencyModel tag {other}"))),
        }
    }
}

impl BinCodec for AccuracyDistribution {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AccuracyDistribution::Constant(accuracy) => {
                out.push(0);
                accuracy.encode(out);
            }
            AccuracyDistribution::Uniform { lo, hi } => {
                out.push(1);
                lo.encode(out);
                hi.encode(out);
            }
            AccuracyDistribution::Beta { alpha, beta } => {
                out.push(2);
                alpha.encode(out);
                beta.encode(out);
            }
            AccuracyDistribution::TruncatedNormal { mean, std } => {
                out.push(3);
                mean.encode(out);
                std.encode(out);
            }
            AccuracyDistribution::Empirical { bins } => {
                out.push(4);
                bins.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        match u8::decode(input)? {
            0 => Ok(AccuracyDistribution::Constant(f64::decode(input)?)),
            1 => Ok(AccuracyDistribution::Uniform {
                lo: f64::decode(input)?,
                hi: f64::decode(input)?,
            }),
            2 => Ok(AccuracyDistribution::Beta {
                alpha: f64::decode(input)?,
                beta: f64::decode(input)?,
            }),
            3 => Ok(AccuracyDistribution::TruncatedNormal {
                mean: f64::decode(input)?,
                std: f64::decode(input)?,
            }),
            4 => Ok(AccuracyDistribution::Empirical {
                bins: Vec::<(f64, f64, f64)>::decode(input)?,
            }),
            other => Err(CodecError::new(format!(
                "invalid AccuracyDistribution tag {other}"
            ))),
        }
    }
}

impl BinCodec for PoolConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.size.encode(out);
        self.accuracy.encode(out);
        self.spammer_fraction.encode(out);
        self.colluder_fraction.encode(out);
        self.expert_fraction.encode(out);
        self.approval.encode(out);
        self.latency.encode(out);
        self.seed.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(PoolConfig {
            size: usize::decode(input)?,
            accuracy: AccuracyDistribution::decode(input)?,
            spammer_fraction: f64::decode(input)?,
            colluder_fraction: f64::decode(input)?,
            expert_fraction: f64::decode(input)?,
            approval: ApprovalModel::decode(input)?,
            latency: LatencyModel::decode(input)?,
            seed: u64::decode(input)?,
        })
    }
}

impl BinCodec for CrowdSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.config().clone().encode(out);
        self.cost().encode(out);
        self.platform_seed_override().encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        let config = PoolConfig::decode(input)?;
        let cost = CostModel::decode(input)?;
        let platform_seed = Option::<u64>::decode(input)?;
        let mut spec = CrowdSpec::from_config(config).cost_model(cost);
        if let Some(seed) = platform_seed {
            spec = spec.platform_seed(seed);
        }
        Ok(spec)
    }
}

impl BinCodec for CrowdQuestion {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.domain.encode(out);
        self.ground_truth.encode(out);
        self.difficulty.encode(out);
        self.is_gold.encode(out);
        self.reason_keywords.encode(out);
    }

    fn decode(input: &mut &[u8]) -> CodecResult<Self> {
        Ok(CrowdQuestion {
            id: QuestionId::decode(input)?,
            domain: AnswerDomain::decode(input)?,
            ground_truth: Label::decode(input)?,
            difficulty: f64::decode(input)?,
            is_gold: bool::decode(input)?,
            reason_keywords: Vec::<String>::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: BinCodec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).expect("decodes"), value);
    }

    #[test]
    fn crowd_models_round_trip() {
        round_trip(ApprovalModel::default());
        round_trip(LatencyModel::Constant(2.0));
        round_trip(LatencyModel::Uniform { lo: 1.0, hi: 9.0 });
        round_trip(LatencyModel::Exponential { mean: 5.0 });
        round_trip(LatencyModel::LogNormal {
            mu: 1.2,
            sigma: 0.4,
        });
        round_trip(AccuracyDistribution::Constant(0.85));
        round_trip(AccuracyDistribution::Beta {
            alpha: 4.0,
            beta: 1.5,
        });
        round_trip(AccuracyDistribution::Empirical {
            bins: vec![(0.5, 0.7, 0.4), (0.7, 0.9, 0.6)],
        });
    }

    #[test]
    fn pool_config_round_trips() {
        let config = PoolConfig {
            size: 48,
            accuracy: AccuracyDistribution::TruncatedNormal {
                mean: 0.8,
                std: 0.1,
            },
            spammer_fraction: 0.05,
            colluder_fraction: 0.0,
            expert_fraction: 0.1,
            approval: ApprovalModel::default(),
            latency: LatencyModel::Exponential { mean: 5.0 },
            seed: 1234,
        };
        round_trip(config);
    }

    #[test]
    fn crowd_spec_round_trip_preserves_behavior() {
        let spec = CrowdSpec::clean(16, 0.85)
            .seed(7)
            .platform_seed(99)
            .latency(LatencyModel::Exponential { mean: 5.0 });
        let back = CrowdSpec::from_bytes(&spec.to_bytes()).expect("decodes");
        assert_eq!(back.config(), spec.config());
        assert_eq!(back.cost(), spec.cost());
        assert_eq!(
            back.effective_platform_seed(),
            spec.effective_platform_seed()
        );
        // A spec that never pinned a platform seed still round-trips to the same
        // effective seed (the decoded spec pins it explicitly).
        let implicit = CrowdSpec::clean(8, 0.9).seed(3);
        let back = CrowdSpec::from_bytes(&implicit.to_bytes()).expect("decodes");
        assert_eq!(
            back.effective_platform_seed(),
            implicit.effective_platform_seed()
        );
        assert_eq!(back.config(), implicit.config());
    }

    #[test]
    fn crowd_question_round_trips() {
        let question = CrowdQuestion {
            id: QuestionId(11),
            domain: AnswerDomain::from_strs(&["pos", "neg", "neutral"]),
            ground_truth: Label::new("pos"),
            difficulty: 0.3,
            is_gold: true,
            reason_keywords: vec!["because".to_string(), "evidence".to_string()],
        };
        round_trip(question);
    }
}
