//! A declarative description of one simulated crowd: the [`CrowdSpec`].
//!
//! The multi-job scheduler in `cdas-engine` needs three coordinated views of the *same*
//! crowd — a [`WorkerPool`] (who the workers are), a [`SimulatedPlatform`] or
//! [`ShardedPlatform`] (how they answer), and a [`PoolLedger`] (who is checked out) — and
//! hand-wiring them means repeating the pool in three places and keeping the seeds in
//! sync by discipline. A [`CrowdSpec`] is the single source of truth those three views
//! are derived from: describe the crowd once, then let the fleet facade (or your own
//! code) build consistent pools, platforms and ledgers from it on demand.
//!
//! Everything a spec builds is deterministic given its seed, so two calls to
//! [`CrowdSpec::build_platform`] produce bit-identical simulations — which is what lets
//! the facade run one fleet under several execution modes (the `cdas-engine` fleet
//! facade's `ExecutionMode`) over *identical* crowds and compare the reports.
//!
//! ```
//! use cdas_crowd::spec::CrowdSpec;
//! use cdas_crowd::arrival::LatencyModel;
//!
//! let spec = CrowdSpec::clean(32, 0.85)
//!     .latency(LatencyModel::Exponential { mean: 5.0 })
//!     .seed(7);
//! assert_eq!(spec.worker_count(), 32);
//! let pool = spec.build_pool();
//! let ledger = spec.build_ledger();
//! assert_eq!(pool.len(), ledger.roster_len());
//! ```

use cdas_core::economics::CostModel;

use crate::arrival::LatencyModel;
use crate::distribution::AccuracyDistribution;
use crate::lease::PoolLedger;
use crate::platform::SimulatedPlatform;
use crate::pool::{PoolConfig, WorkerPool};
use crate::sharded::ShardedPlatform;

/// A declarative description of a simulated crowd, from which consistent
/// [`WorkerPool`]s, [`SimulatedPlatform`]s, [`ShardedPlatform`]s and [`PoolLedger`]s are
/// built on demand.
///
/// The spec owns a [`PoolConfig`] plus the two platform-side knobs the pool does not
/// carry: the [`CostModel`] the platform charges with and the platform RNG seed (which
/// defaults to the pool seed, matching how the examples and tests have always wired the
/// two by hand).
#[derive(Debug, Clone, PartialEq)]
pub struct CrowdSpec {
    config: PoolConfig,
    cost_model: CostModel,
    platform_seed: Option<u64>,
}

impl CrowdSpec {
    /// A spec over an explicit [`PoolConfig`] — the escape hatch for populations the
    /// convenience constructors do not cover (spammers, colluders, empirical accuracy
    /// distributions).
    pub fn from_config(config: PoolConfig) -> Self {
        CrowdSpec {
            config,
            cost_model: CostModel::default(),
            platform_seed: None,
        }
    }

    /// A clean crowd of `size` diligent workers at constant `accuracy` — the spec
    /// equivalent of [`PoolConfig::clean`] (seed 42; override with [`seed`](Self::seed)).
    pub fn clean(size: usize, accuracy: f64) -> Self {
        Self::from_config(PoolConfig::clean(size, accuracy, 42))
    }

    /// The paper-shaped crowd: 500 workers following the Figure 14 accuracy histogram
    /// with a small spammer minority ([`PoolConfig::default`]).
    pub fn paper() -> Self {
        Self::from_config(PoolConfig::default())
    }

    /// Set the number of workers.
    pub fn size(mut self, size: usize) -> Self {
        self.config.size = size;
        self
    }

    /// Set the latency model every worker samples completion times from.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.config.latency = latency;
        self
    }

    /// Set the distribution of latent worker accuracies.
    pub fn accuracy(mut self, accuracy: AccuracyDistribution) -> Self {
        self.config.accuracy = accuracy;
        self
    }

    /// Set the RNG seed for the pool *and* (unless [`platform_seed`](Self::platform_seed)
    /// overrides it) the platform.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Give the platform its own RNG seed, decoupled from the pool's.
    pub fn platform_seed(mut self, seed: u64) -> Self {
        self.platform_seed = Some(seed);
        self
    }

    /// Set the cost model platforms built from this spec charge with.
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// The underlying pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// The cost model platforms built from this spec charge with.
    pub fn cost(&self) -> &CostModel {
        &self.cost_model
    }

    /// How many workers this crowd holds.
    pub fn worker_count(&self) -> usize {
        self.config.size
    }

    /// The seed platforms built from this spec use.
    pub fn effective_platform_seed(&self) -> u64 {
        self.platform_seed.unwrap_or(self.config.seed)
    }

    /// The explicit platform seed override, if one was set (`None` means the platform
    /// follows the pool seed). The codec round-trips this raw value so a decoded spec
    /// compares equal to the original.
    pub fn platform_seed_override(&self) -> Option<u64> {
        self.platform_seed
    }

    /// Generate the worker pool (deterministic given the seed).
    pub fn build_pool(&self) -> WorkerPool {
        WorkerPool::generate(&self.config)
    }

    /// Build a fresh simulated platform over this crowd.
    pub fn build_platform(&self) -> SimulatedPlatform {
        SimulatedPlatform::new(
            self.build_pool(),
            self.cost_model,
            self.effective_platform_seed(),
        )
    }

    /// Build a fresh sharded platform over this crowd, split `shards` ways
    /// ([`ShardedPlatform::split`]; a 1-way split is bit-identical to
    /// [`build_platform`](Self::build_platform)).
    pub fn build_sharded(&self, shards: usize) -> ShardedPlatform {
        ShardedPlatform::split(
            &self.build_pool(),
            self.cost_model,
            self.effective_platform_seed(),
            shards,
        )
    }

    /// Build a fresh lease ledger over this crowd's full roster.
    pub fn build_ledger(&self) -> PoolLedger {
        PoolLedger::from_pool(&self.build_pool())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CrowdPlatform;
    use crate::question::CrowdQuestion;
    use cdas_core::types::{AnswerDomain, Label, QuestionId};

    fn request() -> crate::hit::HitRequest {
        let qs: Vec<CrowdQuestion> = (0..3)
            .map(|i| {
                CrowdQuestion::new(
                    QuestionId(i),
                    AnswerDomain::from_strs(&["a", "b"]),
                    Label::from("a"),
                )
            })
            .collect();
        crate::hit::HitRequest::new(qs, 4, 0.01)
    }

    #[test]
    fn spec_builds_the_same_views_as_hand_wiring() {
        let spec = CrowdSpec::clean(12, 0.8)
            .seed(7)
            .latency(LatencyModel::Exponential { mean: 5.0 });
        let pool = WorkerPool::generate(&PoolConfig {
            latency: LatencyModel::Exponential { mean: 5.0 },
            ..PoolConfig::clean(12, 0.8, 7)
        });
        assert_eq!(spec.build_pool(), pool);
        assert_eq!(
            spec.build_ledger().roster(),
            PoolLedger::from_pool(&pool).roster()
        );

        // Platforms are separate instances but bit-identical simulations.
        let mut a = spec.build_platform();
        let mut b = SimulatedPlatform::new(pool, CostModel::default(), 7);
        let ha = a.publish(request());
        let hb = b.publish(request());
        assert_eq!(ha, hb);
        assert_eq!(a.poll(ha, f64::INFINITY), b.poll(hb, f64::INFINITY));
        assert_eq!(a.total_cost(), b.total_cost());
    }

    #[test]
    fn platform_seed_decouples_from_the_pool_seed() {
        let spec = CrowdSpec::clean(6, 0.8).seed(3);
        assert_eq!(spec.effective_platform_seed(), 3);
        let spec = spec.platform_seed(99);
        assert_eq!(spec.effective_platform_seed(), 99);
        // The pool itself is still the seed-3 pool.
        assert_eq!(
            spec.build_pool(),
            WorkerPool::generate(&PoolConfig::clean(6, 0.8, 3))
        );
    }

    #[test]
    fn sharded_build_partitions_the_same_crowd() {
        let spec = CrowdSpec::clean(10, 0.8).seed(5);
        let sharded = spec.build_sharded(2);
        assert_eq!(sharded.shard_count(), 2);
        let total: usize = sharded.shards().iter().map(|s| s.roster().len()).sum();
        assert_eq!(total, 10);
        // A 1-way split mints the same HIT ids as the plain platform.
        let mut one = spec.build_sharded(1);
        let mut plain = spec.build_platform();
        let a = one.shards_mut()[0].platform_mut().publish(request());
        let b = plain.publish(request());
        assert_eq!(a, b);
    }

    #[test]
    fn size_and_paper_constructors() {
        assert_eq!(CrowdSpec::paper().worker_count(), 500);
        assert_eq!(CrowdSpec::paper().size(40).worker_count(), 40);
        assert_eq!(CrowdSpec::clean(8, 0.9).worker_count(), 8);
    }
}
