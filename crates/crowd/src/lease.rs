//! Worker checkout/lease bookkeeping for concurrent jobs sharing one pool.
//!
//! §3.1 assumes "n random workers provide the answers" — true for a single HIT, but when
//! the multi-job scheduler (`cdas_engine::scheduler`) keeps several HITs from *different*
//! jobs in flight at once, nothing in the platform stops the same worker from being
//! assigned to two overlapping HITs, or twice to the same question through them. The
//! [`PoolLedger`] closes that gap: it tracks which workers are currently checked out, hands
//! out disjoint [`WorkerLease`]s, and takes workers back when a HIT completes or is
//! cancelled.
//!
//! The ledger deliberately holds only [`WorkerId`]s, not worker state: it composes with
//! any roster — a [`WorkerPool`], a real platform's qualified
//! worker list, or a hand-written subset.
//!
//! ```
//! use cdas_crowd::lease::PoolLedger;
//! use cdas_core::types::WorkerId;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut ledger = PoolLedger::new((0..10).map(WorkerId));
//! let mut rng = StdRng::seed_from_u64(1);
//! let a = ledger.try_lease(6, &mut rng).unwrap();
//! // Only 4 workers remain free: a second 6-worker lease must wait.
//! assert!(ledger.try_lease(6, &mut rng).is_none());
//! assert_eq!(ledger.available(), 4);
//! ledger.release(a.id);
//! assert_eq!(ledger.available(), 10);
//! ```

use std::collections::{BTreeMap, BTreeSet};

use cdas_core::types::WorkerId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::pool::WorkerPool;

/// Identifier of one outstanding lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LeaseId(pub u64);

/// A set of workers checked out together for one HIT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerLease {
    /// The lease identifier (hand it back via [`PoolLedger::release`]).
    pub id: LeaseId,
    workers: Vec<WorkerId>,
}

impl WorkerLease {
    /// The leased workers, in assignment order.
    pub fn workers(&self) -> &[WorkerId] {
        &self.workers
    }

    /// Number of leased workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the lease is empty (never produced by [`PoolLedger::try_lease`]).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }
}

/// Checkout ledger over a fixed worker roster.
///
/// All operations are O(roster) or better; the ledger is deterministic given the caller's
/// RNG, like everything else in the simulation.
#[derive(Debug, Clone, Default)]
pub struct PoolLedger {
    roster: Vec<WorkerId>,
    busy: BTreeSet<WorkerId>,
    leases: BTreeMap<LeaseId, Vec<WorkerId>>,
    next_lease: u64,
}

impl PoolLedger {
    /// A ledger over an explicit roster (duplicates are collapsed, order preserved).
    pub fn new(roster: impl IntoIterator<Item = WorkerId>) -> Self {
        let mut seen = BTreeSet::new();
        let roster = roster
            .into_iter()
            .filter(|w| seen.insert(*w))
            .collect::<Vec<_>>();
        PoolLedger {
            roster,
            busy: BTreeSet::new(),
            leases: BTreeMap::new(),
            next_lease: 0,
        }
    }

    /// A ledger over every worker of a simulated pool.
    pub fn from_pool(pool: &WorkerPool) -> Self {
        Self::new(pool.workers().iter().map(|w| w.id))
    }

    /// Total roster size.
    pub fn roster_len(&self) -> usize {
        self.roster.len()
    }

    /// Number of workers currently free.
    pub fn available(&self) -> usize {
        self.roster.len() - self.busy.len()
    }

    /// Number of workers currently checked out.
    pub fn leased(&self) -> usize {
        self.busy.len()
    }

    /// Number of outstanding leases.
    pub fn outstanding_leases(&self) -> usize {
        self.leases.len()
    }

    /// Whether a specific worker is currently checked out.
    pub fn is_leased(&self, worker: WorkerId) -> bool {
        self.busy.contains(&worker)
    }

    /// The workers behind an outstanding lease.
    pub fn workers_of(&self, lease: LeaseId) -> Option<&[WorkerId]> {
        self.leases.get(&lease).map(|w| w.as_slice())
    }

    /// Try to check out `n` distinct free workers, chosen uniformly at random among the
    /// free part of the roster. Returns `None` — leaving the ledger untouched — when fewer
    /// than `n` workers are free (the caller waits and retries) or when `n` is zero.
    pub fn try_lease<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Option<WorkerLease> {
        if n == 0 {
            return None;
        }
        let mut free: Vec<WorkerId> = self
            .roster
            .iter()
            .copied()
            .filter(|w| !self.busy.contains(w))
            .collect();
        if free.len() < n {
            return None;
        }
        free.shuffle(rng);
        free.truncate(n);
        for w in &free {
            self.busy.insert(*w);
        }
        let id = LeaseId(self.next_lease);
        self.next_lease += 1;
        self.leases.insert(id, free.clone());
        Some(WorkerLease { id, workers: free })
    }

    /// Return a lease's workers to the free roster. Returns how many workers were freed
    /// (0 for an unknown or already-released lease).
    pub fn release(&mut self, lease: LeaseId) -> usize {
        match self.leases.remove(&lease) {
            None => 0,
            Some(workers) => {
                for w in &workers {
                    self.busy.remove(w);
                }
                workers.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ledger(n: u64) -> PoolLedger {
        PoolLedger::new((0..n).map(WorkerId))
    }

    #[test]
    fn leases_are_disjoint_until_released() {
        let mut l = ledger(12);
        let mut rng = StdRng::seed_from_u64(7);
        let a = l.try_lease(5, &mut rng).unwrap();
        let b = l.try_lease(5, &mut rng).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 5);
        let overlap = a
            .workers()
            .iter()
            .filter(|w| b.workers().contains(w))
            .count();
        assert_eq!(overlap, 0, "concurrent leases must not share workers");
        assert_eq!(l.available(), 2);
        assert_eq!(l.outstanding_leases(), 2);
        // Third lease cannot be satisfied until one releases.
        assert!(l.try_lease(5, &mut rng).is_none());
        assert_eq!(l.release(a.id), 5);
        assert!(l.try_lease(5, &mut rng).is_some());
    }

    #[test]
    fn leased_workers_are_distinct_within_a_lease() {
        let mut l = ledger(30);
        let mut rng = StdRng::seed_from_u64(3);
        let lease = l.try_lease(20, &mut rng).unwrap();
        let mut ids: Vec<u64> = lease.workers().iter().map(|w| w.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
        for w in lease.workers() {
            assert!(l.is_leased(*w));
        }
        assert_eq!(l.workers_of(lease.id).unwrap().len(), 20);
    }

    #[test]
    fn failed_lease_leaves_ledger_untouched() {
        let mut l = ledger(4);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(l.try_lease(5, &mut rng).is_none());
        assert!(l.try_lease(0, &mut rng).is_none());
        assert_eq!(l.available(), 4);
        assert_eq!(l.leased(), 0);
        assert_eq!(l.outstanding_leases(), 0);
    }

    #[test]
    fn double_release_is_a_noop() {
        let mut l = ledger(6);
        let mut rng = StdRng::seed_from_u64(2);
        let lease = l.try_lease(3, &mut rng).unwrap();
        assert_eq!(l.release(lease.id), 3);
        assert_eq!(l.release(lease.id), 0);
        assert_eq!(l.release(LeaseId(999)), 0);
        assert_eq!(l.available(), 6);
    }

    #[test]
    fn from_pool_covers_every_worker_and_dedups() {
        let pool = WorkerPool::generate(&PoolConfig::clean(25, 0.8, 5));
        let l = PoolLedger::from_pool(&pool);
        assert_eq!(l.roster_len(), 25);
        let dup = PoolLedger::new([WorkerId(1), WorkerId(1), WorkerId(2)]);
        assert_eq!(dup.roster_len(), 2);
    }

    #[test]
    fn leasing_is_deterministic_for_a_seed() {
        let pick = || {
            let mut l = ledger(40);
            let mut rng = StdRng::seed_from_u64(11);
            l.try_lease(10, &mut rng).unwrap().workers().to_vec()
        };
        assert_eq!(pick(), pick());
    }
}
