//! Worker checkout/lease bookkeeping for concurrent jobs sharing one pool.
//!
//! §3.1 assumes "n random workers provide the answers" — true for a single HIT, but when
//! the multi-job scheduler (`cdas_engine::scheduler`) keeps several HITs from *different*
//! jobs in flight at once, nothing in the platform stops the same worker from being
//! assigned to two overlapping HITs, or twice to the same question through them. The
//! [`PoolLedger`] closes that gap: it tracks which workers are currently checked out,
//! hands out disjoint [`WorkerLease`]s, and takes workers back when a HIT completes or is
//! cancelled.
//!
//! Two properties matter for the parallel fleet:
//!
//! * The ledger is a **concurrent lease table**: a `PoolLedger` is a cheap handle (clones
//!   share the same table), and every operation takes `&self` behind an internal lock, so
//!   a ledger can be observed — or, in principle, leased from — by multiple threads.
//! * Leases release **on drop (RAII)**. A [`WorkerLease`] holds a handle back to its
//!   table and returns its workers the moment it goes out of scope — through an early
//!   `?` return, a panic unwinding a shard thread, or a plain happy-path drop. A
//!   scheduler bug (or crash) can therefore never strand workers in the busy set; the
//!   leak the old explicit-release protocol allowed on error paths is structurally gone.
//!
//! The ledger deliberately holds only [`WorkerId`]s, not worker state: it composes with
//! any roster — a [`WorkerPool`], a real platform's qualified
//! worker list, or a hand-written subset.
//!
//! ```
//! use cdas_crowd::lease::PoolLedger;
//! use cdas_core::types::WorkerId;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let ledger = PoolLedger::new((0..10).map(WorkerId));
//! let mut rng = StdRng::seed_from_u64(1);
//! let a = ledger.try_lease(6, &mut rng).unwrap();
//! // Only 4 workers remain free: a second 6-worker lease must wait.
//! assert!(ledger.try_lease(6, &mut rng).is_none());
//! assert_eq!(ledger.available(), 4);
//! drop(a); // RAII: dropping the lease returns its workers
//! assert_eq!(ledger.available(), 10);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, MutexGuard};

use cdas_core::types::WorkerId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::pool::WorkerPool;

/// Identifier of one outstanding lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LeaseId(pub u64);

/// The table behind a [`PoolLedger`] handle.
#[derive(Debug, Default)]
struct LedgerState {
    roster: Vec<WorkerId>,
    busy: BTreeSet<WorkerId>,
    leases: BTreeMap<LeaseId, Vec<WorkerId>>,
    next_lease: u64,
}

impl LedgerState {
    /// Return a lease's workers to the free roster; no-op for unknown/released ids.
    fn release(&mut self, lease: LeaseId) -> usize {
        match self.leases.remove(&lease) {
            None => 0,
            Some(workers) => {
                for w in &workers {
                    self.busy.remove(w);
                }
                workers.len()
            }
        }
    }
}

/// A set of workers checked out together for one HIT — an RAII guard.
///
/// Dropping the lease (explicitly, through `?`, or during a panic unwind) returns its
/// workers to the [`PoolLedger`] it came from. There is no way to copy or serialize a
/// lease: exactly one guard exists per checkout, so the release happens exactly once.
#[derive(Debug)]
#[must_use = "dropping a WorkerLease returns its workers to the ledger immediately; bind it for the HIT's lifetime"]
pub struct WorkerLease {
    /// The lease identifier (for the dispatch timeline and [`PoolLedger::workers_of`]).
    pub id: LeaseId,
    workers: Vec<WorkerId>,
    table: Arc<Mutex<LedgerState>>,
}

impl WorkerLease {
    /// The leased workers, in assignment order.
    pub fn workers(&self) -> &[WorkerId] {
        &self.workers
    }

    /// Number of leased workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the lease is empty (never produced by [`PoolLedger::try_lease`]).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Release the lease now. Equivalent to dropping it; provided so call sites can make
    /// the hand-back explicit.
    pub fn release(self) {}
}

impl Drop for WorkerLease {
    fn drop(&mut self) {
        // Recover from a poisoned table rather than skip the release: the only foreign
        // code that runs under the ledger lock is the caller's RNG inside `try_lease`'s
        // shuffle, which executes *before* any state mutation — so a poisoned
        // `LedgerState` is never mid-mutation and releasing into it is safe. Skipping
        // would strand this lease's workers forever, the exact failure RAII exists to
        // rule out.
        self.table
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .release(self.id);
    }
}

/// Checkout ledger over a fixed worker roster — a concurrent lease table.
///
/// `PoolLedger` is a handle: clones share the same table, so a test (or a supervisor
/// thread) can keep a clone and watch `available()`/`outstanding_leases()` while a
/// scheduler leases through its own. All operations are O(roster) or better and
/// deterministic given the caller's RNG, like everything else in the simulation.
#[derive(Debug, Clone, Default)]
pub struct PoolLedger {
    table: Arc<Mutex<LedgerState>>,
}

impl PoolLedger {
    /// A ledger over an explicit roster (duplicates are collapsed, order preserved).
    pub fn new(roster: impl IntoIterator<Item = WorkerId>) -> Self {
        let mut seen = BTreeSet::new();
        let roster = roster
            .into_iter()
            .filter(|w| seen.insert(*w))
            .collect::<Vec<_>>();
        PoolLedger {
            table: Arc::new(Mutex::new(LedgerState {
                roster,
                busy: BTreeSet::new(),
                leases: BTreeMap::new(),
                next_lease: 0,
            })),
        }
    }

    /// A ledger over every worker of a simulated pool.
    pub fn from_pool(pool: &WorkerPool) -> Self {
        Self::new(pool.workers().iter().map(|w| w.id))
    }

    fn state(&self) -> MutexGuard<'_, LedgerState> {
        // See `WorkerLease::drop`: a poisoned table is never mid-mutation (the caller's
        // RNG is the only foreign code under this lock, and it runs before any write),
        // so the ledger keeps working after a panicking caller instead of cascading.
        self.table
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Total roster size.
    pub fn roster_len(&self) -> usize {
        self.state().roster.len()
    }

    /// The roster, in checkout-priority order (a copy — the table stays locked only for
    /// the duration of the call).
    pub fn roster(&self) -> Vec<WorkerId> {
        self.state().roster.clone()
    }

    /// Number of workers currently free.
    pub fn available(&self) -> usize {
        let state = self.state();
        state.roster.len() - state.busy.len()
    }

    /// Number of workers currently checked out.
    pub fn leased(&self) -> usize {
        self.state().busy.len()
    }

    /// Number of outstanding leases.
    pub fn outstanding_leases(&self) -> usize {
        self.state().leases.len()
    }

    /// Whether a specific worker is currently checked out.
    pub fn is_leased(&self, worker: WorkerId) -> bool {
        self.state().busy.contains(&worker)
    }

    /// The workers behind an outstanding lease.
    pub fn workers_of(&self, lease: LeaseId) -> Option<Vec<WorkerId>> {
        self.state().leases.get(&lease).cloned()
    }

    /// Try to check out `n` distinct free workers, chosen uniformly at random among the
    /// free part of the roster. Returns `None` — leaving the ledger untouched — when fewer
    /// than `n` workers are free (the caller waits and retries) or when `n` is zero.
    ///
    /// The returned [`WorkerLease`] releases on drop.
    #[must_use = "an unbound lease releases its workers immediately, making the checkout a no-op"]
    pub fn try_lease<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Option<WorkerLease> {
        if n == 0 {
            return None;
        }
        let mut state = self.state();
        let mut free: Vec<WorkerId> = state
            .roster
            .iter()
            .copied()
            .filter(|w| !state.busy.contains(w))
            .collect();
        if free.len() < n {
            return None;
        }
        free.shuffle(rng);
        free.truncate(n);
        for w in &free {
            state.busy.insert(*w);
        }
        let id = LeaseId(state.next_lease);
        state.next_lease += 1;
        state.leases.insert(id, free.clone());
        Some(WorkerLease {
            id,
            workers: free,
            table: Arc::clone(&self.table),
        })
    }

    /// Return a lease's workers to the free roster by id. Returns how many workers were
    /// freed (0 for an unknown or already-released lease).
    ///
    /// Normally unnecessary — leases release on drop — and safe to combine with RAII: the
    /// guard's later drop finds the id gone and does nothing.
    pub fn release(&self, lease: LeaseId) -> usize {
        self.state().release(lease)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ledger(n: u64) -> PoolLedger {
        PoolLedger::new((0..n).map(WorkerId))
    }

    #[test]
    fn leases_are_disjoint_until_released() {
        let l = ledger(12);
        let mut rng = StdRng::seed_from_u64(7);
        let a = l.try_lease(5, &mut rng).unwrap();
        let b = l.try_lease(5, &mut rng).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 5);
        let overlap = a
            .workers()
            .iter()
            .filter(|w| b.workers().contains(w))
            .count();
        assert_eq!(overlap, 0, "concurrent leases must not share workers");
        assert_eq!(l.available(), 2);
        assert_eq!(l.outstanding_leases(), 2);
        // Third lease cannot be satisfied until one releases.
        assert!(l.try_lease(5, &mut rng).is_none());
        a.release();
        assert!(l.try_lease(5, &mut rng).is_some());
    }

    #[test]
    fn leased_workers_are_distinct_within_a_lease() {
        let l = ledger(30);
        let mut rng = StdRng::seed_from_u64(3);
        let lease = l.try_lease(20, &mut rng).unwrap();
        let mut ids: Vec<u64> = lease.workers().iter().map(|w| w.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
        for w in lease.workers() {
            assert!(l.is_leased(*w));
        }
        assert_eq!(l.workers_of(lease.id).unwrap().len(), 20);
    }

    #[test]
    fn failed_lease_leaves_ledger_untouched() {
        let l = ledger(4);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(l.try_lease(5, &mut rng).is_none());
        assert!(l.try_lease(0, &mut rng).is_none());
        assert_eq!(l.available(), 4);
        assert_eq!(l.leased(), 0);
        assert_eq!(l.outstanding_leases(), 0);
    }

    #[test]
    fn dropping_a_lease_releases_it() {
        let l = ledger(6);
        let mut rng = StdRng::seed_from_u64(2);
        {
            let _lease = l.try_lease(3, &mut rng).unwrap();
            assert_eq!(l.available(), 3);
        }
        assert_eq!(l.available(), 6);
        assert_eq!(l.outstanding_leases(), 0);
    }

    #[test]
    fn manual_release_then_drop_frees_workers_exactly_once() {
        let l = ledger(6);
        let mut rng = StdRng::seed_from_u64(2);
        let lease = l.try_lease(3, &mut rng).unwrap();
        let id = lease.id;
        assert_eq!(l.release(id), 3);
        assert_eq!(l.available(), 6);
        // A second lease takes some of the same workers…
        let again = l.try_lease(4, &mut rng).unwrap();
        assert_eq!(l.available(), 2);
        // …and the stale guard's drop must not free them out from under it.
        drop(lease);
        assert_eq!(l.available(), 2);
        assert_eq!(l.release(LeaseId(999)), 0);
        drop(again);
        assert_eq!(l.available(), 6);
    }

    #[test]
    fn a_panicking_thread_cannot_strand_workers() {
        let l = ledger(8);
        let observer = l.clone();
        let result = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(9);
            let _lease = l.try_lease(5, &mut rng).unwrap();
            assert_eq!(l.available(), 3);
            panic!("simulated shard crash mid-lease");
        })
        .join();
        assert!(result.is_err(), "the thread must have panicked");
        assert_eq!(observer.available(), 8, "unwind released the lease");
        assert_eq!(observer.outstanding_leases(), 0);
    }

    #[test]
    fn a_panicking_rng_cannot_poison_the_ledger_or_strand_leases() {
        // `try_lease` runs the caller's RNG inside the table lock (the shuffle). If that
        // RNG panics, the mutex is poisoned — but the state is never mid-mutation at
        // that point, so both the guards' drops and later ledger calls must recover
        // instead of stranding workers or cascading panics.
        struct FusedRng(u32);
        impl rand::Rng for FusedRng {
            fn next_u64(&mut self) -> u64 {
                self.0 = self.0.checked_sub(1).expect("scripted RNG exhausted");
                7
            }
        }

        let l = ledger(10);
        let mut good_rng = StdRng::seed_from_u64(3);
        let survivor = l.try_lease(4, &mut good_rng).unwrap();
        let poisoning = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            l.try_lease(3, &mut FusedRng(2))
        }));
        assert!(poisoning.is_err(), "the scripted RNG must have panicked");
        // The ledger keeps answering through the poison…
        assert_eq!(l.available(), 6);
        assert_eq!(l.outstanding_leases(), 1);
        // …a fresh lease still works…
        let after = l.try_lease(3, &mut good_rng).unwrap();
        assert_eq!(l.available(), 3);
        // …and the pre-poison guard still releases its workers on drop.
        drop(survivor);
        drop(after);
        assert_eq!(l.available(), 10);
        assert_eq!(l.leased(), 0);
    }

    #[test]
    fn clones_share_one_table() {
        let l = ledger(10);
        let handle = l.clone();
        let mut rng = StdRng::seed_from_u64(4);
        let lease = l.try_lease(6, &mut rng).unwrap();
        assert_eq!(handle.available(), 4);
        assert_eq!(handle.outstanding_leases(), 1);
        drop(lease);
        assert_eq!(handle.available(), 10);
    }

    #[test]
    fn from_pool_covers_every_worker_and_dedups() {
        let pool = WorkerPool::generate(&PoolConfig::clean(25, 0.8, 5));
        let l = PoolLedger::from_pool(&pool);
        assert_eq!(l.roster_len(), 25);
        assert_eq!(l.roster().len(), 25);
        let dup = PoolLedger::new([WorkerId(1), WorkerId(1), WorkerId(2)]);
        assert_eq!(dup.roster_len(), 2);
    }

    #[test]
    fn leasing_is_deterministic_for_a_seed() {
        let pick = || {
            let l = ledger(40);
            let mut rng = StdRng::seed_from_u64(11);
            l.try_lease(10, &mut rng).unwrap().workers().to_vec()
        };
        assert_eq!(pick(), pick());
    }
}
