//! # cdas-crowd — a simulated crowdsourcing platform (the AMT substrate of CDAS)
//!
//! The CDAS paper evaluates its answering model on Amazon Mechanical Turk. A reproduction
//! cannot employ a real crowd, so this crate provides a **discrete, seeded simulation** of
//! everything the answering model observes about one:
//!
//! * a [`pool::WorkerPool`] of simulated workers whose latent accuracies follow a
//!   configurable [`distribution::AccuracyDistribution`] (including an empirical
//!   distribution shaped like the paper's Figure 14),
//! * per-worker [`behavior::WorkerBehavior`] models — diligent workers, spammers that
//!   answer at random, and colluders that agree on a wrong answer (§1 names both threats),
//! * **approval rates** that are deliberately *decoupled* from true task accuracy
//!   ([`approval`]), reproducing the paper's observation that AMT approval rates are not a
//!   usable accuracy signal,
//! * asynchronous answer **arrival** with configurable latency models ([`arrival`]), which
//!   drives the online-processing experiments,
//! * a [`platform::SimulatedPlatform`] that publishes HITs, delivers answers in arrival
//!   order incrementally as simulated time passes ([`CrowdPlatform::poll`] /
//!   [`CrowdPlatform::next_arrival`]), supports a refunding mid-flight
//!   [`CrowdPlatform::cancel`] (uncollected assignments are never paid, per §3.1's
//!   footnote), and charges the requester per delivered answer,
//! * a monotone [`clock::SimClock`] that clocked collectors advance from arrival event to
//!   arrival event (discrete-event simulation of §4.2's asynchronous crowd), plus an
//!   [`arrival_queue::ArrivalQueue`] — a lazy-deletion binary min-heap over
//!   [`CrowdPlatform::next_arrival`] look-aheads that lets the clocked scheduler find the
//!   next event in O(log n) instead of scanning every in-flight HIT, and
//! * a worker checkout [`lease::PoolLedger`] — a concurrent lease table whose
//!   [`lease::WorkerLease`]s release on drop (RAII) — so that many concurrent jobs
//!   multiplexed over one pool (the multi-job scheduler in `cdas-engine`) never
//!   double-assign a worker to overlapping HITs, and an erroring or panicking scheduler
//!   thread can never strand workers, and
//! * a [`sharded::ShardedPlatform`] that partitions the worker pool and HIT-id space into
//!   disjoint per-thread shards, the substrate of the parallel fleet
//!   (`JobScheduler::run_parallel` in `cdas-engine`), and
//! * a [`spec::CrowdSpec`]: one declarative description of a crowd from which consistent
//!   pools, platforms, sharded platforms and ledgers are derived on demand — the crowd
//!   half of the `cdas-engine` fleet facade.
//!
//! Everything is deterministic given a seed, so every experiment in `cdas-bench` is
//! reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod approval;
pub mod arrival;
pub mod arrival_queue;
pub mod behavior;
pub mod clock;
pub mod codec;
pub mod distribution;
pub mod failpoint;
pub mod hit;
pub mod lease;
pub mod platform;
pub mod pool;
pub mod question;
pub mod sharded;
pub mod spec;
pub mod worker;

pub use arrival_queue::ArrivalQueue;
pub use clock::SimClock;
pub use failpoint::{Failpoint, FailpointPlatform};
pub use lease::{LeaseId, PoolLedger, WorkerLease};
pub use platform::{CancelReceipt, CrowdPlatform, SimulatedPlatform, WorkerAnswer};
pub use pool::{PoolConfig, WorkerPool};
pub use question::CrowdQuestion;
pub use sharded::{PlatformShard, ShardedPlatform};
pub use spec::CrowdSpec;
pub use worker::SimulatedWorker;
