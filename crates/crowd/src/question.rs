//! The questions a HIT poses to the crowd, as the *simulator* sees them.
//!
//! Unlike the engine (which must not know the truth), the simulated crowd needs the ground
//! truth and a difficulty score to decide how a worker of a given accuracy answers.

use cdas_core::types::{AnswerDomain, Label, QuestionId};
use serde::{Deserialize, Serialize};

/// A question posed to the crowd, carrying the simulation-side metadata (ground truth,
/// difficulty) that real platforms obviously do not expose to the requester.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdQuestion {
    /// Question identifier (unique within a job).
    pub id: QuestionId,
    /// The candidate answers shown to the worker.
    pub domain: AnswerDomain,
    /// The correct answer.
    pub ground_truth: Label,
    /// How hard the question is for a human, in `[0, 1]`: 0 means a worker answers with
    /// their nominal accuracy, 1 means they are reduced to a random guess. This models the
    /// paper's observation that some tweets (sarcasm, slang) are much harder than average.
    pub difficulty: f64,
    /// Whether this is a gold question injected by the sampling plan (§3.3); the engine
    /// knows the ground truth of gold questions, the workers cannot tell them apart.
    pub is_gold: bool,
    /// Keywords associated with the correct answer, which diligent workers echo as their
    /// "reasons" (feeds the presentation layer).
    pub reason_keywords: Vec<String>,
}

impl CrowdQuestion {
    /// Create a question with no particular difficulty.
    pub fn new(id: QuestionId, domain: AnswerDomain, ground_truth: Label) -> Self {
        CrowdQuestion {
            id,
            domain,
            ground_truth,
            difficulty: 0.0,
            is_gold: false,
            reason_keywords: Vec::new(),
        }
    }

    /// Set the difficulty in `[0, 1]`.
    pub fn with_difficulty(mut self, difficulty: f64) -> Self {
        self.difficulty = difficulty.clamp(0.0, 1.0);
        self
    }

    /// Mark the question as a gold (sampling) question.
    pub fn as_gold(mut self) -> Self {
        self.is_gold = true;
        self
    }

    /// Attach reason keywords.
    pub fn with_reasons(mut self, keywords: impl IntoIterator<Item = String>) -> Self {
        self.reason_keywords = keywords.into_iter().collect();
        self
    }

    /// The probability that a worker of nominal accuracy `accuracy` answers this question
    /// correctly: difficulty interpolates between the nominal accuracy and a random guess
    /// over the domain.
    pub fn effective_accuracy(&self, accuracy: f64) -> f64 {
        let guess = 1.0 / self.domain.size().max(2) as f64;
        let a = accuracy.clamp(0.0, 1.0);
        (a * (1.0 - self.difficulty) + guess * self.difficulty).clamp(0.0, 1.0)
    }

    /// The wrong answers of the domain.
    pub fn wrong_answers(&self) -> Vec<&Label> {
        self.domain
            .labels()
            .filter(|l| **l != self.ground_truth)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn question() -> CrowdQuestion {
        CrowdQuestion::new(
            QuestionId(1),
            AnswerDomain::from_strs(&["pos", "neu", "neg"]),
            Label::from("pos"),
        )
    }

    #[test]
    fn builders_set_fields() {
        let q = question()
            .with_difficulty(0.4)
            .as_gold()
            .with_reasons(vec!["siri".to_string()]);
        assert_eq!(q.difficulty, 0.4);
        assert!(q.is_gold);
        assert_eq!(q.reason_keywords, vec!["siri"]);
        // Difficulty is clamped.
        assert_eq!(question().with_difficulty(7.0).difficulty, 1.0);
        assert_eq!(question().with_difficulty(-1.0).difficulty, 0.0);
    }

    #[test]
    fn effective_accuracy_interpolates_towards_guessing() {
        let easy = question(); // difficulty 0
        assert!((easy.effective_accuracy(0.9) - 0.9).abs() < 1e-12);
        let hard = question().with_difficulty(1.0);
        assert!((hard.effective_accuracy(0.9) - 1.0 / 3.0).abs() < 1e-12);
        let medium = question().with_difficulty(0.5);
        let expected = 0.5 * 0.9 + 0.5 / 3.0;
        assert!((medium.effective_accuracy(0.9) - expected).abs() < 1e-12);
    }

    #[test]
    fn wrong_answers_exclude_ground_truth() {
        let q = question();
        let wrong = q.wrong_answers();
        assert_eq!(wrong.len(), 2);
        assert!(wrong.iter().all(|l| l.as_str() != "pos"));
    }
}
