//! Samplers for worker-accuracy and approval-rate distributions.
//!
//! The paper's Figure 14 contrasts the distribution of workers' *real accuracy* on the TSA
//! task (roughly bell-shaped between 0.25 and 1.0, centred around 0.6–0.8) with their AMT
//! *approval rate* (heavily skewed towards 90–100 %). [`AccuracyDistribution::paper_accuracy`]
//! and [`AccuracyDistribution::paper_approval`] reproduce those two shapes as empirical
//! histograms; Beta / truncated-normal / uniform samplers are provided for sensitivity
//! experiments.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over `[0, 1]` used to draw worker accuracies or approval rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccuracyDistribution {
    /// Every worker has the same value.
    Constant(f64),
    /// Uniform on `[lo, hi] ⊆ [0, 1]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Beta(α, β) — the conjugate prior for accuracies; sampled via Jöhnk's algorithm.
    Beta {
        /// Shape parameter α > 0.
        alpha: f64,
        /// Shape parameter β > 0.
        beta: f64,
    },
    /// Normal(mean, std) truncated to `[0.01, 0.99]` by rejection.
    TruncatedNormal {
        /// Mean of the underlying normal.
        mean: f64,
        /// Standard deviation of the underlying normal.
        std: f64,
    },
    /// Empirical histogram: a list of `(bin_lo, bin_hi, weight)` entries; a bin is chosen
    /// with probability proportional to its weight and the value is uniform inside it.
    Empirical {
        /// Histogram bins.
        bins: Vec<(f64, f64, f64)>,
    },
}

impl AccuracyDistribution {
    /// The distribution of workers' *real accuracy* on the TSA task, shaped after the
    /// paper's Figure 14 (mass between 0.25 and 1.0, peaking in the 0.6–0.8 bands).
    pub fn paper_accuracy() -> Self {
        AccuracyDistribution::Empirical {
            bins: vec![
                (0.25, 0.30, 0.01),
                (0.30, 0.35, 0.01),
                (0.35, 0.40, 0.02),
                (0.40, 0.45, 0.03),
                (0.45, 0.50, 0.04),
                (0.50, 0.55, 0.07),
                (0.55, 0.60, 0.10),
                (0.60, 0.65, 0.14),
                (0.65, 0.70, 0.16),
                (0.70, 0.75, 0.15),
                (0.75, 0.80, 0.12),
                (0.80, 0.85, 0.08),
                (0.85, 0.90, 0.04),
                (0.90, 0.95, 0.02),
                (0.95, 1.00, 0.01),
            ],
        }
    }

    /// The distribution of AMT *approval rates*, shaped after Figure 14 (over half of the
    /// workers sit in the 95–100 % band regardless of their task accuracy).
    pub fn paper_approval() -> Self {
        AccuracyDistribution::Empirical {
            bins: vec![
                (0.50, 0.60, 0.02),
                (0.60, 0.70, 0.03),
                (0.70, 0.80, 0.05),
                (0.80, 0.85, 0.06),
                (0.85, 0.90, 0.09),
                (0.90, 0.95, 0.22),
                (0.95, 1.00, 0.53),
            ],
        }
    }

    /// Draw one value in `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = match self {
            AccuracyDistribution::Constant(v) => *v,
            AccuracyDistribution::Uniform { lo, hi } => {
                if (hi - lo).abs() < f64::EPSILON {
                    *lo
                } else {
                    rng.random_range(*lo..*hi)
                }
            }
            AccuracyDistribution::Beta { alpha, beta } => sample_beta(rng, *alpha, *beta),
            AccuracyDistribution::TruncatedNormal { mean, std } => {
                sample_truncated_normal(rng, *mean, *std)
            }
            AccuracyDistribution::Empirical { bins } => sample_empirical(rng, bins),
        };
        v.clamp(0.0, 1.0)
    }

    /// The mean of the distribution, estimated analytically where possible and otherwise
    /// from the bin structure.
    pub fn mean(&self) -> f64 {
        match self {
            AccuracyDistribution::Constant(v) => *v,
            AccuracyDistribution::Uniform { lo, hi } => 0.5 * (lo + hi),
            AccuracyDistribution::Beta { alpha, beta } => alpha / (alpha + beta),
            AccuracyDistribution::TruncatedNormal { mean, .. } => mean.clamp(0.01, 0.99),
            AccuracyDistribution::Empirical { bins } => {
                let total: f64 = bins.iter().map(|(_, _, w)| w).sum();
                if total <= 0.0 {
                    return 0.5;
                }
                bins.iter()
                    .map(|(lo, hi, w)| 0.5 * (lo + hi) * w)
                    .sum::<f64>()
                    / total
            }
        }
    }
}

/// Jöhnk's Beta sampler: draw U, V uniform until U^{1/α} + V^{1/β} ≤ 1; the sample is
/// X = U^{1/α} / (U^{1/α} + V^{1/β}). Falls back to the mean after too many rejections
/// (only relevant for very large α+β, where the distribution is sharply peaked anyway).
fn sample_beta<R: Rng + ?Sized>(rng: &mut R, alpha: f64, beta: f64) -> f64 {
    assert!(
        alpha > 0.0 && beta > 0.0,
        "Beta parameters must be positive"
    );
    for _ in 0..256 {
        let u: f64 = rng.random::<f64>();
        let v: f64 = rng.random::<f64>();
        let x = u.powf(1.0 / alpha);
        let y = v.powf(1.0 / beta);
        if x + y <= 1.0 && x + y > 0.0 {
            return x / (x + y);
        }
    }
    alpha / (alpha + beta)
}

/// Box–Muller normal sampler with rejection outside `[0.01, 0.99]`.
fn sample_truncated_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    for _ in 0..256 {
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = mean + std * z;
        if (0.01..=0.99).contains(&v) {
            return v;
        }
    }
    mean.clamp(0.01, 0.99)
}

fn sample_empirical<R: Rng + ?Sized>(rng: &mut R, bins: &[(f64, f64, f64)]) -> f64 {
    let total: f64 = bins.iter().map(|(_, _, w)| w).sum();
    if bins.is_empty() || total <= 0.0 {
        return 0.5;
    }
    let mut target = rng.random::<f64>() * total;
    for (lo, hi, w) in bins {
        if target <= *w {
            return if (hi - lo).abs() < f64::EPSILON {
                *lo
            } else {
                rng.random_range(*lo..*hi)
            };
        }
        target -= w;
    }
    // Unreachable fallback (emptiness is handled above) matches the
    // empty-bins midpoint.
    let (lo, hi, _) = bins.last().copied().unwrap_or((0.5, 0.5, 0.0));
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(dist: &AccuracyDistribution, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_distribution() {
        let d = AccuracyDistribution::Constant(0.73);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 0.73);
        }
        assert_eq!(d.mean(), 0.73);
    }

    #[test]
    fn uniform_stays_in_range_and_mean_matches() {
        let d = AccuracyDistribution::Uniform { lo: 0.6, hi: 0.8 };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((0.6..=0.8).contains(&v));
        }
        assert!((sample_mean(&d, 20_000, 3) - 0.7).abs() < 0.01);
        assert!((d.mean() - 0.7).abs() < 1e-12);
        // Degenerate range behaves like a constant.
        let d = AccuracyDistribution::Uniform { lo: 0.5, hi: 0.5 };
        assert_eq!(d.sample(&mut rng), 0.5);
    }

    #[test]
    fn beta_sampler_matches_analytic_mean() {
        for &(alpha, beta) in &[(2.0, 2.0), (5.0, 2.0), (8.0, 3.0)] {
            let d = AccuracyDistribution::Beta { alpha, beta };
            let empirical = sample_mean(&d, 30_000, 42);
            assert!(
                (empirical - d.mean()).abs() < 0.02,
                "Beta({alpha},{beta}): empirical mean {empirical} vs analytic {}",
                d.mean()
            );
        }
    }

    #[test]
    fn truncated_normal_stays_in_bounds() {
        let d = AccuracyDistribution::TruncatedNormal {
            mean: 0.7,
            std: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5000 {
            let v = d.sample(&mut rng);
            assert!((0.0..=1.0).contains(&v));
        }
        assert!((sample_mean(&d, 20_000, 8) - 0.7).abs() < 0.02);
    }

    #[test]
    fn empirical_histogram_respects_bins() {
        let d = AccuracyDistribution::Empirical {
            bins: vec![(0.2, 0.3, 1.0), (0.8, 0.9, 3.0)],
        };
        let mut rng = StdRng::seed_from_u64(11);
        let mut high = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!((0.2..0.3).contains(&v) || (0.8..0.9).contains(&v));
            if v >= 0.8 {
                high += 1;
            }
        }
        let frac = high as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "high-bin fraction {frac}");
    }

    #[test]
    fn paper_distributions_have_the_figure_14_shape() {
        let accuracy = AccuracyDistribution::paper_accuracy();
        let approval = AccuracyDistribution::paper_approval();
        // Approval rates are much higher on average than real accuracies.
        assert!(approval.mean() > accuracy.mean() + 0.15);
        // Real accuracy mean sits in the usable (> 0.5) band so the prediction model works.
        assert!(accuracy.mean() > 0.6 && accuracy.mean() < 0.75);
        // Over half of the approval mass is in the 90–100 % band.
        let mut rng = StdRng::seed_from_u64(5);
        let high = (0..10_000)
            .filter(|_| approval.sample(&mut rng) >= 0.9)
            .count();
        assert!(high > 6_000);
    }

    #[test]
    fn degenerate_empirical_falls_back() {
        let d = AccuracyDistribution::Empirical { bins: vec![] };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 0.5);
        assert_eq!(d.mean(), 0.5);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = AccuracyDistribution::paper_accuracy();
        let a = sample_mean(&d, 100, 99);
        let b = sample_mean(&d, 100, 99);
        assert_eq!(a, b);
    }
}
