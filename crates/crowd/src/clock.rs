//! Simulated wall-clock time for discrete-event crowd runs (§4.2 made temporal).
//!
//! The paper's online processing is driven by workers finishing *asynchronously*: Figure 11
//! shows the approximate result quality is a function of the arrival sequence, and §4.2.2's
//! early termination only saves anything real if the HIT is cancelled while slower workers
//! are still working. The [`SimClock`] is the single source of "now" for such a run: the
//! engine polls the platform *up to* the clock, advances it to the next arrival event, and
//! stamps every verdict and cancellation with the time it happened — which is what turns
//! scheduler ticks into latency, makespan and worker-minutes-reclaimed numbers.
//!
//! The clock is deliberately dumb: monotone, `f64` minutes, no event queue. The event
//! times themselves live with the platform (it knows when undelivered answers arrive);
//! the clock only remembers how far the simulation has progressed.
//!
//! ```
//! use cdas_crowd::clock::SimClock;
//!
//! let mut clock = SimClock::new();
//! assert_eq!(clock.now(), 0.0);
//! clock.advance(2.5);
//! clock.advance_to(2.0); // going backwards is a no-op: time is monotone
//! assert_eq!(clock.now(), 2.5);
//! assert_eq!(clock.advance_to(4.0), 4.0);
//! ```

use serde::{Deserialize, Serialize};

/// Monotone simulated time, in minutes since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    now: f64,
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new()
    }
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock { now: 0.0 }
    }

    /// A clock starting at `t` minutes (negative, NaN and infinite starts clamp to zero —
    /// simulated time begins when the run does).
    pub fn at(t: f64) -> Self {
        let mut clock = SimClock::new();
        clock.advance_to(t);
        clock
    }

    /// The current simulated time in minutes.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by `dt` minutes and return the new time. Negative, NaN and infinite deltas
    /// are ignored: the clock only moves forward, by finite steps.
    pub fn advance(&mut self, dt: f64) -> f64 {
        if dt.is_finite() && dt > 0.0 {
            self.now += dt;
        }
        self.now
    }

    /// Advance *to* the absolute time `t` and return the new time. Times in the past (and
    /// NaN or infinite targets) leave the clock untouched: time is monotone, and an
    /// infinite "end of time" target would make every later duration meaningless.
    pub fn advance_to(&mut self, t: f64) -> f64 {
        if t.is_finite() && t > self.now {
            self.now = t;
        }
        self.now
    }

    /// Minutes elapsed since an earlier instant (saturating at zero for instants the clock
    /// has not reached, e.g. an event scheduled in the future).
    pub fn since(&self, earlier: f64) -> f64 {
        (self.now - earlier).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), 0.0);
        assert_eq!(clock.advance(1.5), 1.5);
        assert_eq!(clock.advance(0.5), 2.0);
        assert_eq!(clock.now(), 2.0);
    }

    #[test]
    fn rejects_backwards_and_non_finite_motion() {
        let mut clock = SimClock::at(3.0);
        assert_eq!(clock.advance(-1.0), 3.0);
        assert_eq!(clock.advance(f64::NAN), 3.0);
        assert_eq!(clock.advance(f64::INFINITY), 3.0);
        assert_eq!(clock.advance_to(1.0), 3.0);
        assert_eq!(clock.advance_to(f64::NAN), 3.0);
        assert_eq!(clock.advance_to(f64::INFINITY), 3.0);
        assert_eq!(clock.advance_to(5.0), 5.0);
    }

    #[test]
    fn degenerate_starts_clamp_to_zero() {
        assert_eq!(SimClock::at(-2.0).now(), 0.0);
        assert_eq!(SimClock::at(f64::NAN).now(), 0.0);
        assert_eq!(SimClock::at(7.5).now(), 7.5);
    }

    #[test]
    fn since_saturates() {
        let clock = SimClock::at(10.0);
        assert_eq!(clock.since(4.0), 6.0);
        assert_eq!(clock.since(12.0), 0.0);
    }
}
