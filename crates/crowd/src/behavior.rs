//! Worker behaviour models.
//!
//! §1 of the paper motivates the quality problem with two worker types: *malicious* workers
//! that submit random answers to collect rewards, and well-meaning workers that simply lack
//! the knowledge for a task. §4.1 additionally mentions colluding workers that agree on a
//! false answer. The simulator models all of them so that the verification experiments
//! exercise the same failure modes.

use cdas_core::types::Label;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::question::CrowdQuestion;

/// How a simulated worker produces answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerBehavior {
    /// Answers correctly with their (difficulty-adjusted) accuracy; wrong answers are
    /// uniform over the remaining labels. The overwhelmingly common case.
    Diligent,
    /// Ignores the question entirely and picks a uniformly random label ("submit random
    /// answers to all questions", §1). Their true accuracy is `1/m` regardless of profile.
    Spammer,
    /// Colludes with other colluders: deterministically answers with the *first wrong*
    /// label of the domain, so all colluders agree on the same false answer (§1's
    /// "malicious workers may collude to produce a false answer").
    Colluder,
    /// A domain expert: their accuracy is boosted towards 1 by the given factor in `[0,1]`
    /// (0 = no boost, 1 = always correct before difficulty adjustment).
    Expert {
        /// Fraction of the remaining error removed.
        boost: f64,
    },
}

impl WorkerBehavior {
    /// The accuracy this behaviour effectively achieves on a question, given the worker's
    /// nominal accuracy. Used both by the simulator (to generate answers) and by oracle
    /// registries (to compute true accuracies).
    pub fn effective_accuracy(&self, nominal: f64, question: &CrowdQuestion) -> f64 {
        match self {
            WorkerBehavior::Diligent => question.effective_accuracy(nominal),
            WorkerBehavior::Spammer => 1.0 / question.domain.size().max(2) as f64,
            WorkerBehavior::Colluder => 0.0,
            WorkerBehavior::Expert { boost } => {
                let boosted = nominal + (1.0 - nominal) * boost.clamp(0.0, 1.0);
                question.effective_accuracy(boosted)
            }
        }
    }

    /// Produce an answer to the question.
    pub fn answer<R: Rng + ?Sized>(
        &self,
        nominal_accuracy: f64,
        question: &CrowdQuestion,
        rng: &mut R,
    ) -> Label {
        match self {
            WorkerBehavior::Spammer => {
                let idx = rng.random_range(0..question.domain.size().max(1));
                question
                    .domain
                    .get(idx)
                    .cloned()
                    .unwrap_or_else(|| question.ground_truth.clone())
            }
            WorkerBehavior::Colluder => question
                .wrong_answers()
                .first()
                .map(|l| (*l).clone())
                .unwrap_or_else(|| question.ground_truth.clone()),
            WorkerBehavior::Diligent | WorkerBehavior::Expert { .. } => {
                let p = self.effective_accuracy(nominal_accuracy, question);
                if rng.random_bool(p.clamp(0.0, 1.0)) {
                    question.ground_truth.clone()
                } else {
                    let wrong = question.wrong_answers();
                    if wrong.is_empty() {
                        question.ground_truth.clone()
                    } else {
                        let idx = rng.random_range(0..wrong.len());
                        wrong
                            .get(idx)
                            .copied()
                            .unwrap_or(&question.ground_truth)
                            .clone()
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_core::types::{AnswerDomain, QuestionId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn question() -> CrowdQuestion {
        CrowdQuestion::new(
            QuestionId(0),
            AnswerDomain::from_strs(&["a", "b", "c", "d"]),
            Label::from("a"),
        )
    }

    fn empirical_accuracy(behavior: &WorkerBehavior, nominal: f64, n: usize) -> f64 {
        let q = question();
        let mut rng = StdRng::seed_from_u64(17);
        let correct = (0..n)
            .filter(|_| behavior.answer(nominal, &q, &mut rng) == q.ground_truth)
            .count();
        correct as f64 / n as f64
    }

    #[test]
    fn diligent_workers_hit_their_nominal_accuracy() {
        let measured = empirical_accuracy(&WorkerBehavior::Diligent, 0.8, 20_000);
        assert!((measured - 0.8).abs() < 0.01, "measured {measured}");
    }

    #[test]
    fn spammers_answer_at_chance_level() {
        let measured = empirical_accuracy(&WorkerBehavior::Spammer, 0.9, 20_000);
        assert!((measured - 0.25).abs() < 0.02, "measured {measured}");
        assert!(
            (WorkerBehavior::Spammer.effective_accuracy(0.9, &question()) - 0.25).abs() < 1e-12
        );
    }

    #[test]
    fn colluders_always_agree_on_the_same_wrong_answer() {
        let q = question();
        let mut rng = StdRng::seed_from_u64(3);
        let answers: Vec<Label> = (0..50)
            .map(|_| WorkerBehavior::Colluder.answer(0.9, &q, &mut rng))
            .collect();
        assert!(answers.iter().all(|a| a == &answers[0]));
        assert_ne!(answers[0], q.ground_truth);
        assert_eq!(WorkerBehavior::Colluder.effective_accuracy(0.9, &q), 0.0);
    }

    #[test]
    fn experts_beat_their_nominal_accuracy() {
        let nominal = 0.6;
        let expert = WorkerBehavior::Expert { boost: 0.8 };
        let measured = empirical_accuracy(&expert, nominal, 20_000);
        assert!(measured > 0.85, "measured {measured}");
        assert!(expert.effective_accuracy(nominal, &question()) > nominal);
    }

    #[test]
    fn difficulty_reduces_diligent_accuracy() {
        let q = question().with_difficulty(1.0);
        let effective = WorkerBehavior::Diligent.effective_accuracy(0.9, &q);
        assert!((effective - 0.25).abs() < 1e-12);
    }

    #[test]
    fn binary_domain_edge_case() {
        let q = CrowdQuestion::new(
            QuestionId(1),
            AnswerDomain::from_strs(&["yes", "no"]),
            Label::from("yes"),
        );
        let mut rng = StdRng::seed_from_u64(5);
        // Colluders pick the single wrong answer.
        assert_eq!(
            WorkerBehavior::Colluder.answer(0.9, &q, &mut rng).as_str(),
            "no"
        );
        // Spammers pick between the two answers.
        let answer = WorkerBehavior::Spammer.answer(0.9, &q, &mut rng);
        assert!(answer.as_str() == "yes" || answer.as_str() == "no");
    }
}
