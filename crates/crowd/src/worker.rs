//! A simulated crowd worker.

use cdas_core::types::{Label, WorkerId};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::arrival::LatencyModel;
use crate::behavior::WorkerBehavior;
use crate::question::CrowdQuestion;

/// One simulated worker: a latent accuracy, a behaviour model, a public approval rate and a
/// latency profile governing when their answers arrive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatedWorker {
    /// The worker's identifier on the platform.
    pub id: WorkerId,
    /// Latent probability of answering an average-difficulty question correctly.
    /// Hidden from the engine; only the simulator and oracle registries see it.
    pub true_accuracy: f64,
    /// Behaviour model (diligent / spammer / colluder / expert).
    pub behavior: WorkerBehavior,
    /// The publicly visible AMT-style approval rate (poorly correlated with accuracy).
    pub approval_rate: f64,
    /// Distribution of the time the worker takes to return a HIT.
    pub latency: LatencyModel,
}

impl SimulatedWorker {
    /// Create a diligent worker with the given accuracy, full approval and unit latency.
    pub fn diligent(id: WorkerId, accuracy: f64) -> Self {
        SimulatedWorker {
            id,
            true_accuracy: accuracy.clamp(0.0, 1.0),
            behavior: WorkerBehavior::Diligent,
            approval_rate: 1.0,
            latency: LatencyModel::Constant(1.0),
        }
    }

    /// Override the behaviour model.
    pub fn with_behavior(mut self, behavior: WorkerBehavior) -> Self {
        self.behavior = behavior;
        self
    }

    /// Override the approval rate.
    pub fn with_approval_rate(mut self, approval: f64) -> Self {
        self.approval_rate = approval.clamp(0.0, 1.0);
        self
    }

    /// Override the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// The accuracy this worker actually achieves on the given question (behaviour and
    /// difficulty adjusted). This is what an oracle accuracy registry should contain.
    pub fn effective_accuracy(&self, question: &CrowdQuestion) -> f64 {
        self.behavior
            .effective_accuracy(self.true_accuracy, question)
    }

    /// Answer one question.
    pub fn answer<R: Rng + ?Sized>(&self, question: &CrowdQuestion, rng: &mut R) -> Label {
        self.behavior.answer(self.true_accuracy, question, rng)
    }

    /// Answer one question and, when answering correctly, echo (a subset of) the question's
    /// reason keywords — the simulated analogue of the free-text reasons the paper's TSA
    /// interface collects.
    pub fn answer_with_reasons<R: Rng + ?Sized>(
        &self,
        question: &CrowdQuestion,
        rng: &mut R,
    ) -> (Label, Vec<String>) {
        let label = self.answer(question, rng);
        let reasons = if label == question.ground_truth {
            question
                .reason_keywords
                .iter()
                .filter(|_| rng.random_bool(0.8))
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        (label, reasons)
    }

    /// Sample the time (in simulated minutes) this worker takes to return a HIT.
    pub fn sample_latency<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.latency.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_core::types::{AnswerDomain, QuestionId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn question() -> CrowdQuestion {
        CrowdQuestion::new(
            QuestionId(0),
            AnswerDomain::from_strs(&["pos", "neu", "neg"]),
            Label::from("pos"),
        )
        .with_reasons(vec!["plot".to_string(), "acting".to_string()])
    }

    #[test]
    fn builders_clamp_values() {
        let w = SimulatedWorker::diligent(WorkerId(1), 1.7).with_approval_rate(2.0);
        assert_eq!(w.true_accuracy, 1.0);
        assert_eq!(w.approval_rate, 1.0);
    }

    #[test]
    fn diligent_worker_accuracy_is_measurable() {
        let w = SimulatedWorker::diligent(WorkerId(1), 0.75);
        let q = question();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let correct = (0..n)
            .filter(|_| w.answer(&q, &mut rng) == q.ground_truth)
            .count();
        let measured = correct as f64 / n as f64;
        assert!((measured - 0.75).abs() < 0.01);
        assert!((w.effective_accuracy(&q) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reasons_only_accompany_correct_answers() {
        let w = SimulatedWorker::diligent(WorkerId(2), 0.5);
        let q = question();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..200 {
            let (label, reasons) = w.answer_with_reasons(&q, &mut rng);
            if label != q.ground_truth {
                assert!(reasons.is_empty());
            } else {
                assert!(reasons.iter().all(|r| q.reason_keywords.contains(r)));
            }
        }
    }

    #[test]
    fn spammer_behaviour_overrides_accuracy() {
        let w = SimulatedWorker::diligent(WorkerId(3), 0.95).with_behavior(WorkerBehavior::Spammer);
        let q = question();
        assert!((w.effective_accuracy(&q) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn latency_sampling_uses_the_model() {
        let w =
            SimulatedWorker::diligent(WorkerId(4), 0.8).with_latency(LatencyModel::Constant(7.5));
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(w.sample_latency(&mut rng), 7.5);
    }
}
