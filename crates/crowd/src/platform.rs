//! The simulated crowdsourcing platform: publish HITs, receive answers asynchronously,
//! cancel HITs early, and get charged per delivered assignment (§3.1's economic model,
//! including the paper's footnote that a cancelled HIT does not pay workers who have not
//! submitted yet).

use std::collections::BTreeMap;

use cdas_core::economics::CostModel;
use cdas_core::types::{HitId, Label, QuestionId, WorkerId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::arrival::ArrivalSchedule;
use crate::hit::{HitRequest, PublishedHit};
use crate::pool::WorkerPool;

/// One worker's answer to one question of a HIT, delivered at a simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerAnswer {
    /// The HIT the answer belongs to.
    pub hit: HitId,
    /// The answering worker.
    pub worker: WorkerId,
    /// The question answered.
    pub question: QuestionId,
    /// The chosen label.
    pub label: Label,
    /// Reason keywords the worker attached (empty for wrong or lazy answers).
    pub keywords: Vec<String>,
    /// Simulated time (minutes since publication) the answer arrived at.
    pub arrived_at: f64,
    /// The worker's publicly visible approval rate at submission time.
    pub approval_rate: f64,
}

/// The interface the crowdsourcing engine programs against. `SimulatedPlatform` is the only
/// implementation in this repository; a real AMT adapter would implement the same trait.
pub trait CrowdPlatform {
    /// Publish a HIT and return its identifier.
    fn publish(&mut self, request: HitRequest) -> HitId;

    /// Publish a HIT restricted to an explicit set of workers (the lease-aware path used
    /// by the multi-job scheduler: the caller checked the workers out of a
    /// [`crate::lease::PoolLedger`] first, so concurrent HITs never share a worker).
    ///
    /// Platforms without assignment control (e.g. a plain AMT adapter) may ignore the
    /// restriction; the default implementation falls back to [`publish`](Self::publish).
    fn publish_to(&mut self, request: HitRequest, workers: &[WorkerId]) -> HitId {
        let _ = workers;
        self.publish(request)
    }

    /// All answers of the HIT that have *arrived* by `now` (minutes since publication) and
    /// have not been returned by a previous poll.
    fn poll(&mut self, hit: HitId, now: f64) -> Vec<WorkerAnswer>;

    /// Cancel the outstanding assignments of a HIT. Returns the number of per-question
    /// answers that will now never be delivered (and never be paid for).
    fn cancel(&mut self, hit: HitId) -> usize;

    /// Total amount charged to the requester so far.
    fn total_cost(&self) -> f64;
}

struct HitState {
    hit: PublishedHit,
    /// Every answer the assigned workers will eventually produce, sorted by arrival time.
    pending: Vec<WorkerAnswer>,
    /// Index of the next pending answer to deliver.
    delivered: usize,
    cancelled: bool,
}

/// A deterministic, in-memory simulation of an AMT-like platform backed by a
/// [`WorkerPool`].
pub struct SimulatedPlatform {
    pool: WorkerPool,
    cost_model: CostModel,
    rng: StdRng,
    hits: BTreeMap<HitId, HitState>,
    next_hit: u64,
    charged: f64,
}

impl SimulatedPlatform {
    /// Create a platform over the given pool. All randomness (worker assignment, answer
    /// generation, latencies) derives from `seed`.
    pub fn new(pool: WorkerPool, cost_model: CostModel, seed: u64) -> Self {
        SimulatedPlatform {
            pool,
            cost_model,
            rng: StdRng::seed_from_u64(seed),
            hits: BTreeMap::new(),
            next_hit: 0,
            charged: 0.0,
        }
    }

    /// The worker pool backing the platform.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The published state of a HIT, if it exists.
    pub fn hit(&self, id: HitId) -> Option<&PublishedHit> {
        self.hits.get(&id).map(|s| &s.hit)
    }

    /// Convenience for experiments: publish a HIT and immediately return *all* of its
    /// answers in arrival order (as if polled at the end of time), charging for all of
    /// them.
    pub fn publish_and_collect(&mut self, request: HitRequest) -> (HitId, Vec<WorkerAnswer>) {
        let id = self.publish(request);
        let answers = self.poll(id, f64::INFINITY);
        (id, answers)
    }

    /// Admit a HIT with an already-chosen worker set: sample per-worker completion times,
    /// pre-generate every answer in arrival order, and register the HIT state.
    fn admit(
        &mut self,
        request: HitRequest,
        assigned: Vec<crate::worker::SimulatedWorker>,
    ) -> HitId {
        let id = HitId(self.next_hit);
        self.next_hit += 1;

        // One completion time per worker: a worker submits all their answers when they
        // finish the HIT.
        let times: Vec<f64> = assigned
            .iter()
            .map(|w| w.sample_latency(&mut self.rng))
            .collect();
        let schedule = ArrivalSchedule::from_times(times);

        let mut pending = Vec::with_capacity(assigned.len() * request.questions.len());
        for (worker_idx, finished_at) in schedule.iter() {
            let worker = &assigned[worker_idx];
            for question in &request.questions {
                let (label, keywords) = worker.answer_with_reasons(question, &mut self.rng);
                pending.push(WorkerAnswer {
                    hit: id,
                    worker: worker.id,
                    question: question.id,
                    label,
                    keywords,
                    arrived_at: finished_at,
                    approval_rate: worker.approval_rate,
                });
            }
        }

        self.hits.insert(
            id,
            HitState {
                hit: PublishedHit {
                    id,
                    request,
                    published_at: 0.0,
                },
                pending,
                delivered: 0,
                cancelled: false,
            },
        );
        id
    }
}

impl CrowdPlatform for SimulatedPlatform {
    fn publish(&mut self, request: HitRequest) -> HitId {
        // Assign n random workers from the pool (AMT: "n random workers provide answers").
        let assigned: Vec<_> = self
            .pool
            .assign(request.assignments, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();
        self.admit(request, assigned)
    }

    fn publish_to(&mut self, request: HitRequest, workers: &[WorkerId]) -> HitId {
        // The caller (typically the scheduler's lease ledger) names the exact worker set;
        // ids the pool does not know are skipped rather than invented, and duplicates are
        // collapsed so a repeated id cannot double-assign a worker to the same questions.
        let mut seen = std::collections::BTreeSet::new();
        let assigned: Vec<_> = workers
            .iter()
            .filter(|id| seen.insert(**id))
            .filter_map(|id| self.pool.get(*id))
            .cloned()
            .collect();
        self.admit(request, assigned)
    }

    fn poll(&mut self, hit: HitId, now: f64) -> Vec<WorkerAnswer> {
        let Some(state) = self.hits.get_mut(&hit) else {
            return Vec::new();
        };
        if state.cancelled {
            return Vec::new();
        }
        let mut delivered = Vec::new();
        while state.delivered < state.pending.len()
            && state.pending[state.delivered].arrived_at <= now
        {
            delivered.push(state.pending[state.delivered].clone());
            state.delivered += 1;
        }
        // The requester is charged per delivered per-question answer, pro-rated from the
        // per-assignment price over the batch size.
        let batch = state.hit.request.questions.len().max(1);
        self.charged += self.cost_model.per_assignment() * delivered.len() as f64 / batch as f64;
        delivered
    }

    fn cancel(&mut self, hit: HitId) -> usize {
        let Some(state) = self.hits.get_mut(&hit) else {
            return 0;
        };
        if state.cancelled {
            return 0;
        }
        state.cancelled = true;
        state.pending.len() - state.delivered
    }

    fn total_cost(&self) -> f64 {
        self.charged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::question::CrowdQuestion;
    use cdas_core::types::AnswerDomain;

    fn platform(pool_size: usize, accuracy: f64) -> SimulatedPlatform {
        let pool = WorkerPool::generate(&PoolConfig::clean(pool_size, accuracy, 5));
        SimulatedPlatform::new(pool, CostModel::new(0.01, 0.001).unwrap(), 99)
    }

    fn request(questions: u64, assignments: usize) -> HitRequest {
        let qs: Vec<CrowdQuestion> = (0..questions)
            .map(|i| {
                CrowdQuestion::new(
                    QuestionId(i),
                    AnswerDomain::from_strs(&["pos", "neu", "neg"]),
                    Label::from("pos"),
                )
            })
            .collect();
        HitRequest::new(qs, assignments, 0.01)
    }

    #[test]
    fn publish_and_collect_delivers_all_answers() {
        let mut p = platform(50, 0.8);
        let (id, answers) = p.publish_and_collect(request(4, 5));
        assert_eq!(answers.len(), 20, "5 workers × 4 questions");
        assert!(p.hit(id).is_some());
        // Arrival order is non-decreasing.
        assert!(answers
            .windows(2)
            .all(|w| w[0].arrived_at <= w[1].arrived_at));
        // Workers are distinct per assignment.
        let mut workers: Vec<u64> = answers.iter().map(|a| a.worker.0).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 5);
        // The full price was charged: 5 assignments × (0.01 + 0.001).
        assert!((p.total_cost() - 0.055).abs() < 1e-9);
    }

    #[test]
    fn poll_respects_time_and_does_not_redeliver() {
        let mut p = platform(50, 0.8);
        let id = p.publish(request(2, 7));
        let early = p.poll(id, 0.5);
        let later = p.poll(id, f64::INFINITY);
        assert_eq!(early.len() + later.len(), 14);
        // Nothing is delivered twice.
        let mut seen: Vec<(u64, u64)> = early
            .iter()
            .chain(later.iter())
            .map(|a| (a.worker.0, a.question.0))
            .collect();
        let total = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn cancel_stops_delivery_and_charging() {
        let mut p = platform(50, 0.8);
        let id = p.publish(request(1, 9));
        // Deliver only the earliest answers, then cancel.
        let some = p.poll(id, 1.0);
        let cost_before = p.total_cost();
        let skipped = p.cancel(id);
        assert_eq!(some.len() + skipped, 9);
        assert!(p.poll(id, f64::INFINITY).is_empty());
        assert_eq!(p.total_cost(), cost_before, "no charge after cancellation");
        // Cancelling twice is a no-op.
        assert_eq!(p.cancel(id), 0);
    }

    #[test]
    fn high_accuracy_pool_answers_mostly_correctly() {
        let mut p = platform(100, 0.9);
        let (_, answers) = p.publish_and_collect(request(20, 9));
        let correct = answers.iter().filter(|a| a.label.as_str() == "pos").count();
        let accuracy = correct as f64 / answers.len() as f64;
        assert!(
            (accuracy - 0.9).abs() < 0.06,
            "measured accuracy {accuracy}"
        );
    }

    #[test]
    fn unknown_hit_is_handled_gracefully() {
        let mut p = platform(10, 0.8);
        assert!(p.poll(HitId(99), 1.0).is_empty());
        assert_eq!(p.cancel(HitId(99)), 0);
        assert!(p.hit(HitId(99)).is_none());
        assert_eq!(p.total_cost(), 0.0);
    }

    #[test]
    fn publish_to_uses_exactly_the_named_workers() {
        let mut p = platform(50, 0.8);
        let chosen = [WorkerId(3), WorkerId(17), WorkerId(42)];
        let id = p.publish_to(request(4, 3), &chosen);
        let answers = p.poll(id, f64::INFINITY);
        assert_eq!(answers.len(), 12, "3 workers × 4 questions");
        let mut seen: Vec<u64> = answers.iter().map(|a| a.worker.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![3, 17, 42]);
    }

    #[test]
    fn publish_to_skips_unknown_workers_and_collapses_duplicates() {
        let mut p = platform(10, 0.8);
        let id = p.publish_to(request(2, 2), &[WorkerId(1), WorkerId(999)]);
        let answers = p.poll(id, f64::INFINITY);
        assert_eq!(answers.len(), 2, "only the known worker answers");
        assert!(answers.iter().all(|a| a.worker == WorkerId(1)));
        // A repeated id must not double-assign the worker to the same questions.
        let id = p.publish_to(request(3, 2), &[WorkerId(4), WorkerId(4)]);
        let answers = p.poll(id, f64::INFINITY);
        assert_eq!(answers.len(), 3, "duplicate ids collapse to one assignment");
    }

    #[test]
    fn platform_is_deterministic_for_a_seed() {
        let collect = || {
            let pool = WorkerPool::generate(&PoolConfig::default());
            let mut p = SimulatedPlatform::new(pool, CostModel::default(), 7);
            let (_, answers) = p.publish_and_collect(request(3, 5));
            answers
                .iter()
                .map(|a| (a.worker.0, a.question.0, a.label.as_str().to_string()))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }
}
