//! The simulated crowdsourcing platform: publish HITs, receive answers asynchronously,
//! cancel HITs early, and get charged per delivered assignment (§3.1's economic model,
//! including the paper's footnote that a cancelled HIT does not pay workers who have not
//! submitted yet).

use std::collections::BTreeMap;

use cdas_core::economics::CostModel;
use cdas_core::types::{HitId, Label, QuestionId, WorkerId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::arrival::ArrivalSchedule;
use crate::hit::{HitRequest, PublishedHit};
use crate::pool::WorkerPool;

/// One worker's answer to one question of a HIT, delivered at a simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerAnswer {
    /// The HIT the answer belongs to.
    pub hit: HitId,
    /// The answering worker.
    pub worker: WorkerId,
    /// The question answered.
    pub question: QuestionId,
    /// The chosen label.
    pub label: Label,
    /// Reason keywords the worker attached (empty for wrong or lazy answers).
    pub keywords: Vec<String>,
    /// Simulated time (minutes since publication) the answer arrived at.
    pub arrived_at: f64,
    /// The worker's publicly visible approval rate at submission time.
    pub approval_rate: f64,
}

/// What a [`CrowdPlatform::cancel`] call took back: how much work was still outstanding
/// when the HIT was cancelled, and what the cancellation is worth.
///
/// The paper's footnote to §3.1 is the economic contract: workers who already submitted
/// are paid, workers who have not are not. A mid-flight cancellation therefore *refunds*
/// every uncollected assignment (it is never charged) and — because those workers would
/// otherwise have kept working until their completion time — returns their remaining
/// simulated minutes to the crowd, which is what a scheduler can re-lease to another job.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[must_use = "a CancelReceipt carries the refunded answers and reclaimed minutes; dropping it discards that accounting"]
pub struct CancelReceipt {
    /// Per-question answers that will now never be delivered (and never be paid for).
    pub answers_cancelled: usize,
    /// Distinct workers whose submission was cut off before arrival.
    pub workers_cancelled: usize,
    /// Simulated worker-minutes reclaimed: for each cancelled worker, the time between the
    /// cancellation and the moment their submission would have arrived. Zero when the HIT
    /// was cancelled "at the end of time" (nothing left to reclaim — the motivation for
    /// clocked collection).
    pub reclaimed_minutes: f64,
}

impl CancelReceipt {
    /// A receipt for a cancel that found nothing outstanding (unknown HIT, double cancel,
    /// or a HIT whose answers were all already delivered).
    pub fn empty() -> Self {
        CancelReceipt::default()
    }

    /// Whether the cancellation actually cut anything off.
    pub fn cancelled_anything(&self) -> bool {
        self.answers_cancelled > 0
    }
}

/// The interface the crowdsourcing engine programs against. `SimulatedPlatform` is the
/// primary implementation in this repository (a [`crate::sharded::ShardedPlatform`]
/// partitions several of them for parallel fleets); a real AMT adapter would implement
/// the same trait.
///
/// The trait requires `Send`: the parallel scheduler
/// (`cdas_engine::scheduler::JobScheduler::run_parallel`) moves each platform shard into
/// its own OS thread, so any implementation must be transferable across threads. Every
/// reasonable platform already is — the simulated one is plain owned data, and a real
/// adapter holds an HTTP client.
pub trait CrowdPlatform: Send {
    /// Publish a HIT and return its identifier.
    fn publish(&mut self, request: HitRequest) -> HitId;

    /// Publish a HIT restricted to an explicit set of workers (the lease-aware path used
    /// by the multi-job scheduler: the caller checked the workers out of a
    /// [`crate::lease::PoolLedger`] first, so concurrent HITs never share a worker).
    ///
    /// Platforms without assignment control (e.g. a plain AMT adapter) may ignore the
    /// restriction; the default implementation falls back to [`publish`](Self::publish).
    fn publish_to(&mut self, request: HitRequest, workers: &[WorkerId]) -> HitId {
        let _ = workers;
        self.publish(request)
    }

    /// Inform the platform of the current simulated time. HITs published afterwards are
    /// stamped `published_at = now` and their answers arrive at `now + latency`, so a
    /// batch published mid-run can never deliver answers from before its own publication.
    /// Defaults to a no-op for platforms with their own notion of time (a real AMT
    /// adapter); the simulated platform's clock is monotone, ignoring backwards and
    /// non-finite targets.
    fn advance_time(&mut self, now: f64) {
        let _ = now;
    }

    /// All answers of the HIT that have *arrived* by the absolute simulated time `now` and
    /// have not been returned by a previous poll.
    fn poll(&mut self, hit: HitId, now: f64) -> Vec<WorkerAnswer>;

    /// Arrival time of the earliest answer of the HIT that has not been delivered yet, or
    /// `None` when nothing further will arrive (everything delivered, the HIT cancelled,
    /// or the HIT unknown).
    ///
    /// This is the event source of the discrete-event simulation: a clocked collector
    /// advances its [`crate::clock::SimClock`] to this time and polls. Platforms that
    /// cannot look ahead (a real AMT adapter polling a remote queue) may keep the default
    /// `None`; clocked callers then degrade to a single end-of-time poll.
    fn next_arrival(&self, hit: HitId) -> Option<f64> {
        let _ = hit;
        None
    }

    /// Cancel the outstanding assignments of a HIT at simulated time `now`. Uncollected
    /// assignments are marked unpaid (they are refunded, never charged) and the receipt
    /// reports how many answers and workers were cut off and how many worker-minutes the
    /// cancellation reclaimed relative to `now`.
    ///
    /// **Must be idempotent.** Two engine code paths can legitimately cancel the same
    /// HIT — the clocked collector cancels on termination, and the scheduler's error
    /// cleanup cancels whatever is still in flight — so a second (or later) cancel must
    /// return [`CancelReceipt::empty`] rather than refunding `reclaimed_minutes` or
    /// `answers_cancelled` again. A double-counting cancel would let a fleet report more
    /// reclaimed worker-minutes than its workers ever had.
    fn cancel(&mut self, hit: HitId, now: f64) -> CancelReceipt;

    /// Total amount charged to the requester so far.
    fn total_cost(&self) -> f64;
}

struct HitState {
    hit: PublishedHit,
    /// Every answer the assigned workers will eventually produce, sorted by arrival time.
    pending: Vec<WorkerAnswer>,
    /// Index of the next pending answer to deliver.
    delivered: usize,
    cancelled: bool,
}

/// A deterministic, in-memory simulation of an AMT-like platform backed by a
/// [`WorkerPool`].
pub struct SimulatedPlatform {
    pool: WorkerPool,
    cost_model: CostModel,
    rng: StdRng,
    hits: BTreeMap<HitId, HitState>,
    next_hit: u64,
    /// Distance between consecutive HIT ids (1 for a standalone platform; the shard
    /// count for a platform shard, giving every shard a disjoint id arithmetic class).
    hit_stride: u64,
    charged: f64,
    /// Current simulated time; set via [`CrowdPlatform::advance_time`], stamps
    /// publications.
    now: f64,
}

impl SimulatedPlatform {
    /// Create a platform over the given pool. All randomness (worker assignment, answer
    /// generation, latencies) derives from `seed`.
    pub fn new(pool: WorkerPool, cost_model: CostModel, seed: u64) -> Self {
        SimulatedPlatform {
            pool,
            cost_model,
            rng: StdRng::seed_from_u64(seed),
            hits: BTreeMap::new(),
            next_hit: 0,
            hit_stride: 1,
            charged: 0.0,
            now: 0.0,
        }
    }

    /// Restrict the platform to a disjoint slice of the HIT-id space: ids start at
    /// `offset` and advance by `stride`. Shard `i` of an `n`-way
    /// [`crate::sharded::ShardedPlatform`] uses `(i, n)`, so two shards can never mint
    /// the same [`HitId`] and a fleet's dispatch timeline stays unambiguous when shard
    /// records are merged. `(0, 1)` — the default — is the whole id space.
    ///
    /// Only meaningful on a fresh platform; stride 0 is clamped to 1.
    pub fn with_hit_namespace(mut self, offset: u64, stride: u64) -> Self {
        self.next_hit = offset;
        self.hit_stride = stride.max(1);
        self
    }

    /// The worker pool backing the platform.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The published state of a HIT, if it exists.
    pub fn hit(&self, id: HitId) -> Option<&PublishedHit> {
        self.hits.get(&id).map(|s| &s.hit)
    }

    /// Convenience for experiments: publish a HIT and immediately return *all* of its
    /// answers in arrival order (as if polled at the end of time), charging for all of
    /// them.
    pub fn publish_and_collect(&mut self, request: HitRequest) -> (HitId, Vec<WorkerAnswer>) {
        let id = self.publish(request);
        let answers = self.poll(id, f64::INFINITY);
        (id, answers)
    }

    /// Admit a HIT with an already-chosen worker set: sample per-worker completion times,
    /// pre-generate every answer in arrival order, and register the HIT state.
    fn admit(
        &mut self,
        request: HitRequest,
        assigned: Vec<crate::worker::SimulatedWorker>,
    ) -> HitId {
        let id = HitId(self.next_hit);
        self.next_hit += self.hit_stride;

        // One completion time per worker: a worker submits all their answers when they
        // finish the HIT.
        let times: Vec<f64> = assigned
            .iter()
            .map(|w| w.sample_latency(&mut self.rng))
            .collect();
        let schedule = ArrivalSchedule::from_times(times);

        let mut pending = Vec::with_capacity(assigned.len() * request.questions.len());
        for (worker_idx, finished_at) in schedule.iter() {
            // The schedule only yields indexes of the workers it was built
            // from, so a miss is unreachable.
            let Some(worker) = assigned.get(worker_idx) else {
                continue;
            };
            for question in &request.questions {
                let (label, keywords) = worker.answer_with_reasons(question, &mut self.rng);
                pending.push(WorkerAnswer {
                    hit: id,
                    worker: worker.id,
                    question: question.id,
                    label,
                    keywords,
                    // Latencies are relative to publication; answers arrive on the
                    // absolute simulated timeline.
                    arrived_at: self.now + finished_at,
                    approval_rate: worker.approval_rate,
                });
            }
        }

        self.hits.insert(
            id,
            HitState {
                hit: PublishedHit {
                    id,
                    request,
                    published_at: self.now,
                },
                pending,
                delivered: 0,
                cancelled: false,
            },
        );
        id
    }
}

impl CrowdPlatform for SimulatedPlatform {
    fn publish(&mut self, request: HitRequest) -> HitId {
        // Assign n random workers from the pool (AMT: "n random workers provide answers").
        let assigned: Vec<_> = self
            .pool
            .assign(request.assignments, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();
        self.admit(request, assigned)
    }

    fn publish_to(&mut self, request: HitRequest, workers: &[WorkerId]) -> HitId {
        // The caller (typically the scheduler's lease ledger) names the exact worker set;
        // ids the pool does not know are skipped rather than invented, and duplicates are
        // collapsed so a repeated id cannot double-assign a worker to the same questions.
        let mut seen = std::collections::BTreeSet::new();
        let assigned: Vec<_> = workers
            .iter()
            .filter(|id| seen.insert(**id))
            .filter_map(|id| self.pool.get(*id))
            .cloned()
            .collect();
        self.admit(request, assigned)
    }

    fn poll(&mut self, hit: HitId, now: f64) -> Vec<WorkerAnswer> {
        let Some(state) = self.hits.get_mut(&hit) else {
            return Vec::new();
        };
        if state.cancelled {
            return Vec::new();
        }
        let mut delivered = Vec::new();
        while let Some(answer) = state.pending.get(state.delivered) {
            if answer.arrived_at > now {
                break;
            }
            delivered.push(answer.clone());
            state.delivered += 1;
        }
        // The requester is charged per delivered per-question answer, pro-rated from the
        // per-assignment price over the batch size.
        let batch = state.hit.request.questions.len().max(1);
        self.charged += self.cost_model.per_assignment() * delivered.len() as f64 / batch as f64;
        delivered
    }

    fn advance_time(&mut self, now: f64) {
        if now.is_finite() && now > self.now {
            self.now = now;
        }
    }

    fn next_arrival(&self, hit: HitId) -> Option<f64> {
        let state = self.hits.get(&hit)?;
        if state.cancelled {
            return None;
        }
        state.pending.get(state.delivered).map(|a| a.arrived_at)
    }

    fn cancel(&mut self, hit: HitId, now: f64) -> CancelReceipt {
        let Some(state) = self.hits.get_mut(&hit) else {
            return CancelReceipt::empty();
        };
        if state.cancelled {
            return CancelReceipt::empty();
        }
        state.cancelled = true;
        // A worker submits all their answers at once, and `poll` only ever delivers whole
        // submissions, so the undelivered tail is a set of complete submissions. Each
        // cancelled worker stops working `now` instead of at their completion time; the
        // difference is the reclaimed simulated time. An end-of-time cancel (`now` not
        // finite, or past every arrival) reclaims nothing.
        let mut workers = BTreeMap::new();
        for answer in state.pending.iter().skip(state.delivered) {
            workers.entry(answer.worker).or_insert(answer.arrived_at);
        }
        let reclaimed_minutes = if now.is_finite() {
            workers.values().map(|t| (t - now).max(0.0)).sum()
        } else {
            0.0
        };
        CancelReceipt {
            answers_cancelled: state.pending.len() - state.delivered,
            workers_cancelled: workers.len(),
            reclaimed_minutes,
        }
    }

    fn total_cost(&self) -> f64 {
        self.charged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::question::CrowdQuestion;
    use cdas_core::types::AnswerDomain;

    fn platform(pool_size: usize, accuracy: f64) -> SimulatedPlatform {
        let pool = WorkerPool::generate(&PoolConfig::clean(pool_size, accuracy, 5));
        SimulatedPlatform::new(pool, CostModel::new(0.01, 0.001).unwrap(), 99)
    }

    /// Like [`platform`], but with exponentially distributed worker latencies so arrival
    /// times actually spread out (clean pools answer at a constant 1.0 minutes).
    fn staggered_platform(pool_size: usize, accuracy: f64) -> SimulatedPlatform {
        let pool = WorkerPool::generate(&PoolConfig {
            latency: crate::arrival::LatencyModel::Exponential { mean: 5.0 },
            ..PoolConfig::clean(pool_size, accuracy, 5)
        });
        SimulatedPlatform::new(pool, CostModel::new(0.01, 0.001).unwrap(), 99)
    }

    fn request(questions: u64, assignments: usize) -> HitRequest {
        let qs: Vec<CrowdQuestion> = (0..questions)
            .map(|i| {
                CrowdQuestion::new(
                    QuestionId(i),
                    AnswerDomain::from_strs(&["pos", "neu", "neg"]),
                    Label::from("pos"),
                )
            })
            .collect();
        HitRequest::new(qs, assignments, 0.01)
    }

    #[test]
    fn publish_and_collect_delivers_all_answers() {
        let mut p = platform(50, 0.8);
        let (id, answers) = p.publish_and_collect(request(4, 5));
        assert_eq!(answers.len(), 20, "5 workers × 4 questions");
        assert!(p.hit(id).is_some());
        // Arrival order is non-decreasing.
        assert!(answers
            .windows(2)
            .all(|w| w[0].arrived_at <= w[1].arrived_at));
        // Workers are distinct per assignment.
        let mut workers: Vec<u64> = answers.iter().map(|a| a.worker.0).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 5);
        // The full price was charged: 5 assignments × (0.01 + 0.001).
        assert!((p.total_cost() - 0.055).abs() < 1e-9);
    }

    #[test]
    fn poll_respects_time_and_does_not_redeliver() {
        let mut p = platform(50, 0.8);
        let id = p.publish(request(2, 7));
        let early = p.poll(id, 0.5);
        let later = p.poll(id, f64::INFINITY);
        assert_eq!(early.len() + later.len(), 14);
        // Nothing is delivered twice.
        let mut seen: Vec<(u64, u64)> = early
            .iter()
            .chain(later.iter())
            .map(|a| (a.worker.0, a.question.0))
            .collect();
        let total = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn cancel_stops_delivery_and_charging() {
        let mut p = staggered_platform(50, 0.8);
        let id = p.publish(request(1, 9));
        // Deliver only the earliest answers, then cancel.
        let some = p.poll(id, 1.0);
        let cost_before = p.total_cost();
        let receipt = p.cancel(id, 1.0);
        assert_eq!(some.len() + receipt.answers_cancelled, 9);
        assert_eq!(
            receipt.workers_cancelled, receipt.answers_cancelled,
            "one question per HIT: one cancelled answer per cancelled worker"
        );
        assert!(receipt.cancelled_anything());
        assert!(
            receipt.reclaimed_minutes > 0.0,
            "cancelled workers had simulated time left on the clock"
        );
        assert!(p.poll(id, f64::INFINITY).is_empty());
        assert_eq!(
            p.next_arrival(id),
            None,
            "cancelled HITs have no events left"
        );
        assert_eq!(p.total_cost(), cost_before, "no charge after cancellation");
        // Cancelling twice is a no-op.
        assert_eq!(p.cancel(id, 1.0), CancelReceipt::empty());
    }

    #[test]
    fn double_cancel_never_double_refunds_reclaimed_minutes() {
        // Regression for the two-caller scenario the trait contract names: the clocked
        // collector cancels a terminated HIT at time t₁, and the scheduler's cleanup
        // sweeps the same HIT again at a later t₂. The second cancel must be a pure
        // no-op — an empty receipt — so summing receipts (which the fleet rollups do)
        // counts every reclaimed minute and cancelled answer exactly once.
        let mut p = staggered_platform(50, 0.8);
        let id = p.publish(request(2, 8));
        p.poll(id, 1.0);
        let first = p.cancel(id, 1.0); // collector-finalize path
        assert!(first.cancelled_anything());
        assert!(first.reclaimed_minutes > 0.0);
        let second = p.cancel(id, 3.5); // scheduler-cleanup path, later timestamp
        assert_eq!(second, CancelReceipt::empty());
        let third = p.cancel(id, f64::INFINITY); // end-of-time sweep
        assert_eq!(third, CancelReceipt::empty());
        let total = first.reclaimed_minutes + second.reclaimed_minutes + third.reclaimed_minutes;
        assert_eq!(total, first.reclaimed_minutes, "minutes refunded once");
        let answers = first.answers_cancelled + second.answers_cancelled + third.answers_cancelled;
        assert_eq!(answers, first.answers_cancelled, "answers refunded once");
    }

    #[test]
    fn hit_namespaces_partition_the_id_space() {
        // Two shards of a 2-way split mint interleaved, disjoint id classes.
        let mut even = platform(20, 0.8).with_hit_namespace(0, 2);
        let mut odd = platform(20, 0.8).with_hit_namespace(1, 2);
        let e: Vec<u64> = (0..3).map(|_| even.publish(request(1, 2)).0).collect();
        let o: Vec<u64> = (0..3).map(|_| odd.publish(request(1, 2)).0).collect();
        assert_eq!(e, vec![0, 2, 4]);
        assert_eq!(o, vec![1, 3, 5]);
        // The default namespace is the whole space, and stride 0 clamps to 1.
        let mut whole = platform(20, 0.8).with_hit_namespace(0, 0);
        assert_eq!(whole.publish(request(1, 2)), HitId(0));
        assert_eq!(whole.publish(request(1, 2)), HitId(1));
    }

    #[test]
    fn end_of_time_cancel_reclaims_nothing() {
        let mut p = platform(50, 0.8);
        let id = p.publish(request(2, 5));
        let receipt = p.cancel(id, f64::INFINITY);
        assert_eq!(receipt.answers_cancelled, 10);
        assert_eq!(receipt.workers_cancelled, 5);
        assert_eq!(
            receipt.reclaimed_minutes, 0.0,
            "cancelling at the end of time only replays history"
        );
    }

    #[test]
    fn cancel_reclaims_the_minutes_the_workers_had_left() {
        let mut p = staggered_platform(50, 0.8);
        let id = p.publish(request(1, 6));
        // Read the would-be arrival times through next_arrival by draining one at a time.
        let mut arrivals = Vec::new();
        while let Some(t) = p.next_arrival(id) {
            arrivals.push(t);
            p.poll(id, t);
        }
        assert_eq!(arrivals.len(), 6);

        // Re-run the identical schedule on a fresh platform and cancel halfway.
        let mut p = staggered_platform(50, 0.8);
        let id = p.publish(request(1, 6));
        let cut = arrivals[2];
        p.poll(id, cut);
        let receipt = p.cancel(id, cut);
        assert_eq!(receipt.workers_cancelled, 3);
        let expected: f64 = arrivals[3..].iter().map(|t| t - cut).sum();
        assert!(
            (receipt.reclaimed_minutes - expected).abs() < 1e-9,
            "reclaimed {} expected {expected}",
            receipt.reclaimed_minutes
        );
    }

    #[test]
    fn next_arrival_tracks_the_undelivered_frontier() {
        let mut p = staggered_platform(50, 0.8);
        let id = p.publish(request(2, 4));
        let first = p.next_arrival(id).expect("answers pending");
        assert!(p.poll(id, first / 2.0).is_empty(), "nothing arrives early");
        assert_eq!(
            p.next_arrival(id),
            Some(first),
            "an empty poll does not move the frontier"
        );
        let delivered = p.poll(id, first);
        assert!(!delivered.is_empty());
        if let Some(next) = p.next_arrival(id) {
            assert!(next > first, "the frontier advances past delivered answers");
        }
        p.poll(id, f64::INFINITY);
        assert_eq!(
            p.next_arrival(id),
            None,
            "fully drained HITs have no events"
        );
    }

    #[test]
    fn high_accuracy_pool_answers_mostly_correctly() {
        let mut p = platform(100, 0.9);
        let (_, answers) = p.publish_and_collect(request(20, 9));
        let correct = answers.iter().filter(|a| a.label.as_str() == "pos").count();
        let accuracy = correct as f64 / answers.len() as f64;
        assert!(
            (accuracy - 0.9).abs() < 0.06,
            "measured accuracy {accuracy}"
        );
    }

    #[test]
    fn unknown_hit_is_handled_gracefully() {
        let mut p = platform(10, 0.8);
        assert!(p.poll(HitId(99), 1.0).is_empty());
        assert_eq!(p.cancel(HitId(99), 1.0), CancelReceipt::empty());
        assert_eq!(p.next_arrival(HitId(99)), None);
        assert!(p.hit(HitId(99)).is_none());
        assert_eq!(p.total_cost(), 0.0);
    }

    #[test]
    fn publish_to_uses_exactly_the_named_workers() {
        let mut p = platform(50, 0.8);
        let chosen = [WorkerId(3), WorkerId(17), WorkerId(42)];
        let id = p.publish_to(request(4, 3), &chosen);
        let answers = p.poll(id, f64::INFINITY);
        assert_eq!(answers.len(), 12, "3 workers × 4 questions");
        let mut seen: Vec<u64> = answers.iter().map(|a| a.worker.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![3, 17, 42]);
    }

    #[test]
    fn publish_to_skips_unknown_workers_and_collapses_duplicates() {
        let mut p = platform(10, 0.8);
        let id = p.publish_to(request(2, 2), &[WorkerId(1), WorkerId(999)]);
        let answers = p.poll(id, f64::INFINITY);
        assert_eq!(answers.len(), 2, "only the known worker answers");
        assert!(answers.iter().all(|a| a.worker == WorkerId(1)));
        // A repeated id must not double-assign the worker to the same questions.
        let id = p.publish_to(request(3, 2), &[WorkerId(4), WorkerId(4)]);
        let answers = p.poll(id, f64::INFINITY);
        assert_eq!(answers.len(), 3, "duplicate ids collapse to one assignment");
    }

    #[test]
    fn publications_after_advance_time_cannot_arrive_in_the_past() {
        let mut p = staggered_platform(50, 0.8);
        p.advance_time(7.5);
        // Backwards and non-finite targets are ignored: the platform clock is monotone.
        p.advance_time(2.0);
        p.advance_time(f64::NAN);
        p.advance_time(f64::INFINITY);
        let id = p.publish(request(2, 5));
        assert_eq!(p.hit(id).unwrap().published_at, 7.5);
        assert!(p.poll(id, 7.5).is_empty(), "no answer precedes publication");
        let answers = p.poll(id, f64::INFINITY);
        assert_eq!(answers.len(), 10);
        assert!(answers.iter().all(|a| a.arrived_at > 7.5));
    }

    #[test]
    fn platform_is_deterministic_for_a_seed() {
        let collect = || {
            let pool = WorkerPool::generate(&PoolConfig::default());
            let mut p = SimulatedPlatform::new(pool, CostModel::default(), 7);
            let (_, answers) = p.publish_and_collect(request(3, 5));
            answers
                .iter()
                .map(|a| (a.worker.0, a.question.0, a.label.as_str().to_string()))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }
}
