//! The worker pool: the population of candidate workers a platform can assign to a HIT.

use cdas_core::accuracy::AccuracyRegistry;
use cdas_core::types::WorkerId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::approval::ApprovalModel;
use crate::arrival::LatencyModel;
use crate::behavior::WorkerBehavior;
use crate::distribution::AccuracyDistribution;
use crate::question::CrowdQuestion;
use crate::worker::SimulatedWorker;

/// Configuration of a simulated worker population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Number of workers in the pool.
    pub size: usize,
    /// Distribution of latent worker accuracies.
    pub accuracy: AccuracyDistribution,
    /// Fraction of the pool that are spammers.
    pub spammer_fraction: f64,
    /// Fraction of the pool that are colluders.
    pub colluder_fraction: f64,
    /// Fraction of the pool that are experts (with a 0.5 boost).
    pub expert_fraction: f64,
    /// Approval-rate model (decoupled from accuracy, Figure 14).
    pub approval: ApprovalModel,
    /// Latency model shared by all workers.
    pub latency: LatencyModel,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for PoolConfig {
    /// A pool shaped like the paper's AMT population: 500 workers whose accuracies follow
    /// the Figure 14 histogram, a small spammer minority and no colluders.
    fn default() -> Self {
        PoolConfig {
            size: 500,
            accuracy: AccuracyDistribution::paper_accuracy(),
            spammer_fraction: 0.03,
            colluder_fraction: 0.0,
            expert_fraction: 0.02,
            approval: ApprovalModel::default(),
            latency: LatencyModel::Exponential { mean: 5.0 },
            seed: 42,
        }
    }
}

impl PoolConfig {
    /// A small, clean pool of purely diligent workers — handy for unit tests.
    pub fn clean(size: usize, accuracy: f64, seed: u64) -> Self {
        PoolConfig {
            size,
            accuracy: AccuracyDistribution::Constant(accuracy),
            spammer_fraction: 0.0,
            colluder_fraction: 0.0,
            expert_fraction: 0.0,
            approval: ApprovalModel::default(),
            latency: LatencyModel::Constant(1.0),
            seed,
        }
    }
}

/// The worker population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerPool {
    workers: Vec<SimulatedWorker>,
    seed: u64,
}

impl WorkerPool {
    /// Build a pool from a configuration (deterministic given the seed).
    pub fn generate(config: &PoolConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut workers = Vec::with_capacity(config.size);
        for i in 0..config.size {
            let accuracy = config.accuracy.sample(&mut rng);
            let behavior = assign_behavior(config, i);
            let approval = config.approval.sample(accuracy, &mut rng);
            workers.push(
                SimulatedWorker::diligent(WorkerId(i as u64), accuracy)
                    .with_behavior(behavior)
                    .with_approval_rate(approval)
                    .with_latency(config.latency),
            );
        }
        WorkerPool {
            workers,
            seed: config.seed,
        }
    }

    /// Number of workers in the pool.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// All workers.
    pub fn workers(&self) -> &[SimulatedWorker] {
        &self.workers
    }

    /// Look up a worker by id.
    pub fn get(&self, id: WorkerId) -> Option<&SimulatedWorker> {
        self.workers.iter().find(|w| w.id == id)
    }

    /// Pick `n` distinct random workers ("n random workers provide the answers", §3.1).
    /// When `n` exceeds the pool size the whole pool is returned.
    pub fn assign<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<&SimulatedWorker> {
        let mut indices: Vec<usize> = (0..self.workers.len()).collect();
        indices.shuffle(rng);
        indices
            .into_iter()
            .take(n.min(self.workers.len()))
            .filter_map(|i| self.workers.get(i))
            .collect()
    }

    /// The true mean accuracy of the pool on an average-difficulty question with `m`
    /// candidate answers (behaviour-adjusted). This is the `μ` an omniscient prediction
    /// model would use; the engine instead estimates it by sampling.
    pub fn true_mean_accuracy(&self, reference: &CrowdQuestion) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers
            .iter()
            .map(|w| w.effective_accuracy(reference))
            .sum::<f64>()
            / self.workers.len() as f64
    }

    /// An *oracle* accuracy registry containing every worker's true effective accuracy on
    /// the reference question. Experiments use it to isolate the verification model from
    /// sampling error; the engine's production path uses the sampling estimator instead.
    pub fn oracle_registry(&self, reference: &CrowdQuestion) -> AccuracyRegistry {
        let mut registry = AccuracyRegistry::new();
        for w in &self.workers {
            registry.set(w.id, w.effective_accuracy(reference), 0);
        }
        registry
    }

    /// Histogram of `(true accuracy, approval rate)` pairs — the raw data of Figure 14.
    pub fn accuracy_vs_approval(&self) -> Vec<(f64, f64)> {
        self.workers
            .iter()
            .map(|w| (w.true_accuracy, w.approval_rate))
            .collect()
    }

    /// Partition the pool into `shards` disjoint sub-pools by round-robin striping:
    /// worker at index `i` goes to shard `i % shards`. Every worker lands in **exactly
    /// one** shard (the property the parallel fleet's lease isolation rests on, proptested
    /// below), shard sizes differ by at most one, and within a shard the original roster
    /// order is preserved — so a 1-way partition returns a pool identical to `self`.
    ///
    /// `shards == 0` is treated as 1.
    pub fn partition(&self, shards: usize) -> Vec<WorkerPool> {
        let shards = shards.max(1);
        let mut parts: Vec<Vec<SimulatedWorker>> = vec![Vec::new(); shards];
        for (i, worker) in self.workers.iter().enumerate() {
            if let Some(part) = parts.get_mut(i % shards) {
                part.push(worker.clone());
            }
        }
        parts
            .into_iter()
            .map(|workers| WorkerPool {
                workers,
                seed: self.seed,
            })
            .collect()
    }
}

fn assign_behavior(config: &PoolConfig, index: usize) -> WorkerBehavior {
    // Deterministic striping by index keeps the behaviour mix exact and reproducible.
    let f = (index as f64 + 0.5) / config.size.max(1) as f64;
    if f < config.spammer_fraction {
        WorkerBehavior::Spammer
    } else if f < config.spammer_fraction + config.colluder_fraction {
        WorkerBehavior::Colluder
    } else if f < config.spammer_fraction + config.colluder_fraction + config.expert_fraction {
        WorkerBehavior::Expert { boost: 0.5 }
    } else {
        WorkerBehavior::Diligent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_core::types::{AnswerDomain, Label, QuestionId};

    fn reference_question() -> CrowdQuestion {
        CrowdQuestion::new(
            QuestionId(0),
            AnswerDomain::from_strs(&["pos", "neu", "neg"]),
            Label::from("pos"),
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let config = PoolConfig::default();
        let a = WorkerPool::generate(&config);
        let b = WorkerPool::generate(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(!a.is_empty());
    }

    #[test]
    fn behaviour_fractions_are_respected() {
        let config = PoolConfig {
            size: 200,
            spammer_fraction: 0.1,
            colluder_fraction: 0.05,
            expert_fraction: 0.05,
            ..PoolConfig::default()
        };
        let pool = WorkerPool::generate(&config);
        let spammers = pool
            .workers()
            .iter()
            .filter(|w| w.behavior == WorkerBehavior::Spammer)
            .count();
        let colluders = pool
            .workers()
            .iter()
            .filter(|w| w.behavior == WorkerBehavior::Colluder)
            .count();
        assert_eq!(spammers, 20);
        assert_eq!(colluders, 10);
    }

    #[test]
    fn assignment_picks_distinct_workers() {
        let pool = WorkerPool::generate(&PoolConfig::clean(50, 0.8, 7));
        let mut rng = StdRng::seed_from_u64(3);
        let assigned = pool.assign(9, &mut rng);
        assert_eq!(assigned.len(), 9);
        let mut ids: Vec<u64> = assigned.iter().map(|w| w.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 9);
        // Requesting more than the pool returns the whole pool.
        let all = pool.assign(500, &mut rng);
        assert_eq!(all.len(), 50);
    }

    #[test]
    fn clean_pool_mean_accuracy_matches_configuration() {
        let pool = WorkerPool::generate(&PoolConfig::clean(30, 0.75, 9));
        let mu = pool.true_mean_accuracy(&reference_question());
        assert!((mu - 0.75).abs() < 1e-9);
        let registry = pool.oracle_registry(&reference_question());
        assert_eq!(registry.len(), 30);
        assert!((registry.mean_accuracy().unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn default_pool_mean_accuracy_is_usable() {
        let pool = WorkerPool::generate(&PoolConfig::default());
        let mu = pool.true_mean_accuracy(&reference_question());
        assert!(mu > 0.55 && mu < 0.8, "mean accuracy {mu}");
    }

    #[test]
    fn accuracy_vs_approval_shows_the_figure_14_gap() {
        let pool = WorkerPool::generate(&PoolConfig::default());
        let pairs = pool.accuracy_vs_approval();
        assert_eq!(pairs.len(), pool.len());
        let mean_acc: f64 = pairs.iter().map(|(a, _)| a).sum::<f64>() / pairs.len() as f64;
        let mean_app: f64 = pairs.iter().map(|(_, p)| p).sum::<f64>() / pairs.len() as f64;
        assert!(
            mean_app > mean_acc + 0.1,
            "approval {mean_app} vs accuracy {mean_acc}"
        );
    }

    #[test]
    fn lookup_by_id() {
        let pool = WorkerPool::generate(&PoolConfig::clean(5, 0.8, 1));
        assert!(pool.get(WorkerId(3)).is_some());
        assert!(pool.get(WorkerId(99)).is_none());
    }

    #[test]
    fn one_way_partition_is_the_identity() {
        let pool = WorkerPool::generate(&PoolConfig::clean(17, 0.8, 3));
        let parts = pool.partition(1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], pool);
        // Zero shards degrades to one.
        assert_eq!(pool.partition(0).len(), 1);
    }

    #[test]
    fn partition_balances_within_one_worker() {
        let pool = WorkerPool::generate(&PoolConfig::clean(22, 0.8, 3));
        let parts = pool.partition(4);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 22);
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parallel fleet's isolation invariant: shard-partitioning assigns every
        /// worker to exactly one shard — no worker in two shards (two shard threads could
        /// otherwise lease the same worker into overlapping HITs), and no worker dropped.
        #[test]
        fn partition_is_disjoint_and_covering(size in 1usize..120, shards in 1usize..12) {
            let pool = WorkerPool::generate(&PoolConfig::clean(size, 0.8, 7));
            let parts = pool.partition(shards);
            prop_assert_eq!(parts.len(), shards);
            let mut seen = std::collections::BTreeMap::new();
            for (s, part) in parts.iter().enumerate() {
                for w in part.workers() {
                    let previous = seen.insert(w.id, s);
                    prop_assert!(
                        previous.is_none(),
                        "worker {:?} assigned to shards {:?} and {}",
                        w.id,
                        previous,
                        s
                    );
                }
            }
            prop_assert_eq!(seen.len(), pool.len(), "every worker is in some shard");
            // Sizes are balanced within one worker.
            let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            prop_assert!(max - min <= 1);
        }
    }
}
