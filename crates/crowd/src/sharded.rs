//! A sharded crowd platform: the worker pool and HIT-id space partitioned into
//! independent per-thread slices.
//!
//! The scale-out systems in the related-work set (LogBase's partitioned log servers, the
//! per-shard worker threads of production KV stores) get their throughput by *sharding
//! state* and pinning independent work to threads. The CDAS fleet has the same shape:
//! per-job clocked event loops share almost nothing except the accuracy registry and the
//! worker ledger. A [`ShardedPlatform`] makes the remaining shared state explicit by
//! splitting one simulated crowd into `n` [`PlatformShard`]s, each of which owns
//!
//! * a **disjoint worker partition** ([`crate::pool::WorkerPool::partition`]: round-robin
//!   striping, proptested to assign every worker to exactly one shard), and
//! * a **disjoint HIT-id class** ([`crate::platform::SimulatedPlatform::with_hit_namespace`]:
//!   shard `i` mints ids `i, i+n, i+2n, …`), so the merged dispatch timeline of a
//!   parallel run never sees two shards claim the same [`cdas_core::types::HitId`].
//!
//! The parallel scheduler (`cdas_engine::scheduler::JobScheduler::run_parallel`) moves
//! each shard into its own `std::thread::scope` worker — which is why
//! [`crate::platform::CrowdPlatform`] requires `Send`. A 1-way split is bit-identical to
//! the unsharded platform, which is what lets the sequential `run_clocked` loop be the
//! one-shard special case of the parallel code path.
//!
//! ```
//! use cdas_core::economics::CostModel;
//! use cdas_crowd::pool::{PoolConfig, WorkerPool};
//! use cdas_crowd::sharded::ShardedPlatform;
//!
//! let pool = WorkerPool::generate(&PoolConfig::clean(12, 0.8, 7));
//! let sharded = ShardedPlatform::split(&pool, CostModel::default(), 7, 4);
//! assert_eq!(sharded.shard_count(), 4);
//! assert_eq!(sharded.shards().iter().map(|s| s.roster().len()).sum::<usize>(), 12);
//! ```

use cdas_core::economics::CostModel;
use cdas_core::types::WorkerId;

use crate::platform::{CrowdPlatform, SimulatedPlatform};
use crate::pool::WorkerPool;

/// One shard of a partitioned crowd: a platform plus the worker roster it owns.
#[derive(Debug)]
pub struct PlatformShard<P> {
    platform: P,
    roster: Vec<WorkerId>,
}

impl<P> PlatformShard<P> {
    /// Assemble a shard from a platform and the worker partition it serves.
    pub fn new(platform: P, roster: Vec<WorkerId>) -> Self {
        PlatformShard { platform, roster }
    }

    /// The shard's platform.
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// The shard's platform, mutably (the handle a shard thread drives).
    pub fn platform_mut(&mut self) -> &mut P {
        &mut self.platform
    }

    /// The workers this shard owns, in checkout-priority order.
    pub fn roster(&self) -> &[WorkerId] {
        &self.roster
    }

    /// Take the shard apart (e.g. to inspect the platform ledger after a run).
    pub fn into_parts(self) -> (P, Vec<WorkerId>) {
        (self.platform, self.roster)
    }
}

/// A crowd platform split into disjoint per-thread shards.
///
/// Generic over the platform type so a real adapter could be sharded the same way
/// (each shard holding its own connection); [`ShardedPlatform::split`] is the
/// simulated-crowd constructor.
#[derive(Debug, Default)]
pub struct ShardedPlatform<P = SimulatedPlatform> {
    shards: Vec<PlatformShard<P>>,
}

impl ShardedPlatform<SimulatedPlatform> {
    /// Split one simulated crowd into `shards` independent platforms.
    ///
    /// The pool is partitioned round-robin (disjoint and covering; sizes within one
    /// worker of each other), shard `i` is seeded `seed + i` and mints HIT ids in the
    /// arithmetic class `i (mod shards)`. `split(pool, cost, seed, 1)` produces a single
    /// shard whose platform behaves bit-identically to
    /// `SimulatedPlatform::new(pool.clone(), cost, seed)`.
    pub fn split(pool: &WorkerPool, cost_model: CostModel, seed: u64, shards: usize) -> Self {
        let shards = shards.max(1);
        let parts = pool.partition(shards);
        ShardedPlatform {
            shards: parts
                .into_iter()
                .enumerate()
                .map(|(i, sub_pool)| {
                    let roster = sub_pool.workers().iter().map(|w| w.id).collect();
                    let platform = SimulatedPlatform::new(sub_pool, cost_model, seed + i as u64)
                        .with_hit_namespace(i as u64, shards as u64);
                    PlatformShard { platform, roster }
                })
                .collect(),
        }
    }
}

impl<P: CrowdPlatform> ShardedPlatform<P> {
    /// Assemble a sharded platform from explicit `(platform, roster)` parts — the seam a
    /// real multi-region adapter would use. Rosters are taken on faith here; keep them
    /// disjoint or two shards will lease the same worker.
    pub fn from_parts(parts: impl IntoIterator<Item = (P, Vec<WorkerId>)>) -> Self {
        ShardedPlatform {
            shards: parts
                .into_iter()
                .map(|(platform, roster)| PlatformShard { platform, roster })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in index order.
    pub fn shards(&self) -> &[PlatformShard<P>] {
        &self.shards
    }

    /// The shards mutably — the parallel scheduler hands one `&mut` slot to each thread.
    pub fn shards_mut(&mut self) -> &mut [PlatformShard<P>] {
        &mut self.shards
    }

    /// Consume the container, yielding the shards.
    pub fn into_shards(self) -> Vec<PlatformShard<P>> {
        self.shards
    }

    /// Total dollars charged across all shards.
    pub fn total_cost(&self) -> f64 {
        self.shards.iter().map(|s| s.platform.total_cost()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hit::HitRequest;
    use crate::pool::PoolConfig;
    use crate::question::CrowdQuestion;
    use cdas_core::types::{AnswerDomain, Label, QuestionId};
    use std::collections::BTreeSet;

    fn request(questions: u64, assignments: usize) -> HitRequest {
        let qs: Vec<CrowdQuestion> = (0..questions)
            .map(|i| {
                CrowdQuestion::new(
                    QuestionId(i),
                    AnswerDomain::from_strs(&["a", "b"]),
                    Label::from("a"),
                )
            })
            .collect();
        HitRequest::new(qs, assignments, 0.01)
    }

    #[test]
    fn split_partitions_workers_disjointly() {
        let pool = WorkerPool::generate(&PoolConfig::clean(22, 0.8, 5));
        let sharded = ShardedPlatform::split(&pool, CostModel::default(), 5, 4);
        assert_eq!(sharded.shard_count(), 4);
        let mut seen = BTreeSet::new();
        for shard in sharded.shards() {
            for w in shard.roster() {
                assert!(seen.insert(*w), "worker {w:?} owned by two shards");
                assert!(shard.platform().pool().get(*w).is_some());
            }
        }
        assert_eq!(seen.len(), 22, "every worker owned by some shard");
    }

    #[test]
    fn shards_mint_disjoint_hit_ids() {
        let pool = WorkerPool::generate(&PoolConfig::clean(12, 0.8, 9));
        let mut sharded = ShardedPlatform::split(&pool, CostModel::default(), 9, 3);
        let mut ids = BTreeSet::new();
        for shard in sharded.shards_mut() {
            for _ in 0..4 {
                let id = shard.platform_mut().publish(request(2, 2));
                assert!(ids.insert(id), "HIT id {id:?} minted twice");
            }
        }
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn one_way_split_matches_the_unsharded_platform() {
        let pool = WorkerPool::generate(&PoolConfig::clean(10, 0.8, 11));
        let mut sharded = ShardedPlatform::split(&pool, CostModel::default(), 11, 1);
        let mut plain = SimulatedPlatform::new(pool.clone(), CostModel::default(), 11);
        let shard = &mut sharded.shards_mut()[0];
        assert_eq!(shard.roster().len(), 10);
        for _ in 0..3 {
            let a = shard.platform_mut().publish(request(3, 4));
            let b = plain.publish(request(3, 4));
            assert_eq!(a, b, "1-way shard must mint the same HIT ids");
            let mut sharded_answers = shard.platform_mut().poll(a, f64::INFINITY);
            let plain_answers = plain.poll(b, f64::INFINITY);
            sharded_answers
                .iter_mut()
                .zip(&plain_answers)
                .for_each(|(x, y)| assert_eq!(x, y));
            assert_eq!(sharded_answers.len(), plain_answers.len());
        }
        assert_eq!(sharded.total_cost(), plain.total_cost());
    }

    #[test]
    fn from_parts_round_trips() {
        let pool = WorkerPool::generate(&PoolConfig::clean(6, 0.8, 1));
        let parts = pool.partition(2).into_iter().enumerate().map(|(i, p)| {
            let roster: Vec<WorkerId> = p.workers().iter().map(|w| w.id).collect();
            (
                SimulatedPlatform::new(p, CostModel::default(), i as u64),
                roster,
            )
        });
        let sharded = ShardedPlatform::from_parts(parts);
        assert_eq!(sharded.shard_count(), 2);
        let shards = sharded.into_shards();
        let (platform, roster) = shards.into_iter().next().unwrap().into_parts();
        assert_eq!(platform.pool().len(), roster.len());
    }
}
