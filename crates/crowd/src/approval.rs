//! Approval-rate modelling (§3.3, Figure 14).
//!
//! AMT records an *approval rate* per worker — the fraction of their past answers the
//! requesters approved. The paper shows it is a poor proxy for task accuracy, for two
//! reasons it names explicitly: workers are not experts in every domain (accuracy varies
//! across jobs), and many requesters auto-approve everything. This module generates
//! approval rates with exactly those properties so the Figure 14 / Figure 15 experiments
//! can demonstrate why sampling-based estimation is necessary.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a worker's public approval rate relates to their true task accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApprovalModel {
    /// Fraction of requesters that auto-approve every answer (pushes approval towards 1
    /// regardless of quality).
    pub auto_approval_fraction: f64,
    /// Correlation-like weight in `[0, 1]` between task accuracy and the manually-approved
    /// part of the history; 0 means approval is unrelated to this job's accuracy.
    pub accuracy_weight: f64,
    /// Noise amplitude added to the manual part.
    pub noise: f64,
}

impl Default for ApprovalModel {
    /// Defaults chosen to reproduce the Figure 14 contrast: most mass ≥ 90 % approval while
    /// real accuracies centre around 0.65.
    fn default() -> Self {
        ApprovalModel {
            auto_approval_fraction: 0.6,
            accuracy_weight: 0.3,
            noise: 0.05,
        }
    }
}

impl ApprovalModel {
    /// Draw an approval rate for a worker whose accuracy *on this job* is `task_accuracy`.
    pub fn sample<R: Rng + ?Sized>(&self, task_accuracy: f64, rng: &mut R) -> f64 {
        // The auto-approved fraction of history contributes full approval; the manual part
        // is loosely tied to a "general competence" value that only partially reflects the
        // accuracy on this particular job.
        let general = self.accuracy_weight * task_accuracy
            + (1.0 - self.accuracy_weight) * rng.random_range(0.7..0.98);
        let manual = (general + (rng.random::<f64>() - 0.5) * 2.0 * self.noise).clamp(0.0, 1.0);
        (self.auto_approval_fraction + (1.0 - self.auto_approval_fraction) * manual).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn approval_rates_are_high_even_for_poor_workers() {
        let model = ApprovalModel::default();
        let mut rng = StdRng::seed_from_u64(21);
        let rates: Vec<f64> = (0..5000).map(|_| model.sample(0.4, &mut rng)).collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(
            mean > 0.8,
            "poor workers still show high approval, got {mean}"
        );
        assert!(rates.iter().all(|r| (0.0..=1.0).contains(r)));
    }

    #[test]
    fn approval_is_only_weakly_ordered_by_accuracy() {
        let model = ApprovalModel::default();
        let mut rng = StdRng::seed_from_u64(22);
        let mean = |acc: f64, rng: &mut StdRng| {
            (0..5000).map(|_| model.sample(acc, rng)).sum::<f64>() / 5000.0
        };
        let low = mean(0.4, &mut rng);
        let high = mean(0.9, &mut rng);
        // Better workers get slightly better approval...
        assert!(high >= low);
        // ...but the gap is far smaller than the 0.5 accuracy gap (the Figure 14 point).
        assert!(high - low < 0.15, "gap {}", high - low);
    }

    #[test]
    fn full_auto_approval_ignores_accuracy() {
        let model = ApprovalModel {
            auto_approval_fraction: 1.0,
            accuracy_weight: 1.0,
            noise: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(23);
        assert_eq!(model.sample(0.1, &mut rng), 1.0);
        assert_eq!(model.sample(0.9, &mut rng), 1.0);
    }
}
