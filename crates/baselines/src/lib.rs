//! # cdas-baselines — the machine baselines of the CDAS evaluation
//!
//! The paper compares its human-assisted pipelines against two automatic systems:
//!
//! * **LIBSVM** for Twitter sentiment classification (Figure 5), substituted here by a
//!   multinomial Naive-Bayes bag-of-words classifier ([`text::NaiveBayesClassifier`]) plus
//!   a simpler lexicon-rule classifier ([`text::LexiconRuleClassifier`]), and
//! * **ALIPR** for automatic image annotation (Figure 17), substituted by a noisy
//!   feature-affinity tagger ([`image::AutoTagger`]).
//!
//! Neither substitute tries to be a state-of-the-art model; they play the same role the
//! originals play in the paper — automatic systems whose accuracy saturates far below the
//! crowd on the hard fraction of the workload — so the *shape* of the comparison holds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod image;
pub mod text;
