//! Text-classification baselines for the TSA comparison (the paper's LIBSVM role).

use std::collections::{BTreeMap, BTreeSet};

use cdas_core::types::Label;
use cdas_workloads::tsa::lexicon;
use cdas_workloads::tsa::tweets::Tweet;
use cdas_workloads::tsa::Sentiment;

/// Lower-cased alphanumeric tokens of a text.
pub fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_string())
        .collect()
}

/// A multinomial Naive-Bayes bag-of-words classifier with Laplace smoothing — the
/// stand-in for the paper's LIBSVM baseline. Trained on labelled tweets about the
/// *training* movies, evaluated on the held-out test movies (the paper trains on 195 movies
/// and tests on 5).
#[derive(Debug, Clone, Default)]
pub struct NaiveBayesClassifier {
    /// class → (token → count)
    token_counts: BTreeMap<Sentiment, BTreeMap<String, usize>>,
    /// class → total tokens
    class_tokens: BTreeMap<Sentiment, usize>,
    /// class → documents
    class_docs: BTreeMap<Sentiment, usize>,
    vocabulary: BTreeSet<String>,
    total_docs: usize,
}

impl NaiveBayesClassifier {
    /// An untrained classifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Train on labelled tweets.
    pub fn train<'a>(&mut self, tweets: impl IntoIterator<Item = &'a Tweet>) {
        for tweet in tweets {
            self.train_one(&tweet.text, tweet.sentiment);
        }
    }

    /// Train on one labelled document.
    pub fn train_one(&mut self, text: &str, sentiment: Sentiment) {
        *self.class_docs.entry(sentiment).or_insert(0) += 1;
        self.total_docs += 1;
        let counts = self.token_counts.entry(sentiment).or_default();
        for token in tokenize(text) {
            *counts.entry(token.clone()).or_insert(0) += 1;
            *self.class_tokens.entry(sentiment).or_insert(0) += 1;
            self.vocabulary.insert(token);
        }
    }

    /// Whether the classifier has seen any training data.
    pub fn is_trained(&self) -> bool {
        self.total_docs > 0
    }

    /// Number of training documents.
    pub fn training_documents(&self) -> usize {
        self.total_docs
    }

    /// Classify a text into a sentiment (falls back to `Neutral` before training).
    pub fn classify(&self, text: &str) -> Sentiment {
        if !self.is_trained() {
            return Sentiment::Neutral;
        }
        let tokens = tokenize(text);
        let vocab = self.vocabulary.len().max(1) as f64;
        let mut best = (Sentiment::Neutral, f64::NEG_INFINITY);
        for class in Sentiment::ALL {
            let docs = *self.class_docs.get(&class).unwrap_or(&0);
            if docs == 0 {
                continue;
            }
            let mut score = (docs as f64 / self.total_docs as f64).ln();
            let class_total = *self.class_tokens.get(&class).unwrap_or(&0) as f64;
            let counts = self.token_counts.get(&class);
            for token in &tokens {
                let count = counts.and_then(|c| c.get(token)).copied().unwrap_or(0) as f64;
                // Laplace smoothing.
                score += ((count + 1.0) / (class_total + vocab)).ln();
            }
            if score > best.1 {
                best = (class, score);
            }
        }
        best.0
    }

    /// Classify a tweet and return the label used by the answering model.
    pub fn classify_label(&self, text: &str) -> Label {
        self.classify(text).label()
    }

    /// Accuracy over a labelled test set.
    pub fn accuracy<'a>(&self, tweets: impl IntoIterator<Item = &'a Tweet>) -> f64 {
        let mut total = 0usize;
        let mut correct = 0usize;
        for t in tweets {
            total += 1;
            if self.classify(&t.text) == t.sentiment {
                correct += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// A keyword-lexicon rule classifier: count surface-positive and surface-negative phrases
/// and pick the majority polarity. Even simpler than Naive Bayes; included as a second
/// machine reference point (the paper cites rule/IR-based approaches alongside SVM).
#[derive(Debug, Clone, Copy, Default)]
pub struct LexiconRuleClassifier;

impl LexiconRuleClassifier {
    /// Create the classifier (stateless).
    pub fn new() -> Self {
        LexiconRuleClassifier
    }

    /// Classify a text by counting lexicon phrase hits.
    pub fn classify(&self, text: &str) -> Sentiment {
        let lower = text.to_lowercase();
        let hits = |phrases: &[&str]| phrases.iter().filter(|p| lower.contains(*p)).count();
        let pos = hits(lexicon::POSITIVE_PHRASES);
        let neg = hits(lexicon::NEGATIVE_PHRASES);
        if pos > neg {
            Sentiment::Positive
        } else if neg > pos {
            Sentiment::Negative
        } else {
            Sentiment::Neutral
        }
    }

    /// Accuracy over a labelled test set.
    pub fn accuracy<'a>(&self, tweets: impl IntoIterator<Item = &'a Tweet>) -> f64 {
        let mut total = 0usize;
        let mut correct = 0usize;
        for t in tweets {
            total += 1;
            if self.classify(&t.text) == t.sentiment {
                correct += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_workloads::difficulty::DifficultyModel;
    use cdas_workloads::tsa::tweets::{TweetGenerator, TweetGeneratorConfig};
    use cdas_workloads::tsa::MovieCatalog;

    fn corpus(seed: u64, hard_fraction: f64, per_movie: usize, movies: usize) -> Vec<Tweet> {
        let mut generator = TweetGenerator::new(TweetGeneratorConfig {
            difficulty: DifficultyModel {
                hard_fraction,
                easy_difficulty: 0.05,
                hard_difficulty: 0.8,
            },
            seed,
            ..TweetGeneratorConfig::default()
        });
        let catalog = MovieCatalog::with_size(movies);
        let mut tweets = Vec::new();
        for title in catalog.titles() {
            tweets.extend(generator.generate(title, per_movie));
        }
        tweets
    }

    #[test]
    fn tokenizer_lowercases_and_splits() {
        assert_eq!(
            tokenize("Green Lantern, SUCKS! 100%"),
            vec!["green", "lantern", "sucks", "100"]
        );
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn untrained_classifier_defaults_to_neutral() {
        let nb = NaiveBayesClassifier::new();
        assert!(!nb.is_trained());
        assert_eq!(nb.classify("anything at all"), Sentiment::Neutral);
    }

    #[test]
    fn naive_bayes_learns_easy_tweets() {
        let train = corpus(1, 0.0, 30, 20);
        let test = corpus(2, 0.0, 30, 10);
        let mut nb = NaiveBayesClassifier::new();
        nb.train(&train);
        assert!(nb.is_trained());
        assert_eq!(nb.training_documents(), train.len());
        let acc = nb.accuracy(&test);
        assert!(acc > 0.8, "easy-tweet accuracy {acc}");
    }

    #[test]
    fn naive_bayes_degrades_on_sarcastic_tweets() {
        // The Figure 5 premise: the machine baseline is markedly worse on the hard mix.
        let train = corpus(3, 0.15, 30, 20);
        let mut nb = NaiveBayesClassifier::new();
        nb.train(&train);
        let easy_test = corpus(4, 0.0, 40, 8);
        let hard_test = corpus(5, 1.0, 40, 8);
        let easy = nb.accuracy(&easy_test);
        let hard = nb.accuracy(&hard_test);
        assert!(
            easy > hard + 0.15,
            "sarcasm should hurt the classifier: easy {easy} vs hard {hard}"
        );
    }

    #[test]
    fn classify_label_matches_classify() {
        let train = corpus(6, 0.1, 20, 10);
        let mut nb = NaiveBayesClassifier::new();
        nb.train(&train);
        let t = &train[0];
        assert_eq!(nb.classify_label(&t.text), nb.classify(&t.text).label());
    }

    #[test]
    fn lexicon_rule_handles_clear_polarity() {
        let rule = LexiconRuleClassifier::new();
        assert_eq!(
            rule.classify("this movie is a masterpiece"),
            Sentiment::Positive
        );
        assert_eq!(
            rule.classify("what a letdown, terrible pacing"),
            Sentiment::Negative
        );
        assert_eq!(
            rule.classify("the runtime is about two hours"),
            Sentiment::Neutral
        );
    }

    #[test]
    fn lexicon_rule_is_fooled_by_sarcasm() {
        let rule = LexiconRuleClassifier::new();
        // Surface-negative wording with positive ground truth (the "Airbender" example).
        let hard = corpus(7, 1.0, 50, 5);
        let acc = rule.accuracy(&hard);
        assert!(
            acc < 0.6,
            "sarcastic tweets should defeat the rule classifier, got {acc}"
        );
        assert_eq!(rule.accuracy(Vec::<&Tweet>::new()), 0.0);
    }

    #[test]
    fn empty_test_set_has_zero_accuracy() {
        let nb = NaiveBayesClassifier::new();
        assert_eq!(nb.accuracy(Vec::<&Tweet>::new()), 0.0);
    }
}
