//! The automatic image-tagging baseline (the paper's ALIPR role, Figure 17).
//!
//! ALIPR annotates pictures with a 2-D hidden-Markov model over visual features; on the
//! paper's Flickr queries it reaches only 12–30 % accuracy. The substitute scores each
//! candidate tag by a mixture of (a) the image's noisy feature affinity for the tag and
//! (b) a global tag-frequency prior learned from a training set, then picks the best-scored
//! tag — the classic failure mode of frequency-biased automatic annotation.

use std::collections::BTreeMap;

use cdas_core::types::Label;
use cdas_workloads::it::images::SyntheticImage;

/// The automatic tagger baseline.
#[derive(Debug, Clone, Default)]
pub struct AutoTagger {
    /// Global tag frequencies observed during training.
    tag_frequency: BTreeMap<String, usize>,
    total_tags: usize,
    /// Weight of the frequency prior versus the feature affinity, in `[0, 1]`.
    prior_weight: f64,
}

impl AutoTagger {
    /// An untrained tagger with the default prior weight of 0.5.
    pub fn new() -> Self {
        AutoTagger {
            tag_frequency: BTreeMap::new(),
            total_tags: 0,
            prior_weight: 0.5,
        }
    }

    /// Change how strongly the global frequency prior influences the decision.
    pub fn with_prior_weight(mut self, weight: f64) -> Self {
        self.prior_weight = weight.clamp(0.0, 1.0);
        self
    }

    /// Learn global tag frequencies from a training collection (the true tags of training
    /// images, as a real annotator would be trained on labelled corpora).
    pub fn train<'a>(&mut self, images: impl IntoIterator<Item = &'a SyntheticImage>) {
        for image in images {
            *self
                .tag_frequency
                .entry(image.true_tag.clone())
                .or_insert(0) += 1;
            self.total_tags += 1;
        }
    }

    /// Annotate one image: pick the candidate tag with the best combined score.
    pub fn annotate(&self, image: &SyntheticImage) -> Label {
        let mut best: Option<(&str, f64)> = None;
        for (tag, affinity) in &image.feature_affinity {
            let prior = if self.total_tags == 0 {
                0.0
            } else {
                *self.tag_frequency.get(tag).unwrap_or(&0) as f64 / self.total_tags as f64
            };
            let score = self.prior_weight * prior + (1.0 - self.prior_weight) * affinity;
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((tag.as_str(), score));
            }
        }
        best.map(|(t, _)| Label::from(t))
            .unwrap_or_else(|| Label::from(image.true_tag.as_str()))
    }

    /// Accuracy over a labelled image set.
    pub fn accuracy<'a>(&self, images: impl IntoIterator<Item = &'a SyntheticImage>) -> f64 {
        let mut total = 0usize;
        let mut correct = 0usize;
        for image in images {
            total += 1;
            if self.annotate(image) == image.truth_label() {
                correct += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdas_workloads::it::images::{ImageGenerator, ImageGeneratorConfig};
    use cdas_workloads::it::FIGURE17_SUBJECTS;

    fn images(seed: u64, per_subject: usize) -> Vec<SyntheticImage> {
        let mut g = ImageGenerator::new(ImageGeneratorConfig {
            seed,
            ..ImageGeneratorConfig::default()
        });
        let mut all = Vec::new();
        for s in FIGURE17_SUBJECTS {
            all.extend(g.generate(s, per_subject));
        }
        all
    }

    #[test]
    fn annotation_always_picks_a_candidate() {
        let mut tagger = AutoTagger::new();
        let train = images(1, 10);
        tagger.train(&train);
        for img in images(2, 5) {
            let tag = tagger.annotate(&img);
            assert!(img.candidates.contains(&tag.as_str().to_string()));
        }
    }

    #[test]
    fn accuracy_lands_in_the_alipr_band() {
        // Figure 17: ALIPR reaches 12–30 % accuracy; the substitute with weak features and
        // a frequency prior should land in a similarly low band, far below the crowd.
        let mut tagger = AutoTagger::new();
        tagger.train(&images(3, 20));
        let acc = tagger.accuracy(&images(4, 20));
        assert!(acc < 0.45, "automatic tagger unexpectedly good: {acc}");
        assert!(
            acc > 0.02,
            "automatic tagger should beat blind guessing occasionally: {acc}"
        );
    }

    #[test]
    fn untrained_tagger_relies_on_features_alone() {
        let tagger = AutoTagger::new().with_prior_weight(1.0);
        let img = &images(5, 1)[0];
        // With prior weight 1 and no training counts, all scores are 0 and the first
        // candidate wins — still a valid candidate.
        let tag = tagger.annotate(img);
        assert!(img.candidates.contains(&tag.as_str().to_string()));
        assert_eq!(tagger.accuracy(Vec::<&SyntheticImage>::new()), 0.0);
    }

    #[test]
    fn prior_weight_is_clamped() {
        let tagger = AutoTagger::new().with_prior_weight(7.0);
        assert!((tagger.prior_weight - 1.0).abs() < 1e-12);
    }
}
