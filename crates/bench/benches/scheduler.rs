//! Criterion benchmark for the multi-job scheduler: the dispatch-loop cost of multiplexing
//! a fleet of analytics jobs over one shared worker pool (leases, shared-registry absorbs,
//! cached snapshots), compared against running the same batches sequentially through the
//! single-job engine path.

use cdas_core::economics::CostModel;
use cdas_crowd::lease::PoolLedger;
use cdas_crowd::pool::{PoolConfig, WorkerPool};
use cdas_crowd::SimulatedPlatform;
use cdas_engine::engine::{CrowdsourcingEngine, EngineConfig, WorkerCountPolicy};
use cdas_engine::fixtures::demo_questions;
use cdas_engine::job_manager::JobKind;
use cdas_engine::scheduler::{DispatchPolicy, JobScheduler, ScheduledJob, SchedulerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const JOBS: usize = 3;
const REAL: u64 = 25;
const GOLD: u64 = 5;
const BATCH: usize = 10;
const WORKERS: usize = 7;

fn engine_config() -> EngineConfig {
    EngineConfig {
        workers: WorkerCountPolicy::Fixed(WORKERS),
        domain_size: Some(3),
        ..EngineConfig::default()
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let pool = WorkerPool::generate(&PoolConfig::clean(20, 0.8, 7));
    let mut group = c.benchmark_group("scheduler_fleet");
    group.sample_size(20);

    // The fleet path: 3 jobs interleaved over one pool, with leases + shared registry.
    for (label, policy) in [
        ("round_robin", DispatchPolicy::RoundRobin),
        ("priority", DispatchPolicy::Priority),
    ] {
        group.bench_with_input(
            BenchmarkId::new("3_jobs_shared_pool", label),
            &policy,
            |b, policy| {
                b.iter(|| {
                    let mut platform =
                        SimulatedPlatform::new(pool.clone(), CostModel::default(), 7);
                    let mut scheduler = JobScheduler::new(
                        SchedulerConfig {
                            policy: *policy,
                            ..SchedulerConfig::default()
                        },
                        PoolLedger::from_pool(&pool),
                    );
                    for (i, name) in ["a", "b", "c"].iter().enumerate() {
                        scheduler.submit(
                            ScheduledJob::named(
                                JobKind::SentimentAnalytics,
                                *name,
                                demo_questions(REAL, GOLD),
                            )
                            .with_engine(engine_config())
                            .with_batch_size(BATCH)
                            .with_priority(i as u8),
                        );
                    }
                    scheduler.run(black_box(&mut platform)).unwrap()
                })
            },
        );
    }

    // The baseline: the same 3 × (25+5) questions pushed through the single-job engine,
    // one batch after another, no sharing and no leases.
    group.bench_function("sequential_run_hit_baseline", |b| {
        let engine = CrowdsourcingEngine::new(engine_config());
        b.iter(|| {
            let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 7);
            let mut outcomes = Vec::new();
            for _ in 0..JOBS {
                let questions = demo_questions(REAL, GOLD);
                for chunk in questions.chunks(BATCH) {
                    outcomes.push(
                        engine
                            .run_hit(&mut platform, black_box(chunk.to_vec()))
                            .unwrap(),
                    );
                }
            }
            outcomes
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
