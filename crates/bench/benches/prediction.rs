//! Criterion microbenchmarks for the prediction model (Theorem 3, Algorithms 2–3): the
//! cost of the conservative bound, the exact binomial expectation, and the binary search,
//! which the engine runs once per HIT.

use cdas_core::prediction::{
    conservative_worker_estimate, expected_majority_probability, refined_worker_estimate,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("prediction");
    group.bench_function("conservative_estimate_c99", |b| {
        b.iter(|| conservative_worker_estimate(black_box(0.99), black_box(0.7)).unwrap())
    });
    for &n in &[9u64, 29, 101, 1001] {
        group.bench_with_input(
            BenchmarkId::new("expected_majority_probability", n),
            &n,
            |b, &n| b.iter(|| expected_majority_probability(black_box(n), black_box(0.7))),
        );
    }
    for &c_req in &[0.8f64, 0.95, 0.99] {
        group.bench_with_input(
            BenchmarkId::new("refined_estimate", format!("{c_req}")),
            &c_req,
            |b, &c_req| {
                b.iter(|| refined_worker_estimate(black_box(c_req), black_box(0.7)).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
