//! Criterion benchmark for clocked (discrete-event) collection: the overhead of polling
//! arrival-by-arrival and feeding online processors incrementally, against the end-of-time
//! `collect_batch`, plus the clocked scheduler against the unclocked one — and, as a third
//! axis, how much *simulated* wall-clock and money the mid-flight cancellation saves (the
//! quantity the real-time overhead buys).

use cdas_core::economics::CostModel;
use cdas_core::online::TerminationStrategy;
use cdas_crowd::arrival::LatencyModel;
use cdas_crowd::clock::SimClock;
use cdas_crowd::lease::PoolLedger;
use cdas_crowd::pool::{PoolConfig, WorkerPool};
use cdas_crowd::SimulatedPlatform;
use cdas_engine::engine::{CrowdsourcingEngine, EngineConfig, WorkerCountPolicy};
use cdas_engine::fixtures::demo_questions;
use cdas_engine::job_manager::JobKind;
use cdas_engine::scheduler::{JobScheduler, ScheduledJob, SchedulerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const WORKERS: usize = 9;
const REAL: u64 = 15;
const GOLD: u64 = 5;

fn pool() -> WorkerPool {
    WorkerPool::generate(&PoolConfig {
        latency: LatencyModel::Exponential { mean: 5.0 },
        ..PoolConfig::clean(30, 0.85, 7)
    })
}

fn engine(termination: Option<TerminationStrategy>) -> CrowdsourcingEngine {
    CrowdsourcingEngine::new(EngineConfig {
        workers: WorkerCountPolicy::Fixed(WORKERS),
        termination,
        domain_size: Some(3),
        ..EngineConfig::default()
    })
}

fn bench_clocked(c: &mut Criterion) {
    let pool = pool();
    let mut group = c.benchmark_group("clocked_collection");
    group.sample_size(20);

    // End-of-time phase 2: one poll at infinity, verify afterwards.
    group.bench_function("collect_batch_end_of_time", |b| {
        let engine = engine(Some(TerminationStrategy::ExpMax));
        b.iter(|| {
            let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 7);
            let ticket = engine
                .publish_batch(&mut platform, demo_questions(REAL, GOLD))
                .unwrap();
            engine
                .collect_batch(black_box(&mut platform), ticket)
                .unwrap()
        })
    });

    // Clocked phase 2: advance the SimClock arrival by arrival, cancel mid-flight.
    group.bench_function("collect_batch_clocked", |b| {
        let engine = engine(Some(TerminationStrategy::ExpMax));
        b.iter(|| {
            let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 7);
            let mut clock = SimClock::new();
            let ticket = engine
                .publish_batch(&mut platform, demo_questions(REAL, GOLD))
                .unwrap();
            engine
                .collect_batch_clocked(black_box(&mut platform), ticket, &mut clock)
                .unwrap()
        })
    });

    // Fleet scale: three jobs contending for one pool, unclocked vs clocked.
    let fleet = |clocked: bool, termination: Option<TerminationStrategy>| {
        let pool = self::pool();
        let mut platform = SimulatedPlatform::new(pool.clone(), CostModel::default(), 7);
        let mut scheduler =
            JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool));
        for name in ["a", "b", "c"] {
            scheduler.submit(
                ScheduledJob::named(
                    JobKind::SentimentAnalytics,
                    name,
                    demo_questions(REAL, GOLD),
                )
                .with_engine(EngineConfig {
                    workers: WorkerCountPolicy::Fixed(WORKERS),
                    termination,
                    domain_size: Some(3),
                    ..EngineConfig::default()
                })
                .with_batch_size(10),
            );
        }
        if clocked {
            scheduler.run_clocked(&mut platform).unwrap()
        } else {
            scheduler.run(&mut platform).unwrap()
        }
    };
    group.bench_function("fleet_unclocked", |b| {
        b.iter(|| fleet(black_box(false), Some(TerminationStrategy::ExpMax)))
    });
    group.bench_function("fleet_clocked", |b| {
        b.iter(|| fleet(black_box(true), Some(TerminationStrategy::ExpMax)))
    });
    group.finish();

    // Not a timing: report the simulated savings the clocked machinery exists to deliver,
    // so a bench run shows the trade (CPU overhead vs worker-minutes and dollars saved).
    let baseline = fleet(true, None);
    let early = fleet(true, Some(TerminationStrategy::ExpMax));
    println!(
        "clocked fleet: makespan {:.1}m -> {:.1}m, cost ${:.3} -> ${:.3}, {:.1} worker-minutes reclaimed",
        baseline.makespan,
        early.makespan,
        baseline.total_cost(),
        early.total_cost(),
        early.reclaimed_minutes,
    );
}

criterion_group!(benches, bench_clocked);
criterion_main!(benches);
