//! Criterion benchmark for the parallel fleet: `JobScheduler::run_parallel` at 1/2/4/8
//! shards against the sequential `run_clocked` baseline on one fleet workload (16 jobs ×
//! 28 questions over a 64-worker crowd).
//!
//! Two effects compose. On a multi-core host, shards genuinely run concurrently. And
//! even on one core, sharding wins wall-clock: every arrival event of the sequential
//! loop scans *all* in-flight batches (poll + termination checks), so splitting J jobs
//! into S independent loops cuts the per-event scan by S — the speedup curve this bench
//! records is real work avoided, not just parallel hardware.
//!
//! Besides the criterion timings, the bench prints a one-line speedup table
//! (`parallel_speedup` = shard CPU-time sum over slowest shard, and the measured
//! end-to-end wall-clock ratio against `run_clocked`).

use std::time::Instant;

use cdas_core::economics::CostModel;
use cdas_crowd::arrival::LatencyModel;
use cdas_crowd::lease::PoolLedger;
use cdas_crowd::pool::{PoolConfig, WorkerPool};
use cdas_crowd::sharded::ShardedPlatform;
use cdas_crowd::SimulatedPlatform;
use cdas_engine::engine::{EngineConfig, WorkerCountPolicy};
use cdas_engine::fixtures::demo_questions;
use cdas_engine::job_manager::JobKind;
use cdas_engine::scheduler::{JobScheduler, ScheduledJob, SchedulerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SEED: u64 = 42;
const POOL: usize = 64;
const JOBS: usize = 16;
const WORKERS_PER_HIT: usize = 7;

fn pool() -> WorkerPool {
    WorkerPool::generate(&PoolConfig {
        latency: LatencyModel::Exponential { mean: 5.0 },
        ..PoolConfig::clean(POOL, 0.85, SEED)
    })
}

fn fleet_scheduler() -> JobScheduler {
    let mut scheduler =
        JobScheduler::new(SchedulerConfig::default(), PoolLedger::from_pool(&pool()));
    for i in 0..JOBS {
        scheduler.submit(
            ScheduledJob::named(
                JobKind::SentimentAnalytics,
                format!("job-{i}"),
                demo_questions(24, 4),
            )
            .with_engine(EngineConfig {
                workers: WorkerCountPolicy::Fixed(WORKERS_PER_HIT),
                domain_size: Some(3),
                ..EngineConfig::default()
            })
            .with_batch_size(7),
        );
    }
    scheduler
}

fn run_sequential() -> f64 {
    let mut platform = SimulatedPlatform::new(pool(), CostModel::default(), SEED);
    let mut scheduler = fleet_scheduler();
    scheduler.run_clocked(&mut platform).unwrap().fleet.accuracy
}

fn run_sharded(shards: usize) -> f64 {
    let mut platform = ShardedPlatform::split(&pool(), CostModel::default(), SEED, shards);
    let mut scheduler = fleet_scheduler();
    scheduler
        .run_parallel(&mut platform)
        .unwrap()
        .fleet
        .accuracy
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_fleet");
    group.sample_size(10);

    group.bench_function("run_clocked_baseline", |b| {
        b.iter(|| black_box(run_sequential()))
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("run_parallel", shards),
            &shards,
            |b, &shards| b.iter(|| black_box(run_sharded(shards))),
        );
    }
    group.finish();

    // The headline numbers: end-to-end wall-clock per shard count vs the sequential
    // baseline, plus the report's own shard-time speedup stat. Medians over a few runs
    // keep the table stable enough to read trends from.
    let time = |f: &dyn Fn() -> f64| {
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let baseline = time(&run_sequential);
    println!(
        "parallel fleet ({JOBS} jobs, {POOL} workers): run_clocked {:.2}ms",
        baseline * 1e3
    );
    for shards in [1usize, 2, 4, 8] {
        let elapsed = time(&move || run_sharded(shards));
        println!(
            "  run_parallel x{shards}: {:.2}ms  ({:.2}x vs run_clocked)",
            elapsed * 1e3,
            baseline / elapsed
        );
    }
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
