//! Criterion microbenchmarks for online processing: consuming an answer stream with each
//! early-termination strategy (Algorithm 5), which the engine runs once per question.

use cdas_bench::{paper_pool, rng, sentiment_question, simulate_observation};
use cdas_core::online::{OnlineProcessor, TerminationStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_online(c: &mut Criterion) {
    let pool = paper_pool(7);
    let question = sentiment_question(0, 0.05);
    let mut group = c.benchmark_group("online");
    for &n in &[9usize, 15, 29] {
        let mut r = rng(100 + n as u64);
        let votes = simulate_observation(&pool, &question, n, &mut r)
            .votes()
            .to_vec();
        for strategy in TerminationStrategy::ALL {
            group.bench_with_input(BenchmarkId::new(strategy.name(), n), &votes, |b, votes| {
                b.iter(|| {
                    let mut processor = OnlineProcessor::new(n, 0.68, strategy)
                        .unwrap()
                        .with_domain_size(3);
                    processor
                        .run_until_termination(black_box(votes.iter().cloned()))
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
