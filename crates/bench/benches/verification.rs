//! Criterion microbenchmarks for the verification model: Equation 4 over observations of
//! growing size, compared with the voting baselines — the per-question cost of phase 2.

use cdas_bench::{paper_pool, rng, sentiment_question, simulate_observation};
use cdas_core::verification::probabilistic::ProbabilisticVerifier;
use cdas_core::verification::voting::{HalfVoting, MajorityVoting};
use cdas_core::verification::Verifier;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_verification(c: &mut Criterion) {
    let pool = paper_pool(42);
    let question = sentiment_question(0, 0.05);
    let mut group = c.benchmark_group("verification");
    for &n in &[5usize, 15, 29, 101] {
        let mut r = rng(n as u64);
        let observation = simulate_observation(&pool, &question, n, &mut r);
        group.bench_with_input(
            BenchmarkId::new("probabilistic", n),
            &observation,
            |b, obs| {
                let verifier = ProbabilisticVerifier::with_domain_size(3);
                b.iter(|| verifier.verify(black_box(obs)).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("half_voting", n),
            &observation,
            |b, obs| {
                let verifier = HalfVoting::new(n);
                b.iter(|| verifier.decide(black_box(obs)).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("majority_voting", n),
            &observation,
            |b, obs| {
                let verifier = MajorityVoting::new();
                b.iter(|| verifier.decide(black_box(obs)).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
