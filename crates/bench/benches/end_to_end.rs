//! Criterion benchmark for the whole engine path: publish a HIT on the simulated platform,
//! sample worker accuracies from gold questions, and verify a 20-question batch — the
//! per-HIT cost of CDAS itself (excluding human latency, which the simulator compresses).

use cdas_bench::sentiment_question;
use cdas_core::economics::CostModel;
use cdas_core::online::TerminationStrategy;
use cdas_crowd::pool::{PoolConfig, WorkerPool};
use cdas_crowd::SimulatedPlatform;
use cdas_engine::engine::{
    CrowdsourcingEngine, EngineConfig, VerificationStrategy, WorkerCountPolicy,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let pool = WorkerPool::generate(&PoolConfig::default());
    let questions: Vec<_> = (0..20u64)
        .map(|i| {
            let q = sentiment_question(i, 0.05);
            if i % 5 == 0 {
                q.as_gold()
            } else {
                q
            }
        })
        .collect();
    let mut group = c.benchmark_group("end_to_end_hit");
    group.sample_size(30);
    for (label, termination) in [
        ("offline", None),
        ("expmax", Some(TerminationStrategy::ExpMax)),
    ] {
        group.bench_with_input(
            BenchmarkId::new("run_hit_9_workers", label),
            &termination,
            |b, termination| {
                let engine = CrowdsourcingEngine::new(EngineConfig {
                    verification: VerificationStrategy::Probabilistic,
                    termination: *termination,
                    workers: WorkerCountPolicy::Fixed(9),
                    domain_size: Some(3),
                    ..EngineConfig::default()
                });
                b.iter(|| {
                    let mut platform =
                        SimulatedPlatform::new(pool.clone(), CostModel::default(), 7);
                    engine
                        .run_hit(&mut platform, black_box(questions.clone()))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
